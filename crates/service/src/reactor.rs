//! A `libc`-free readiness layer for the nonblocking TCP front end.
//!
//! std exposes no selector (`epoll`/`kqueue`), and the workspace policy
//! forbids external crates — so readiness here is a *sweep*: every
//! registered socket is nonblocking, and one [`poll`] pass asks each of
//! them (via a zero-copy `MSG_PEEK`) whether bytes or EOF are waiting.
//! That is exactly the level-triggered contract of `poll(2)` — a socket
//! stays "ready" until its bytes are consumed — at O(connections) cost
//! per sweep instead of O(ready), which on the target box (thousands of
//! mostly-idle connections, single-digit event-loop threads) is a
//! microsecond-per-connection syscall tax the load gate measures.
//!
//! The other half of the module is the per-connection state the event
//! loop multiplexes over:
//!
//! * [`LineFramer`] — an incremental line-framing state machine. Bytes
//!   arrive in arbitrary chunks; frames come out *identically however
//!   the stream was split* (pinned by a property test). Oversized lines
//!   and NUL bytes become typed [`Frame`] errors, never a disconnect —
//!   the connection resynchronises at the next newline.
//! * [`Conn`] — one connection's socket, framer, and bounded write
//!   buffer, with nonblocking `fill`/`flush` halves.
//!
//! The write path never blocks either: responses are queued into
//! [`Conn::queue`] and drained by [`Conn::flush`] as the socket accepts
//! them; a peer that stops reading past the buffer cap is a slow
//! consumer and is disconnected by the server, not waited on.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// One framed event out of a [`LineFramer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete request line (without its `\n`; a single trailing `\r`
    /// is stripped so `telnet` CRLF input works).
    Line(String),
    /// The line under construction exceeded `max_line` bytes before a
    /// newline arrived. The overlong tail is discarded up to (and
    /// including) the next newline, after which framing resumes.
    TooLong,
    /// The line contained a NUL byte — never legal in this protocol, and
    /// a classic sign of a confused (binary) client.
    Nul,
}

/// Incremental line framing over an arbitrarily-chunked byte stream.
///
/// Feed bytes with [`push`](LineFramer::push), drain frames with
/// [`pop`](LineFramer::pop). Processing is byte-at-a-time internally, so
/// the emitted frame sequence is invariant under re-chunking — the
/// property the framing test suite pins.
#[derive(Debug)]
pub struct LineFramer {
    max_line: usize,
    partial: Vec<u8>,
    pending: VecDeque<Frame>,
    /// Discarding the tail of an oversized line until the next newline.
    discarding: bool,
    /// The current line contained a NUL; it frames as [`Frame::Nul`].
    poisoned: bool,
}

impl LineFramer {
    /// A framer that rejects lines longer than `max_line` bytes
    /// (exclusive of the terminating newline).
    pub fn new(max_line: usize) -> LineFramer {
        assert!(max_line > 0, "max_line must be positive");
        LineFramer {
            max_line,
            partial: Vec::new(),
            pending: VecDeque::new(),
            discarding: false,
            poisoned: false,
        }
    }

    /// Appends one chunk of the byte stream.
    pub fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            if self.discarding {
                if b == b'\n' {
                    self.discarding = false;
                }
                continue;
            }
            if b == b'\n' {
                let frame = if self.poisoned {
                    Frame::Nul
                } else {
                    if self.partial.last() == Some(&b'\r') {
                        self.partial.pop();
                    }
                    Frame::Line(String::from_utf8_lossy(&self.partial).into_owned())
                };
                self.pending.push_back(frame);
                self.partial.clear();
                self.poisoned = false;
                continue;
            }
            if b == 0 {
                self.poisoned = true;
                continue;
            }
            if self.partial.len() >= self.max_line {
                self.pending.push_back(Frame::TooLong);
                self.partial.clear();
                self.poisoned = false;
                self.discarding = true;
                continue;
            }
            self.partial.push(b);
        }
    }

    /// The next framed event, if one is complete.
    pub fn pop(&mut self) -> Option<Frame> {
        self.pending.pop_front()
    }

    /// Bytes buffered for the line under construction.
    pub fn buffered(&self) -> usize {
        self.partial.len()
    }
}

/// One readiness observation from a [`poll`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen token identifying the connection.
    pub token: usize,
    /// Bytes are waiting to be read.
    pub readable: bool,
    /// The peer closed (EOF) or the socket is in error.
    pub hup: bool,
}

/// One level-triggered readiness sweep over `conns` — the `poll(2)`
/// analogue. Sockets must be nonblocking. Readiness is probed with a
/// one-byte `peek` (`MSG_PEEK`: nothing is consumed); a socket with
/// nothing waiting contributes no event. The caller decides how to wait
/// when the sweep comes back empty (the event loop sleeps its
/// `poll_interval`).
pub fn poll<'a>(conns: impl IntoIterator<Item = (usize, &'a TcpStream)>, events: &mut Vec<Event>) {
    events.clear();
    let mut probe = [0u8; 1];
    for (token, stream) in conns {
        match stream.peek(&mut probe) {
            Ok(0) => events.push(Event {
                token,
                readable: false,
                hup: true,
            }),
            Ok(_) => events.push(Event {
                token,
                readable: true,
                hup: false,
            }),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => events.push(Event {
                token,
                readable: false,
                hup: true,
            }),
        }
    }
}

/// Per-sweep read ceiling per connection: fairness, not correctness — a
/// firehosing client gets its surplus bytes on the next sweep instead of
/// starving every other connection this one.
const READ_QUANTUM: usize = 64 * 1024;

/// One multiplexed connection: nonblocking socket, framing state, and a
/// pending-output buffer the event loop drains opportunistically.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    /// The inbound framing state machine; the event loop `pop`s it after
    /// every [`fill`](Conn::fill).
    pub framer: LineFramer,
    out: Vec<u8>,
    out_pos: usize,
    /// Last instant a complete request arrived (idle-reaping clock).
    pub last_activity: Instant,
    /// Close once the output buffer drains (set after `SHUTDOWN`'s
    /// farewell, or when the server is stopping).
    pub closing: bool,
}

impl Conn {
    /// Adopts an accepted stream: switches it nonblocking and disables
    /// Nagle (single-line request/response traffic).
    pub fn new(stream: TcpStream, max_line: usize) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(Conn {
            stream,
            framer: LineFramer::new(max_line),
            out: Vec::new(),
            out_pos: 0,
            last_activity: Instant::now(),
            closing: false,
        })
    }

    /// The underlying socket (for [`poll`] sweeps).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Nonblocking read: moves whatever the socket has (up to the
    /// fairness quantum) into the framer. `Ok(false)` means the peer
    /// closed cleanly; transport errors surface as `Err`.
    pub fn fill(&mut self) -> io::Result<bool> {
        let mut buf = [0u8; 4096];
        let mut taken = 0;
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    self.framer.push(&buf[..n]);
                    taken += n;
                    if taken >= READ_QUANTUM {
                        return Ok(true);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Queues `text` plus the protocol's line terminator for writing.
    pub fn queue(&mut self, text: &str) {
        self.out.extend_from_slice(text.as_bytes());
        self.out.push(b'\n');
    }

    /// Nonblocking write: drains as much pending output as the socket
    /// accepts right now. `WouldBlock` is not an error — the remainder
    /// stays queued for the next sweep.
    pub fn flush(&mut self) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    /// `true` when nothing remains queued for writing.
    pub fn flushed(&self) -> bool {
        self.out_pos == self.out.len()
    }

    /// Bytes currently queued for writing (slow-consumer accounting).
    pub fn out_len(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(framer: &mut LineFramer) -> Vec<Frame> {
        std::iter::from_fn(|| framer.pop()).collect()
    }

    #[test]
    fn frames_lines_and_strips_cr() {
        let mut f = LineFramer::new(64);
        f.push(b"HELLO\r\nSTATUS q1\npartial");
        assert_eq!(
            frames(&mut f),
            vec![Frame::Line("HELLO".into()), Frame::Line("STATUS q1".into())]
        );
        assert_eq!(f.buffered(), "partial".len());
        f.push(b"\n");
        assert_eq!(frames(&mut f), vec![Frame::Line("partial".into())]);
    }

    #[test]
    fn oversized_line_frames_once_and_resyncs() {
        let mut f = LineFramer::new(8);
        f.push(b"0123456789abcdef\nNEXT\n");
        assert_eq!(
            frames(&mut f),
            vec![Frame::TooLong, Frame::Line("NEXT".into())]
        );
    }

    #[test]
    fn nul_poisons_exactly_one_line() {
        let mut f = LineFramer::new(64);
        f.push(b"bad\0line\nGOOD\n");
        assert_eq!(frames(&mut f), vec![Frame::Nul, Frame::Line("GOOD".into())]);
    }

    #[test]
    fn chunking_is_invisible() {
        let stream = b"HELLO\nSUBMIT SELECT 1 FROM t\n\0\nxxxxxxxxxxxxxxxxxxxxx\nBYE\n";
        let mut oneshot = LineFramer::new(16);
        oneshot.push(stream);
        let want = frames(&mut oneshot);
        for split in 0..stream.len() {
            let mut f = LineFramer::new(16);
            f.push(&stream[..split]);
            f.push(&stream[split..]);
            assert_eq!(frames(&mut f), want, "split at {split}");
        }
    }
}
