//! Protocol v2 → v3 compatibility, pinned at the byte level.
//!
//! The v3 redesign (typed client API, capability advertisement, the
//! event-loop front end) must not strand deployed v2 clients: every v2
//! request line is still answered with a v2-shape reply. These tests
//! speak *raw lines* — exactly the bytes a pre-v3 binary would write —
//! so a client-library change can never mask a wire regression. Plus
//! the retry satellite: `connect_with_retry_to` rotates through an
//! address list deterministically, skipping dead endpoints.

use qp_datagen::{TpchConfig, TpchDb};
use qp_service::{ProgressServer, QueryService, RetryPolicy, ServiceClient, ServiceConfig};
use qp_storage::Database;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn tiny_db() -> Arc<Database> {
    let t = TpchDb::generate(TpchConfig {
        scale: 0.002,
        z: 1.0,
        seed: 42,
    });
    Arc::new(t.db)
}

fn serve() -> (ProgressServer, SocketAddr, Arc<QueryService>) {
    let service = Arc::new(QueryService::new(tiny_db(), ServiceConfig::default()));
    let server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let addr = server.local_addr();
    (server, addr, service)
}

/// A raw line-oriented session, as any v2 client binary produces.
struct RawClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> RawClient {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(20))).ok();
        RawClient {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    }
}

/// The complete v2 session shape — HELLO, SUBMIT (with and without v2
/// option fields), STATUS polling to completion, CANCEL — runs
/// unchanged against the v3 server.
#[test]
fn v2_submit_status_cancel_lines_complete_against_a_v3_server() {
    let (mut server, addr, service) = serve();
    let mut c = RawClient::connect(addr);

    // v2 HELLO: clients parsed `protocol=` and `verbs=` as key=value
    // words and ignored keys they didn't know — so `caps=` must arrive
    // as just another word, not a new line shape.
    let hello = c.round_trip("HELLO");
    assert!(hello.starts_with("OK "), "got: {hello}");
    assert!(hello.contains("protocol="), "got: {hello}");
    assert!(hello.contains("verbs="), "got: {hello}");

    // v2 SUBMIT, bare and with the v2 option fields.
    let reply = c.round_trip("SUBMIT SELECT COUNT(*) AS n FROM nation");
    let id = reply.strip_prefix("OK ").expect("admitted").to_string();
    assert!(id.starts_with('q'), "got: {reply}");
    let reply =
        c.round_trip("SUBMIT TIMEOUT_MS=60000 PARALLELISM=2 SELECT COUNT(*) AS n FROM lineitem");
    let id2 = reply.strip_prefix("OK ").expect("admitted").to_string();

    // v2 STATUS: poll the first query to a terminal state; every reply
    // is a single OK line starting `OK <id> <STATE>`.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let reply = c.round_trip(&format!("STATUS {id}"));
        let tail = reply
            .strip_prefix(&format!("OK {id} "))
            .unwrap_or_else(|| panic!("v2 STATUS shape broken: {reply}"));
        let state = tail.split_whitespace().next().expect("state token");
        if state == "FINISHED" {
            assert!(tail.contains("rows="), "final status lacks rows=: {reply}");
            assert!(
                tail.contains("total="),
                "final status lacks total=: {reply}"
            );
            break;
        }
        assert!(
            matches!(state, "QUEUED" | "RUNNING"),
            "unexpected state in: {reply}"
        );
        assert!(
            std::time::Instant::now() < deadline,
            "query never finished; last: {reply}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // v2 CANCEL: `OK <id> <STATE>` whether it was still running or not.
    let reply = c.round_trip(&format!("CANCEL {id2}"));
    assert!(
        reply.starts_with(&format!("OK {id2} ")),
        "v2 CANCEL shape broken: {reply}"
    );
    service.wait(
        id2.trim_start_matches('q')
            .parse::<u64>()
            .map(qp_service::QueryId)
            .expect("id"),
    );
    server.shutdown();
}

/// An ephemeral port that refuses connections (bound, then freed).
fn dead_addr() -> SocketAddr {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = l.local_addr().expect("addr");
    drop(l);
    addr
}

/// `connect_with_retry_to` rotates deterministically: attempt `i` dials
/// `addrs[i % len]`, so a list with dead entries ahead of a live one
/// still connects, and an all-dead list fails after exactly `attempts`.
#[test]
fn retry_rotates_through_the_address_list() {
    let (mut server, addr, _service) = serve();
    let policy = RetryPolicy {
        attempts: 3,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(5),
        seed: 7,
    };

    // Two dead addresses first: attempts 0 and 1 fail, attempt 2 lands
    // on the live server.
    let addrs = [dead_addr(), dead_addr(), addr];
    let mut client =
        ServiceClient::connect_with_retry_to(&addrs, &policy).expect("rotation reaches the server");
    let hello = client.hello().expect("hello");
    assert!(hello.contains("protocol=3"), "got: {hello}");

    // All dead: the rotation gives up after `attempts` dials.
    match ServiceClient::connect_with_retry_to(&[dead_addr(), dead_addr()], &policy) {
        Ok(_) => panic!("connected to nothing"),
        Err(e) => assert_ne!(e.kind(), std::io::ErrorKind::InvalidInput),
    }

    // Empty list: rejected up front, not an infinite loop.
    match ServiceClient::connect_with_retry_to(&[], &policy) {
        Ok(_) => panic!("connected with an empty list"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput),
    }
    server.shutdown();
}
