//! Chaos tests: the TPC-H workload under deterministic fault injection.
//!
//! The invariants (the PR's acceptance bar):
//!
//! * every session terminates — in `FINISHED`, `FAILED`, `TIMEDOUT`, or
//!   `CANCELLED` — under every fault seed;
//! * the worker pool survives every fault (including injected panics) and
//!   serves a fresh query afterwards;
//! * every published progress snapshot stays inside the valid envelope:
//!   `LB ≤ UB`, estimates finite and in `[0, 1]` — clamped and flagged
//!   via `health`, never NaN;
//! * with an all-faults-disabled plan, results are byte-identical to the
//!   non-instrumented serial path;
//! * the whole thing replays exactly from one seed.

use qp_datagen::{TpchConfig, TpchDb};
use qp_exec::{FaultConfig, FaultKind, FaultPlan};
use qp_service::{QueryId, QueryService, QueryState, ServiceConfig, SubmitOptions};
use qp_stats::DbStats;
use qp_storage::Database;
use std::sync::Arc;
use std::time::Duration;

const FRESH_SQL: &str = "SELECT COUNT(*) AS n FROM nation";

fn workload_sql() -> Vec<&'static str> {
    qp_workloads::sql_text::SQL_QUERIES
        .iter()
        .map(|&q| qp_workloads::sql_text::tpch_sql(q).expect("sql text"))
        .collect()
}

fn tpch() -> Arc<Database> {
    let t = TpchDb::generate(TpchConfig {
        scale: 0.005,
        z: 1.0,
        seed: 42,
    });
    Arc::new(t.db)
}

/// A fault mix dense enough to hit the small scale-0.005 queries: every
/// kind of fault lands within the first few thousand getnext calls.
fn dense_faults() -> FaultConfig {
    FaultConfig {
        horizon: 4_000,
        exec_errors: 1,
        storage_errors: 1,
        panics: 1,
        delays: 2,
        delay: Duration::from_millis(1),
    }
}

fn chaos_service(db: &Arc<Database>, stats: &Arc<DbStats>, seed: u64) -> QueryService {
    QueryService::with_stats(
        Arc::clone(db),
        Arc::clone(stats),
        ServiceConfig {
            workers: 3,
            queue_depth: 16,
            stride: Some(100),
            fault_seed: Some(seed),
            fault_config: dense_faults(),
            ..ServiceConfig::default()
        },
    )
}

/// Runs the full TPC-H suite under one fault seed and returns the final
/// `(id, state)` pairs, asserting every chaos invariant along the way.
fn run_suite_under_seed(
    db: &Arc<Database>,
    stats: &Arc<DbStats>,
    seed: u64,
) -> Vec<(QueryId, QueryState)> {
    let service = chaos_service(db, stats, seed);
    let ids: Vec<QueryId> = workload_sql()
        .iter()
        .map(|sql| service.submit(sql).expect("admitted"))
        .collect();

    // Poll every session's progress while the suite runs: published
    // snapshots must stay inside the valid envelope at every instant,
    // fault or no fault.
    let mut polls = 0u64;
    loop {
        let mut all_terminal = true;
        for &id in &ids {
            let status = service.status(id).expect("known id");
            all_terminal &= status.state.is_terminal();
            if let Some(p) = status.progress {
                polls += 1;
                assert!(p.lb <= p.ub, "seed {seed} {id}: LB > UB in {p:?}");
                assert!(p.curr <= p.ub, "seed {seed} {id}: curr > UB in {p:?}");
                for e in &p.estimates {
                    assert!(
                        e.is_finite() && (0.0..=1.0).contains(e),
                        "seed {seed} {id}: bad estimate in {p:?}"
                    );
                }
            }
        }
        if all_terminal {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(polls > 0, "seed {seed}: no progress was ever observed");

    let finals: Vec<(QueryId, QueryState)> = ids
        .iter()
        .map(|&id| (id, service.status(id).unwrap().state))
        .collect();
    for &(id, state) in &finals {
        assert!(
            matches!(
                state,
                QueryState::Finished
                    | QueryState::Failed
                    | QueryState::TimedOut
                    | QueryState::Cancelled
            ),
            "seed {seed} {id}: non-terminal final state {state}"
        );
        // A failed session must retain its reason, and its health flag
        // must say not to trust the stream.
        if state == QueryState::Failed {
            let status = service.status(id).unwrap();
            assert!(
                status.error.is_some(),
                "seed {seed} {id}: FAILED without a retained error"
            );
            assert_eq!(
                status.health,
                qp_progress::shared::Health::Failed,
                "seed {seed} {id}: FAILED without Failed health"
            );
        }
    }

    // The pool survived whatever the seed threw at it: a fresh,
    // fault-free query still completes.
    let fresh = service
        .submit_with(
            FRESH_SQL,
            SubmitOptions {
                faults: Some(FaultPlan::none()),
                ..SubmitOptions::default()
            },
        )
        .expect("admitted after chaos");
    assert_eq!(
        service.wait(fresh),
        Some(QueryState::Finished),
        "seed {seed}: worker pool did not survive the fault run"
    );
    service.shutdown();
    finals
}

#[test]
fn chaos_invariants_hold_across_seeds() {
    let db = tpch();
    let stats = Arc::new(DbStats::build(&db));
    for seed in 1..=5u64 {
        let finals = run_suite_under_seed(&db, &stats, seed);
        // Deterministic replay: the same seed reproduces the exact same
        // terminal state for every query.
        let replay = run_suite_under_seed(&db, &stats, seed);
        assert_eq!(finals, replay, "seed {seed} did not replay identically");
    }
}

#[test]
fn disabled_fault_plan_is_byte_identical_to_serial() {
    let db = tpch();
    let stats = Arc::new(DbStats::build(&db));
    let service = QueryService::with_stats(
        Arc::clone(&db),
        Arc::clone(&stats),
        ServiceConfig::default(),
    );
    for sql in workload_sql() {
        let mut plan = qp_sql::sql_to_plan(sql, &db, &stats).expect("plans");
        qp_exec::estimate::annotate(&mut plan, &stats);
        let (serial, _) = qp_exec::run_query(&plan, &db, None).expect("runs");

        let id = service
            .submit_with(
                sql,
                SubmitOptions {
                    faults: Some(FaultPlan::none()),
                    ..SubmitOptions::default()
                },
            )
            .expect("admitted");
        assert_eq!(service.wait(id), Some(QueryState::Finished), "{sql}");
        let result = service.result(id).expect("retained");
        assert_eq!(
            result.rows.as_slice(),
            serial.rows.as_slice(),
            "{sql}: rows differ with all faults disabled"
        );
        assert_eq!(
            format!("{:?}", result.rows),
            format!("{:?}", serial.rows),
            "{sql}: row bytes differ with all faults disabled"
        );
        assert_eq!(
            result.total_getnext, serial.total_getnext,
            "{sql}: total(Q)"
        );
    }
    service.shutdown();
}

#[test]
fn injected_panic_fails_the_query_but_the_worker_survives() {
    let db = tpch();
    // One worker: if the panic killed it, the follow-up would hang.
    let service = QueryService::new(
        Arc::clone(&db),
        ServiceConfig {
            workers: 1,
            stride: Some(50),
            ..ServiceConfig::default()
        },
    );
    let id = service
        .submit_with(
            "SELECT COUNT(*) AS n FROM lineitem",
            SubmitOptions {
                faults: Some(FaultPlan::single(25, FaultKind::Panic)),
                ..SubmitOptions::default()
            },
        )
        .expect("admitted");
    assert_eq!(service.wait(id), Some(QueryState::Failed));
    let status = service.status(id).unwrap();
    let error = status.error.expect("failure message retained");
    assert!(
        error.contains("panicked") && error.contains("injected panic"),
        "unexpected failure message: {error}"
    );
    assert_eq!(status.health, qp_progress::shared::Health::Failed);

    let fresh = service.submit(FRESH_SQL).expect("admitted");
    assert_eq!(service.wait(fresh), Some(QueryState::Finished));
    service.shutdown();
}

#[test]
fn deadline_expiry_lands_in_timedout() {
    let db = tpch();
    let service = QueryService::new(
        Arc::clone(&db),
        ServiceConfig {
            workers: 1,
            stride: Some(100),
            ..ServiceConfig::default()
        },
    );
    // A cross join big enough to outlive a 20 ms budget by orders of
    // magnitude.
    let id = service
        .submit_with(
            "SELECT COUNT(*) AS n FROM supplier, lineitem WHERE s_acctbal > l_extendedprice",
            SubmitOptions {
                timeout: Some(Duration::from_millis(20)),
                ..SubmitOptions::default()
            },
        )
        .expect("admitted");
    assert_eq!(service.wait(id), Some(QueryState::TimedOut));
    let status = service.status(id).unwrap();
    assert_eq!(status.health, qp_progress::shared::Health::Degraded);
    assert!(status.rows.is_none(), "a timed-out query retains no rows");

    // The deadline is per-session: the next query has no budget and runs
    // to completion on the freed worker.
    let fresh = service.submit(FRESH_SQL).expect("admitted");
    assert_eq!(service.wait(fresh), Some(QueryState::Finished));
    service.shutdown();
}

#[test]
fn default_timeout_applies_when_submit_carries_none() {
    let db = tpch();
    let service = QueryService::new(
        Arc::clone(&db),
        ServiceConfig {
            workers: 1,
            stride: Some(100),
            default_timeout: Some(Duration::from_millis(20)),
            ..ServiceConfig::default()
        },
    );
    let id = service
        .submit("SELECT COUNT(*) AS n FROM supplier, lineitem WHERE s_acctbal > l_extendedprice")
        .expect("admitted");
    assert_eq!(service.wait(id), Some(QueryState::TimedOut));
    service.shutdown();
}

#[test]
fn storage_fault_surfaces_as_failed_with_message() {
    let db = tpch();
    let service = QueryService::new(Arc::clone(&db), ServiceConfig::default());
    let id = service
        .submit_with(
            "SELECT COUNT(*) AS n FROM lineitem",
            SubmitOptions {
                faults: Some(FaultPlan::single(10, FaultKind::StorageRead)),
                ..SubmitOptions::default()
            },
        )
        .expect("admitted");
    assert_eq!(service.wait(id), Some(QueryState::Failed));
    let error = service.status(id).unwrap().error.expect("error retained");
    assert!(
        error.contains("storage read failed"),
        "unexpected message: {error}"
    );
    service.shutdown();
}
