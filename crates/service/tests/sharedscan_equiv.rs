//! Shared-scan equivalence: attaching N concurrent identical scans to
//! one in-flight producer must be invisible in every per-session
//! observable — row counts, `total(Q)`, progress counters, estimates.
//!
//! The paper's counters (Section 2.2) define progress per *session*:
//! `total(Q)` counts the getnext calls the session's plan performs, not
//! the physical reads the storage layer deduplicates. So a shared scan
//! is only correct if each attached session sees the exact row sequence
//! a solo run would — these tests pin that end-to-end through the
//! service, across seeds × concurrency degrees × heap/paged backends,
//! including a session cancelling mid-flight while its siblings stay
//! attached.

use qp_datagen::{TpchConfig, TpchDb};
use qp_service::protocol::status_line;
use qp_service::{QueryId, QueryService, QueryState, ServiceConfig};
use std::path::PathBuf;
use std::sync::Arc;

const SCAN_SQL: &str = "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity > 10";

fn tiny(seed: u64) -> TpchDb {
    TpchDb::generate(TpchConfig {
        scale: 0.002,
        z: 1.0,
        seed,
    })
}

fn config(shared: bool, workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        shared_scan: shared,
        ..ServiceConfig::default()
    }
}

/// The session's full final status line minus its id — state, health,
/// trust, curr/lb/ub, every estimate, rows, and total(Q). Equivalence
/// means these bytes match a solo run exactly.
fn final_tail(service: &QueryService, id: QueryId) -> String {
    let report = service.status(id).expect("session retained");
    let line = status_line(&report);
    line.strip_prefix(&format!("OK {id} "))
        .unwrap_or(&line)
        .to_string()
}

/// One query, scan sharing off: the ground truth for `sql` at `seed`.
fn solo_tail(seed: u64, sql: &str) -> String {
    let t = tiny(seed);
    let service = QueryService::new(Arc::new(t.db), config(false, 1));
    let id = service.submit(sql).expect("admitted");
    assert_eq!(service.wait(id), Some(QueryState::Finished));
    final_tail(&service, id)
}

/// N identical queries submitted together with sharing on; every
/// session's final status must be byte-identical to the solo run.
#[test]
fn concurrent_identical_scans_match_solo_across_seeds_and_degrees() {
    for seed in [7, 19] {
        let solo = solo_tail(seed, SCAN_SQL);
        for degree in [2usize, 4] {
            let t = tiny(seed);
            let service = QueryService::new(Arc::new(t.db), config(true, degree));
            let ids: Vec<QueryId> = (0..degree)
                .map(|_| service.submit(SCAN_SQL).expect("admitted"))
                .collect();
            for id in &ids {
                assert_eq!(service.wait(*id), Some(QueryState::Finished));
            }
            for id in &ids {
                assert_eq!(
                    final_tail(&service, *id),
                    solo,
                    "seed {seed} degree {degree}: {id} diverged from solo"
                );
            }
        }
    }
}

/// The same equivalence over the paged backend: sharing layered on the
/// buffer pool must not change any session's counters either.
#[test]
fn paged_concurrent_scans_match_paged_solo() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("qp-sharedscan-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let t = tiny(11);
    t.save_paged(&dir).expect("bulk load");

    let solo_service =
        QueryService::open_paged(&dir, 16, config(false, 1)).expect("paged open (solo)");
    let id = solo_service.submit(SCAN_SQL).expect("admitted");
    assert_eq!(solo_service.wait(id), Some(QueryState::Finished));
    let solo = final_tail(&solo_service, id);
    drop(solo_service);

    let service = QueryService::open_paged(&dir, 16, config(true, 3)).expect("paged open (shared)");
    let ids: Vec<QueryId> = (0..3)
        .map(|_| service.submit(SCAN_SQL).expect("admitted"))
        .collect();
    for id in &ids {
        assert_eq!(service.wait(*id), Some(QueryState::Finished));
    }
    for id in &ids {
        assert_eq!(final_tail(&service, *id), solo, "{id} diverged from solo");
    }
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One session cancelling mid-flight detaches cleanly: the survivors
/// still finish byte-identical to solo, and the cancelled session lands
/// in a terminal state without disturbing the epoch.
#[test]
fn cancelling_one_attached_session_leaves_the_others_solo_identical() {
    let seed = 23;
    let solo = solo_tail(seed, SCAN_SQL);
    let t = tiny(seed);
    let service = QueryService::new(Arc::new(t.db), config(true, 3));
    let a = service.submit(SCAN_SQL).expect("admitted");
    let victim = service.submit(SCAN_SQL).expect("admitted");
    let b = service.submit(SCAN_SQL).expect("admitted");
    // Cancel immediately — depending on timing the victim dies queued,
    // mid-attach, or (rarely) finished; all are legal terminal states.
    service.cancel(victim);
    for id in [a, b] {
        assert_eq!(service.wait(id), Some(QueryState::Finished), "{id}");
        assert_eq!(final_tail(&service, id), solo, "{id} diverged from solo");
    }
    let victim_state = service.wait(victim).expect("victim retained");
    assert!(
        matches!(victim_state, QueryState::Cancelled | QueryState::Finished),
        "victim ended {victim_state:?}"
    );
    if victim_state == QueryState::Finished {
        assert_eq!(final_tail(&service, victim), solo);
    }
}

/// Sharing genuinely engages under concurrency: with several identical
/// scans in flight, at least one attach joins an existing epoch and
/// serves more rows than were physically produced. (Overlap is
/// timing-dependent per attempt, so this retries a few times; the
/// per-session equivalence above never depends on timing.)
#[test]
fn concurrent_scans_actually_share_an_epoch() {
    use std::sync::atomic::Ordering::Relaxed;
    for attempt in 0..5 {
        let t = tiny(31 + attempt);
        let service = QueryService::new(Arc::new(t.db), config(true, 4));
        let ids: Vec<QueryId> = (0..4)
            .map(|_| service.submit(SCAN_SQL).expect("admitted"))
            .collect();
        for id in &ids {
            assert_eq!(service.wait(*id), Some(QueryState::Finished));
        }
        let stats = service.scan_share().expect("sharing enabled").stats();
        let shared = stats.shared_attaches.load(Relaxed);
        let produced = stats.rows_produced.load(Relaxed);
        let served = stats.rows_served.load(Relaxed);
        if shared > 0 {
            assert!(
                served > produced,
                "shared attaches without deduplicated rows: served={served} produced={produced}"
            );
            return;
        }
    }
    panic!("4-way identical scans never overlapped in 5 attempts");
}
