//! Line framing under hostile input: chunking invariance as a property,
//! and hostile lines over real TCP becoming *typed* `ERR` replies —
//! never a reply-less disconnect.
//!
//! The reactor front end reads whatever the kernel hands it, so the
//! framer must produce the same frames no matter how the byte stream is
//! sliced. And because thousands of sessions share one event loop, a
//! single bad line must poison exactly one reply, not the connection.

use qp_datagen::{TpchConfig, TpchDb};
use qp_service::reactor::{Frame, LineFramer};
use qp_service::{ProgressServer, QueryService, ServerConfig, ServiceConfig};
use qp_storage::Database;
use qp_testkit::prop::collection;
use qp_testkit::{prop_assert, prop_check};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Every frame `bytes` produces when pushed in one piece.
fn frames_of(bytes: &[u8], max_line: usize) -> Vec<Frame> {
    let mut framer = LineFramer::new(max_line);
    framer.push(bytes);
    let mut out = Vec::new();
    while let Some(f) = framer.pop() {
        out.push(f);
    }
    out
}

prop_check! {
    cases = 512,

    /// Slicing the byte stream at arbitrary boundaries — popping frames
    /// between slices or not — never changes the framing.
    fn chunk_boundaries_are_invisible(
        bytes in collection::vec(0u8..=255, 0..200),
        cuts in collection::vec(0usize..200, 0..8),
    ) {
        let reference = frames_of(&bytes, 48);

        // Variant 1: push every chunk, then pop everything.
        let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut framer = LineFramer::new(48);
        let mut prev = 0;
        for &cut in cuts.iter().chain(std::iter::once(&bytes.len())) {
            framer.push(&bytes[prev..cut]);
            prev = cut;
        }
        let mut batched = Vec::new();
        while let Some(f) = framer.pop() {
            batched.push(f);
        }
        prop_assert!(batched == reference, "batched pops diverged: {batched:?} vs {reference:?}");

        // Variant 2: pop eagerly after every chunk (the event loop's
        // actual access pattern).
        let mut framer = LineFramer::new(48);
        let mut eager = Vec::new();
        let mut prev = 0;
        for &cut in cuts.iter().chain(std::iter::once(&bytes.len())) {
            framer.push(&bytes[prev..cut]);
            while let Some(f) = framer.pop() {
                eager.push(f);
            }
            prev = cut;
        }
        prop_assert!(eager == reference, "eager pops diverged: {eager:?} vs {reference:?}");
    }

    /// An oversized line frames as one `TooLong` and the framer
    /// resynchronises at the next newline: the following line is intact.
    fn oversized_lines_resync_at_the_next_newline(
        pad in 49usize..400,
        tail_bytes in collection::vec(33u8..127, 1..20),
    ) {
        let tail = String::from_utf8_lossy(&tail_bytes).to_string();
        let mut bytes = vec![b'A'; pad];
        bytes.push(b'\n');
        bytes.extend_from_slice(tail.as_bytes());
        bytes.push(b'\n');
        let frames = frames_of(&bytes, 48);
        prop_assert!(
            frames == vec![Frame::TooLong, Frame::Line(tail.clone())],
            "got {frames:?}"
        );
    }

    /// A NUL byte poisons exactly its own line; neighbours are intact.
    fn nul_poisons_only_its_own_line(
        before_bytes in collection::vec(33u8..127, 0..20),
        after_bytes in collection::vec(33u8..127, 0..20),
    ) {
        let before = String::from_utf8_lossy(&before_bytes).to_string();
        let after = String::from_utf8_lossy(&after_bytes).to_string();
        let mut bytes = before.as_bytes().to_vec();
        bytes.push(0);
        bytes.push(b'\n');
        bytes.extend_from_slice(after.as_bytes());
        bytes.push(b'\n');
        let frames = frames_of(&bytes, 4096);
        prop_assert!(
            frames == vec![Frame::Nul, Frame::Line(after.clone())],
            "got {frames:?}"
        );
    }
}

fn tiny_db() -> Arc<Database> {
    let t = TpchDb::generate(TpchConfig {
        scale: 0.002,
        z: 1.0,
        seed: 42,
    });
    Arc::new(t.db)
}

fn serve() -> (ProgressServer, std::net::SocketAddr) {
    let service = Arc::new(QueryService::new(tiny_db(), ServiceConfig::default()));
    let server = ProgressServer::bind_with(
        "127.0.0.1:0",
        service,
        ServerConfig {
            max_line_bytes: 256,
            ..ServerConfig::default()
        },
    )
    .expect("binds");
    let addr = server.local_addr();
    (server, addr)
}

/// Hostile lines over real TCP each earn a typed `ERR` with the right
/// code, and the same connection keeps answering afterwards.
#[test]
fn hostile_lines_get_typed_errs_and_the_session_survives() {
    let (mut server, addr) = serve();
    let stream = TcpStream::connect(addr).expect("connects");
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let send = |w: &mut TcpStream, bytes: &[u8]| {
        w.write_all(bytes).expect("write");
        w.flush().expect("flush");
    };
    let read_line = |r: &mut BufReader<TcpStream>| {
        let mut line = String::new();
        r.read_line(&mut line).expect("a reply, not a disconnect");
        line.trim_end().to_string()
    };

    // Oversized: past the 256-byte cap → TOO_LARGE, tail discarded.
    send(&mut writer, &[b'A'; 400]);
    send(&mut writer, b"\n");
    let reply = read_line(&mut reader);
    assert!(reply.starts_with("ERR TOO_LARGE"), "got: {reply}");

    // NUL byte → BAD_REQUEST.
    send(&mut writer, b"STAT\0US q1\n");
    let reply = read_line(&mut reader);
    assert!(reply.starts_with("ERR BAD_REQUEST"), "got: {reply}");

    // Unknown verb → BAD_REQUEST.
    send(&mut writer, b"FROBNICATE now\n");
    let reply = read_line(&mut reader);
    assert!(reply.starts_with("ERR BAD_REQUEST"), "got: {reply}");

    // Valid verb, missing session → UNKNOWN_QUERY.
    send(&mut writer, b"STATUS q999\n");
    let reply = read_line(&mut reader);
    assert!(reply.starts_with("ERR UNKNOWN_QUERY"), "got: {reply}");

    // The connection is still perfectly usable.
    send(&mut writer, b"HELLO\n");
    let reply = read_line(&mut reader);
    assert!(reply.starts_with("OK protocol=3"), "got: {reply}");
    server.shutdown();
}

/// A seeded storm of garbage lines — interleaved with valid requests,
/// written in tiny chunks — earns exactly one reply per line, in order.
#[test]
fn garbage_storm_gets_one_reply_per_line_in_order() {
    let (mut server, addr) = serve();
    let stream = TcpStream::connect(addr).expect("connects");
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Deterministic garbage: printable, newline-free, non-verb lines.
    let mut rng = 0xC0FFEEu64;
    let mut step = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut batch = String::new();
    let mut expect: Vec<&str> = Vec::new();
    for i in 0..64 {
        if i % 8 == 7 {
            batch.push_str("HELLO\n");
            expect.push("OK");
        } else {
            // Leading digit: no verb starts with one, so the line can
            // never collide with a real request.
            batch.push('9');
            let len = 1 + (step() % 40) as usize;
            for _ in 0..len {
                batch.push((b'a' + (step() % 26) as u8) as char);
            }
            batch.push('\n');
            expect.push("ERR");
        }
    }
    // Dribble the batch out in 7-byte chunks so request boundaries never
    // align with socket writes.
    for chunk in batch.as_bytes().chunks(7) {
        writer.write_all(chunk).expect("write");
        writer.flush().expect("flush");
    }
    for (i, want) in expect.iter().enumerate() {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .unwrap_or_else(|e| panic!("reply {i} missing: {e}"));
        assert!(
            line.starts_with(want),
            "reply {i}: wanted {want}…, got {line:?}"
        );
    }
    server.shutdown();
}
