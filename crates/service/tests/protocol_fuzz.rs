//! Fuzz the wire-protocol parsers: arbitrary input must never panic —
//! every line is either a valid `Request` or a clean error (which the
//! server turns into an `ERR` line).

use qp_service::protocol::ParsedStatus;
use qp_service::Request;
use qp_testkit::prop::collection;
use qp_testkit::{prop_assert, prop_check};

prop_check! {
    cases = 512,

    /// Arbitrary bytes (lossily decoded, as a socket reader would after
    /// `read_line`) parse to Ok or Err — never a panic.
    fn request_parse_never_panics_on_bytes(
        bytes in collection::vec(0u8..=255, 0..120),
    ) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = Request::parse(&line);
    }

    /// Structured-ish lines — a known verb with arbitrary argument text —
    /// exercise each verb's argument validation without panicking.
    fn request_parse_never_panics_on_verb_like_lines(
        verb in 0usize..8,
        arg_bytes in collection::vec(32u8..127, 0..60),
    ) {
        let verb = ["SUBMIT", "STATUS", "LIST", "CANCEL", "SHUTDOWN",
                    "submit", "BOGUS", "AUDIT"][verb];
        let arg = String::from_utf8_lossy(&arg_bytes);
        let _ = Request::parse(&format!("{verb} {arg}"));
        let _ = Request::parse(&format!("{verb}{arg}"));
    }

    /// `AUDIT` argument validation is total: a well-formed id parses to
    /// the same target `STATUS` would, anything else is a clean error,
    /// and the bare verb always means "all retained postmortems".
    fn audit_parses_ids_like_status(
        id in 0u64..1_000_000,
        junk_bytes in collection::vec(33u8..127, 1..20),
    ) {
        match Request::parse(&format!("AUDIT q{id}")) {
            Ok(Request::Audit(Some(parsed))) => {
                prop_assert!(parsed.0 == id, "id mangled: {parsed:?}");
            }
            other => prop_assert!(false, "AUDIT q{id} parsed as {other:?}"),
        }
        prop_assert!(
            matches!(Request::parse("AUDIT"), Ok(Request::Audit(None))),
            "bare AUDIT must mean every retained postmortem"
        );
        let junk = String::from_utf8_lossy(&junk_bytes).to_string();
        if junk.parse::<u64>().is_err() && !(junk.starts_with('q')
            && junk[1..].parse::<u64>().is_ok())
        {
            prop_assert!(
                Request::parse(&format!("AUDIT {junk}")).is_err(),
                "AUDIT accepted junk id {junk:?}"
            );
        }
    }

    /// `SUBMIT` round-trip: whatever survives parsing preserves the SQL
    /// text and the timeout field exactly.
    fn submit_round_trips_timeout_and_sql(
        timeout_ms in 0u64..100_000,
        with_timeout in 0u8..2,
        sql_bytes in collection::vec(33u8..127, 1..40),
    ) {
        let sql = String::from_utf8_lossy(&sql_bytes).to_string();
        // A leading option token in the SQL itself would (by design) be
        // eaten as the protocol field; skip that corner.
        if ["TIMEOUT_MS=", "PARALLELISM=", "ESTIMATORS="]
            .iter()
            .any(|f| sql.starts_with(f))
        {
            return Ok(());
        }
        let line = if with_timeout == 1 {
            format!("SUBMIT TIMEOUT_MS={timeout_ms} {sql}")
        } else {
            format!("SUBMIT {sql}")
        };
        match Request::parse(&line) {
            Ok(Request::Submit { sql: parsed_sql, timeout_ms: parsed_t, .. }) => {
                prop_assert!(parsed_sql == sql.trim(), "sql mangled: {parsed_sql:?}");
                let want = (with_timeout == 1).then_some(timeout_ms);
                prop_assert!(parsed_t == want, "timeout mangled: {parsed_t:?}");
            }
            Ok(other) => prop_assert!(false, "SUBMIT parsed as {other:?}"),
            Err(_) => prop_assert!(false, "valid SUBMIT rejected: {line:?}"),
        }
    }

    /// The status-line parser is total too: arbitrary printable input is
    /// Ok or Err, never a panic.
    fn status_parse_never_panics(
        bytes in collection::vec(32u8..127, 0..120),
    ) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = ParsedStatus::parse(&line);
        let _ = ParsedStatus::parse(&format!("OK {line}"));
    }
}
