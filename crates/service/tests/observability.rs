//! End-to-end observability: the metrics/trace surface exercised the way
//! an operator would use it.
//!
//! * `METRICS` over TCP while sessions run concurrently: every scrape
//!   parses, and every counter family is monotone scrape-over-scrape
//!   (sessions are never evicted; counters only grow).
//! * `TRACE <id>` over TCP: every line is machine-parseable JSONL, the
//!   checkpoint stream has non-decreasing `curr`, and Proposition 4
//!   holds at every checkpoint — `pmax` never underestimates true
//!   progress `curr / total(Q)` of a finished query.
//! * `LIST` carries the health flag, and a fault-killed session shows
//!   `FAILED failed` while its neighbours stay `ok`.
//! * The flight recorder keeps the tail of fault-killed sessions — the
//!   whole point of a crash recorder — under every chaos seed in 1..=8.

use qp_datagen::{TpchConfig, TpchDb};
use qp_exec::{FaultConfig, FaultKind, FaultPlan};
use qp_obs::json::{parse, Value};
use qp_obs::EventKind;
use qp_progress::{Health, Trust};
use qp_service::{
    telemetry, ProgressServer, QueryId, QueryService, QueryState, ServiceClient, ServiceConfig,
    SubmitOptions, ESTIMATORS,
};
use qp_stats::DbStats;
use qp_storage::Database;
use std::sync::Arc;
use std::time::Duration;

fn tpch() -> Arc<Database> {
    let t = TpchDb::generate(TpchConfig {
        scale: 0.005,
        z: 1.0,
        seed: 42,
    });
    Arc::new(t.db)
}

fn service_with(db: &Arc<Database>, config: ServiceConfig) -> Arc<QueryService> {
    let stats = Arc::new(DbStats::build(db));
    Arc::new(QueryService::with_stats(Arc::clone(db), stats, config))
}

fn workload_sql() -> Vec<&'static str> {
    qp_workloads::sql_text::SQL_QUERIES
        .iter()
        .map(|&q| qp_workloads::sql_text::tpch_sql(q).expect("sql text"))
        .collect()
}

/// Sums every sample of one Prometheus family in a text exposition.
fn family_sum(metrics: &str, family: &str) -> f64 {
    metrics
        .lines()
        .filter(|l| l.starts_with(&format!("{family}{{")) || l.starts_with(&format!("{family} ")))
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| panic!("unparsable sample line {l:?}"))
        })
        .sum()
}

#[test]
fn metrics_are_monotone_and_traces_validate_over_tcp() {
    let db = tpch();
    let service = service_with(
        &db,
        ServiceConfig {
            workers: 3,
            stride: Some(100),
            ..ServiceConfig::default()
        },
    );
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connects");

    let ids: Vec<QueryId> = workload_sql()
        .iter()
        .map(|sql| {
            client
                .submit(sql)
                .expect("io")
                .expect("admitted over the wire")
        })
        .collect();

    // Scrape while the suite runs: every scrape parses, every counter
    // family is monotone against the previous scrape.
    let families = [
        "qp_getnext_calls_total",
        "qp_rows_total",
        "qp_sessions_submitted_total",
        "qp_recorder_events_total",
    ];
    let mut last = [0.0f64; 4];
    let mut done = false;
    while !done {
        done = ids
            .iter()
            .all(|&id| service.status(id).is_some_and(|s| s.state.is_terminal()));
        let metrics = client.metrics().expect("io").expect("METRICS serves");
        for (prev, family) in last.iter_mut().zip(families) {
            let now = family_sum(&metrics, family);
            assert!(
                now >= *prev,
                "{family} regressed {prev} -> {now} between scrapes"
            );
            *prev = now;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        last[0] > 0.0 && last[1] > 0.0,
        "a finished workload must have produced getnext calls and rows"
    );

    // Every session finished; every TRACE parses and honours Prop 4.
    for &id in &ids {
        assert_eq!(service.wait(id), Some(QueryState::Finished));
        let lines = client.trace(id).expect("io").expect("TRACE serves");
        let meta = parse(&lines[0]).expect("meta line parses");
        assert_eq!(meta.get("type").and_then(Value::as_str), Some("meta"));
        let total = meta
            .get("total_getnext")
            .and_then(Value::as_u64)
            .expect("finished sessions report total(Q)");
        let mut prev_curr = 0;
        let mut checkpoints = 0;
        for line in &lines {
            let v = parse(line).unwrap_or_else(|e| panic!("unparsable line {line:?}: {e}"));
            match v.get("type").and_then(Value::as_str) {
                Some("operator") => {
                    assert!(v.get("op").and_then(Value::as_str).is_some());
                }
                Some("checkpoint") => {
                    checkpoints += 1;
                    let curr = v.get("curr").and_then(Value::as_u64).expect("curr");
                    assert!(curr >= prev_curr, "{id}: curr regressed");
                    prev_curr = curr;
                    let pmax = v.get("pmax").and_then(Value::as_f64).expect("pmax");
                    let true_progress = curr as f64 / total as f64;
                    assert!(
                        pmax >= true_progress - 1e-9,
                        "{id}: Prop 4 violated: pmax {pmax} < {true_progress}"
                    );
                    for name in ESTIMATORS {
                        assert!(v.get(name).is_some(), "{id}: checkpoint missing {name}");
                    }
                }
                _ => {}
            }
        }
        assert!(checkpoints > 0, "{id}: trace carried no checkpoints");
    }

    client.shutdown().expect("clean shutdown");
    server.shutdown();
}

#[test]
fn list_health_flags_isolate_the_fault_killed_session() {
    let db = tpch();
    let service = service_with(
        &db,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connects");

    let ok = service
        .submit("SELECT COUNT(*) AS n FROM nation")
        .expect("admitted");
    let killed = service
        .submit_with(
            "SELECT COUNT(*) AS n FROM lineitem",
            SubmitOptions {
                faults: Some(FaultPlan::single(50, FaultKind::ExecError)),
                ..SubmitOptions::default()
            },
        )
        .expect("admitted");
    assert_eq!(service.wait(ok), Some(QueryState::Finished));
    assert_eq!(service.wait(killed), Some(QueryState::Failed));

    let listed = client.list().expect("io").expect("LIST serves");
    let row = |id| listed.iter().find(|(i, _, _)| *i == id).expect("listed");
    assert_eq!(row(ok).1, QueryState::Finished);
    assert_eq!(row(ok).2, Health::Ok);
    assert_eq!(row(killed).1, QueryState::Failed);
    assert_eq!(row(killed).2, Health::Failed);

    // The dead session still serves a TRACE, with the failure in the
    // meta line and the injected fault on the operator counters.
    let lines = client.trace(killed).expect("io").expect("TRACE serves");
    let meta = parse(&lines[0]).expect("meta parses");
    assert_eq!(meta.get("state").and_then(Value::as_str), Some("FAILED"));
    assert!(meta.get("error").is_some(), "meta must carry the error");
    let (mut errors, mut faults) = (0, 0);
    for line in &lines {
        let v = parse(line).expect("line parses");
        if v.get("type").and_then(Value::as_str) == Some("operator") {
            errors += v.get("errors").and_then(Value::as_u64).unwrap_or(0);
            faults += v.get("faults").and_then(Value::as_u64).unwrap_or(0);
        }
    }
    assert!(errors >= 1, "the injected error must be counted");
    assert!(faults >= 1, "the fired fault must be counted");

    client.shutdown().expect("clean shutdown");
    server.shutdown();
}

/// HELLO advertises the ensemble estimator; a query submitted over TCP
/// with `ESTIMATORS=ensemble` runs it; and the trust token flows end to
/// end — `ok` on a clean run on both STATUS and the TRACE meta line,
/// `fallback` once a fault fires mid-query.
#[test]
fn hello_advertises_ensemble_and_trust_flows_over_tcp() {
    let db = tpch();
    let service = service_with(&db, ServiceConfig::default());
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connects");

    let hello = client.hello().expect("hello");
    assert!(
        hello.contains("ensemble"),
        "HELLO must advertise the ensemble: {hello}"
    );

    // Clean run, submitted over the wire with the ensemble suite.
    let id = client
        .submit_with_fields("ESTIMATORS=ensemble", "SELECT COUNT(*) AS n FROM lineitem")
        .unwrap()
        .expect("admitted");
    assert_eq!(service.wait(id), Some(QueryState::Finished));
    let status = client.status(id).unwrap().expect("status");
    assert_eq!(status.trust, Some(Trust::Ok), "clean run stays trusted");
    assert!(
        status.estimates.iter().any(|(n, _)| n == "ensemble"),
        "STATUS must carry the ensemble estimate: {status:?}"
    );

    // A fired (non-fatal) fault shifts the regime: the ensemble falls
    // back to safe and says so on STATUS and in the TRACE meta line.
    let shaky = service
        .submit_with(
            "SELECT COUNT(*) AS n FROM lineitem",
            SubmitOptions {
                faults: Some(FaultPlan::single(
                    5,
                    FaultKind::Delay(Duration::from_millis(1)),
                )),
                estimators: Some("ensemble,safe".into()),
                ..SubmitOptions::default()
            },
        )
        .expect("admitted");
    assert_eq!(service.wait(shaky), Some(QueryState::Finished));
    let status = client.status(shaky).unwrap().expect("status");
    assert_eq!(status.trust, Some(Trust::Fallback), "fault ⇒ fallback");
    let lines = client.trace(shaky).expect("io").expect("TRACE serves");
    let meta = parse(&lines[0]).expect("meta parses");
    assert_eq!(meta.get("trust").and_then(Value::as_str), Some("fallback"));

    client.shutdown().expect("clean shutdown");
    server.shutdown();
}

#[test]
fn recorder_retains_the_tail_of_fault_killed_sessions() {
    let db = tpch();
    let mut failed_seen = 0u32;
    for seed in 1..=8u64 {
        let service = service_with(
            &db,
            ServiceConfig {
                workers: 3,
                stride: Some(100),
                fault_seed: Some(seed),
                fault_config: FaultConfig {
                    horizon: 4_000,
                    exec_errors: 1,
                    storage_errors: 1,
                    panics: 1,
                    delays: 1,
                    delay: Duration::from_millis(1),
                },
                ..ServiceConfig::default()
            },
        );
        let ids: Vec<QueryId> = workload_sql()
            .iter()
            .map(|sql| service.submit(sql).expect("admitted"))
            .collect();
        for &id in &ids {
            service.wait(id);
        }
        for &id in &ids {
            if service.status(id).map(|s| s.state) != Some(QueryState::Failed) {
                continue;
            }
            failed_seen += 1;
            // The recorder still holds this session's tail, ending in
            // the transition into FAILED — even though later sessions
            // kept writing into the shared ring.
            let tail = service.recorder().tail_for(id.0);
            assert!(!tail.is_empty(), "seed {seed}: no events retained for {id}");
            let died = tail
                .iter()
                .any(|e| e.kind == EventKind::StateChanged && e.a == QueryState::Failed.code());
            assert!(died, "seed {seed}: {id} lost its death event");
            // And the TRACE verb reconstructs the session post-mortem.
            let lines = telemetry::trace_jsonl(&service, id).expect("dead session traces");
            let meta = parse(&lines[0]).expect("meta parses");
            assert_eq!(meta.get("state").and_then(Value::as_str), Some("FAILED"));
        }
    }
    assert!(
        failed_seen > 0,
        "the dense fault mix must kill at least one session across 8 seeds"
    );
}
