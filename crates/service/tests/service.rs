//! Integration tests for the concurrent query service: determinism under
//! concurrency, cooperative cancellation, admission control, and the full
//! TCP loop the paper's Figure 1 scenario needs (submit → poll progress →
//! kill the hopeless one).

use qp_datagen::{TpchConfig, TpchDb};
use qp_service::{ProgressServer, QueryId, QueryService, QueryState, ServiceClient, ServiceConfig};
use qp_stats::DbStats;
use qp_storage::Database;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deliberately heavy query: a cross join (no equi edge → naive nested
/// loops) whose output cardinality dwarfs every real workload query, so it
/// is reliably still running when the test cancels it.
const HEAVY_SQL: &str =
    "SELECT COUNT(*) AS n FROM supplier, lineitem WHERE s_acctbal > l_extendedprice";

/// The TPC-H queries with a SQL rendering in the dialect (see
/// `qp_workloads::sql_text`).
fn workload_sql() -> Vec<&'static str> {
    qp_workloads::sql_text::SQL_QUERIES
        .iter()
        .map(|&q| qp_workloads::sql_text::tpch_sql(q).expect("sql text"))
        .collect()
}

fn tpch(scale: f64) -> Arc<Database> {
    let t = TpchDb::generate(TpchConfig {
        scale,
        z: 1.0,
        seed: 42,
    });
    Arc::new(t.db)
}

/// Serial reference run: same SQL, same database, same statistics path the
/// service uses — single-threaded `run_query`.
fn run_serial(sql: &str, db: &Database, stats: &DbStats) -> (Vec<qp_storage::Row>, u64) {
    let mut plan = qp_sql::sql_to_plan(sql, db, stats).expect("plans");
    qp_exec::estimate::annotate(&mut plan, stats);
    let (out, _) = qp_exec::run_query(&plan, db, None).expect("runs");
    (out.rows, out.total_getnext)
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

#[test]
fn concurrent_sessions_match_serial_execution() {
    let db = tpch(0.005);
    let stats = Arc::new(DbStats::build(&db));
    let service = QueryService::with_stats(
        Arc::clone(&db),
        Arc::clone(&stats),
        ServiceConfig {
            workers: 4,
            queue_depth: 8,
            stride: None,
            ..ServiceConfig::default()
        },
    );

    // Serial ground truth first, then everything at once through the pool.
    let serial: Vec<_> = workload_sql()
        .iter()
        .map(|sql| run_serial(sql, &db, &stats))
        .collect();

    let ids: Vec<QueryId> = workload_sql()
        .iter()
        .map(|sql| service.submit(sql).expect("admitted"))
        .collect();
    for (&id, (sql, (rows, total))) in ids.iter().zip(workload_sql().iter().zip(&serial)) {
        assert_eq!(
            service.wait(id),
            Some(QueryState::Finished),
            "{sql} failed: {:?}",
            service.status(id).and_then(|s| s.error)
        );
        let result = service.result(id).expect("retained");
        // Determinism under concurrency: byte-identical rows and the exact
        // same getnext accounting as the single-threaded run.
        assert_eq!(result.rows.as_slice(), rows.as_slice(), "{sql} rows differ");
        assert_eq!(
            format!("{:?}", result.rows),
            format!("{rows:?}"),
            "{sql} row bytes differ"
        );
        assert_eq!(result.total_getnext, *total, "{sql} total(Q) differs");
    }
    service.shutdown();
}

#[test]
fn cancellation_mid_query_releases_the_worker() {
    let db = tpch(0.01);
    // One worker: if cancellation leaked it, the follow-up query would
    // never run.
    let service = QueryService::new(
        Arc::clone(&db),
        ServiceConfig {
            workers: 1,
            queue_depth: 4,
            stride: Some(200),
            ..ServiceConfig::default()
        },
    );

    let heavy = service.submit(HEAVY_SQL).expect("admitted");
    assert!(
        wait_until(Duration::from_secs(20), || {
            service.status(heavy).unwrap().state == QueryState::Running
                && service
                    .status(heavy)
                    .unwrap()
                    .progress
                    .is_some_and(|p| p.curr > 0)
        }),
        "heavy query never got going"
    );
    assert_eq!(service.cancel(heavy), Some(QueryState::Running));
    assert_eq!(service.wait(heavy), Some(QueryState::Cancelled));
    let frozen = service.status(heavy).unwrap();
    assert!(frozen.rows.is_none(), "cancelled query must retain no rows");
    // The progress cell keeps its last reading: a post-mortem poll still
    // renders where the query died.
    assert!(frozen.progress.is_some_and(|p| p.curr > 0));

    // Worker released: a small query completes afterwards.
    let next = service
        .submit("SELECT COUNT(*) AS n FROM nation")
        .expect("admitted");
    assert_eq!(service.wait(next), Some(QueryState::Finished));
    assert_eq!(service.result(next).unwrap().rows.len(), 1);
    service.shutdown();
}

#[test]
fn cancelling_a_queued_query_never_runs_it() {
    let db = tpch(0.01);
    let service = QueryService::new(
        Arc::clone(&db),
        ServiceConfig {
            workers: 1,
            queue_depth: 4,
            stride: Some(200),
            ..ServiceConfig::default()
        },
    );
    let heavy = service.submit(HEAVY_SQL).expect("admitted");
    let queued = service.submit(HEAVY_SQL).expect("admitted");
    // The second heavy query is stuck behind the first on the only worker.
    assert_eq!(service.status(queued).unwrap().state, QueryState::Queued);
    assert_eq!(service.cancel(queued), Some(QueryState::Queued));
    assert_eq!(service.status(queued).unwrap().state, QueryState::Cancelled);
    assert!(
        service.status(queued).unwrap().progress.is_none(),
        "a never-started query must publish no progress"
    );
    service.cancel(heavy);
    assert_eq!(service.wait(heavy), Some(QueryState::Cancelled));
    service.shutdown();
}

#[test]
fn admission_control_sheds_load() {
    let db = tpch(0.01);
    let service = QueryService::new(
        Arc::clone(&db),
        ServiceConfig {
            workers: 1,
            queue_depth: 1,
            stride: Some(200),
            ..ServiceConfig::default()
        },
    );
    let first = service.submit(HEAVY_SQL).expect("admitted");
    // Make sure the worker has picked the first one up, so the queue slot
    // is genuinely free for the second.
    assert!(wait_until(Duration::from_secs(20), || {
        service.status(first).unwrap().state == QueryState::Running
    }));
    let second = service.submit(HEAVY_SQL).expect("queued");
    let third = service.submit(HEAVY_SQL);
    match third {
        Err(qp_service::SubmitError::Saturated { queue_depth }) => assert_eq!(queue_depth, 1),
        other => panic!("expected saturation, got {other:?}"),
    }
    // The rejected submission left no trace in the registry.
    assert_eq!(service.list().len(), 2);

    service.cancel(first);
    service.cancel(second);
    assert_eq!(service.wait(first), Some(QueryState::Cancelled));
    assert_eq!(service.wait(second), Some(QueryState::Cancelled));
    service.shutdown();
}

#[test]
fn bad_sql_is_rejected_synchronously() {
    let db = tpch(0.005);
    let service = QueryService::new(Arc::clone(&db), ServiceConfig::default());
    match service.submit("SELECT frobnicate FROM nowhere") {
        Err(qp_service::SubmitError::Plan(msg)) => {
            assert!(!msg.is_empty());
        }
        other => panic!("expected a planning error, got {other:?}"),
    }
    assert!(service.list().is_empty());
    service.shutdown();
}

/// The acceptance scenario, end to end over TCP: ≥4 TPC-H queries running
/// concurrently, STATUS polled from a separate thread while they run, one
/// query killed mid-flight, and every surviving result checked against
/// serial execution.
#[test]
fn tcp_concurrent_tpch_with_live_polling_and_cancel() {
    let db = tpch(0.01);
    let stats = Arc::new(DbStats::build(&db));
    let service = Arc::new(QueryService::with_stats(
        Arc::clone(&db),
        Arc::clone(&stats),
        ServiceConfig {
            workers: 5,
            queue_depth: 8,
            stride: Some(500),
            ..ServiceConfig::default()
        },
    ));
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let addr = server.local_addr();

    // 5 TPC-H queries (Q1, Q3, Q5, Q6, Q10) + the heavy cancel target.
    let mut client = ServiceClient::connect(addr).expect("connects");
    let tpch_ids: Vec<QueryId> = workload_sql()
        .iter()
        .map(|sql| client.submit(sql).unwrap().expect("admitted"))
        .collect();
    assert!(tpch_ids.len() >= 4, "need ≥4 concurrent TPC-H queries");
    let victim = client.submit(HEAVY_SQL).unwrap().expect("admitted");

    // Poller thread: its own connection, hammering STATUS until every
    // session is terminal. Records every reading for post-hoc checks.
    let poll_ids: Vec<QueryId> = tpch_ids.iter().copied().chain([victim]).collect();
    let poller = std::thread::spawn({
        let poll_ids = poll_ids.clone();
        move || {
            let mut client = ServiceClient::connect(addr).expect("poller connects");
            let mut readings: Vec<Vec<qp_service::ParsedStatus>> =
                poll_ids.iter().map(|_| Vec::new()).collect();
            loop {
                let mut all_done = true;
                for (i, &id) in poll_ids.iter().enumerate() {
                    let status = client.status(id).unwrap().expect("known id");
                    all_done &= status.state.is_terminal();
                    readings[i].push(status);
                }
                if all_done {
                    return readings;
                }
            }
        }
    });

    // Cancel the victim once it is demonstrably mid-flight. Waiting for
    // substantial progress (not merely the first published snapshot)
    // keeps the live-progress window wide enough that the TCP poller is
    // guaranteed to observe the victim RUNNING with estimates — cancelling
    // at the first snapshot raced the poller's round-trip latency.
    let svc = Arc::clone(&service);
    assert!(
        wait_until(Duration::from_secs(30), || {
            svc.status(victim).unwrap().state == QueryState::Running
                && svc
                    .status(victim)
                    .unwrap()
                    .progress
                    .is_some_and(|p| p.curr > 25_000)
        }),
        "victim never got going"
    );
    assert_eq!(
        client.cancel(victim).unwrap().expect("cancel accepted"),
        QueryState::Running
    );

    let readings = poller.join().expect("poller thread");
    for (&id, series) in poll_ids.iter().zip(&readings) {
        // Progress observed from outside the query thread is monotone:
        // `curr` never moves backwards across successive polls.
        let currs: Vec<u64> = series.iter().filter_map(|s| s.curr).collect();
        assert!(
            currs.windows(2).all(|w| w[0] <= w[1]),
            "{id}: curr went backwards: {currs:?}"
        );
        // So is the lower bound (bounds only ever tighten).
        let lbs: Vec<u64> = series.iter().filter_map(|s| s.lb).collect();
        assert!(
            lbs.windows(2).all(|w| w[0] <= w[1]),
            "{id}: LB went backwards"
        );
        for s in series {
            for (name, est) in &s.estimates {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(est),
                    "{id}: {name}={est} outside [0,1]"
                );
            }
        }
    }

    // At least one *live* (still-running) reading with a published pmax
    // must have been observed for the victim — the whole point of the
    // polling path is seeing progress before the query ends.
    let victim_series = &readings[readings.len() - 1];
    assert!(
        victim_series
            .iter()
            .any(|s| s.state == QueryState::Running && s.estimate("pmax").is_some()),
        "no live progress observed for the in-flight victim: {:?}",
        victim_series
            .iter()
            .map(|s| (s.state, s.curr, s.estimates.len()))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        victim_series.last().unwrap().state,
        QueryState::Cancelled,
        "victim must end Cancelled"
    );

    // Surviving queries: pmax never underestimated true progress at any
    // polled instant (Proposition 4, observed live through a socket), and
    // results are identical to serial execution.
    let serial: Vec<_> = workload_sql()
        .iter()
        .map(|sql| run_serial(sql, &db, &stats))
        .collect();
    for ((&id, series), (sql, (rows, total))) in tpch_ids
        .iter()
        .zip(&readings)
        .zip(workload_sql().iter().zip(&serial))
    {
        let finished = series.last().unwrap();
        assert_eq!(finished.state, QueryState::Finished, "{sql} did not finish");
        assert_eq!(finished.total_getnext, Some(*total), "{sql} total differs");
        assert_eq!(finished.rows, Some(rows.len() as u64), "{sql} row count");
        for s in series {
            if let (Some(curr), Some(pmax)) = (s.curr, s.estimate("pmax")) {
                let true_progress = curr as f64 / *total as f64;
                assert!(
                    pmax >= true_progress - 1e-9,
                    "{id}: pmax {pmax} underestimates live progress {true_progress}"
                );
            }
        }
        let result = service.result(id).expect("retained");
        assert_eq!(result.rows.as_slice(), rows.as_slice(), "{sql} rows differ");
    }

    // LIST sees every session; the victim is the only cancelled one.
    let listed = client.list().unwrap().expect("list");
    assert_eq!(listed.len(), 6);
    let cancelled: Vec<QueryId> = listed
        .iter()
        .filter(|(_, s, _)| *s == QueryState::Cancelled)
        .map(|(id, _, _)| *id)
        .collect();
    assert_eq!(cancelled, vec![victim]);

    client.shutdown().expect("shutdown");
    server.shutdown();
}

#[test]
fn tcp_protocol_error_paths() {
    let db = tpch(0.002);
    let service = Arc::new(QueryService::new(Arc::clone(&db), ServiceConfig::default()));
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connects");

    // Unknown id and bad SQL travel back as ERR lines.
    assert!(client.status(QueryId(999)).unwrap().is_err());
    assert!(client.cancel(QueryId(999)).unwrap().is_err());
    let err = client.submit("SELECT x FROM not_a_table").unwrap();
    assert!(err.is_err(), "bad SQL must be rejected at SUBMIT");

    // A good query still works on the same connection afterwards.
    let id = client
        .submit("SELECT COUNT(*) AS n FROM region")
        .unwrap()
        .expect("admitted");
    assert!(wait_until(Duration::from_secs(10), || {
        service.status(id).unwrap().state == QueryState::Finished
    }));
    let status = client.status(id).unwrap().expect("status");
    assert_eq!(status.state, QueryState::Finished);
    assert_eq!(status.rows, Some(1));

    server.shutdown();
}

#[test]
fn parallel_sessions_match_serial_and_pick_their_estimators() {
    use qp_service::{SubmitError, SubmitOptions};

    let db = tpch(0.005);
    let stats = Arc::new(DbStats::build(&db));
    let service = Arc::new(QueryService::with_stats(
        Arc::clone(&db),
        Arc::clone(&stats),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    ));

    // In-process: PARALLELISM=4 sessions with a custom estimator suite
    // return byte-identical rows and the exact serial total(Q).
    for sql in workload_sql().into_iter().take(3) {
        let (rows, total) = run_serial(sql, &db, &stats);
        let id = service
            .submit_with(
                sql,
                SubmitOptions {
                    parallelism: Some(4),
                    estimators: Some("pmax,dne".into()),
                    ..SubmitOptions::default()
                },
            )
            .expect("admitted");
        assert_eq!(service.wait(id), Some(QueryState::Finished), "{sql}");
        let result = service.result(id).expect("retained");
        assert_eq!(result.rows.as_slice(), rows.as_slice(), "{sql} rows differ");
        assert_eq!(result.total_getnext, total, "{sql} total(Q) differs");
        let report = service.status(id).expect("status");
        assert_eq!(report.estimators, vec!["pmax", "dne"], "{sql} suite");
    }

    // Invalid options are rejected synchronously as BadRequest — no
    // session is created, no worker is spent.
    for (sql, opts) in [
        (
            "SELECT COUNT(*) AS n FROM region",
            SubmitOptions {
                parallelism: Some(0),
                ..SubmitOptions::default()
            },
        ),
        (
            "SELECT COUNT(*) AS n FROM region",
            SubmitOptions {
                estimators: Some("pmax,nonsense".into()),
                ..SubmitOptions::default()
            },
        ),
    ] {
        assert!(matches!(
            service.submit_with(sql, opts),
            Err(SubmitError::BadRequest(_))
        ));
    }

    // Over the wire: HELLO advertises the capabilities, and a SUBMIT
    // carrying both fields round-trips to the same serial answer.
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connects");
    let hello = client.hello().expect("hello");
    assert!(hello.contains("protocol=3"), "hello: {hello}");
    assert!(hello.contains("PARALLELISM"), "hello: {hello}");
    assert!(hello.contains("pmax"), "hello: {hello}");

    let sql = "SELECT COUNT(*) AS n FROM region";
    let (rows, total) = run_serial(sql, &db, &stats);
    let id = client
        .submit_with_fields("PARALLELISM=4 ESTIMATORS=safe", sql)
        .unwrap()
        .expect("admitted");
    assert_eq!(service.wait(id), Some(QueryState::Finished));
    let result = service.result(id).expect("retained");
    assert_eq!(result.rows.as_slice(), rows.as_slice());
    assert_eq!(result.total_getnext, total);
    let status = client.status(id).unwrap().expect("status");
    assert_eq!(status.state, QueryState::Finished);

    // A malformed field value is an ERR at SUBMIT time.
    let err = client.submit_with_fields("PARALLELISM=0", sql).unwrap();
    assert!(err.is_err(), "PARALLELISM=0 must be rejected");

    server.shutdown();
}

#[test]
fn morsel_size_field_round_trips_and_stays_results_neutral() {
    use qp_service::{SubmitError, SubmitOptions};

    let db = tpch(0.005);
    let stats = Arc::new(DbStats::build(&db));
    let service = Arc::new(QueryService::with_stats(
        Arc::clone(&db),
        Arc::clone(&stats),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    ));

    // In-process: the morsel size is a scheduling knob only — any value,
    // from one-row morsels to a single whole-table morsel, must leave
    // rows and total(Q) byte-identical to the serial run.
    let sql = "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 10";
    let (rows, total) = run_serial(sql, &db, &stats);
    for morsel_size in [1usize, 7, 1024, usize::MAX] {
        let id = service
            .submit_with(
                sql,
                SubmitOptions {
                    parallelism: Some(4),
                    morsel_size: Some(morsel_size),
                    ..SubmitOptions::default()
                },
            )
            .expect("admitted");
        assert_eq!(service.wait(id), Some(QueryState::Finished));
        let result = service.result(id).expect("retained");
        assert_eq!(
            result.rows.as_slice(),
            rows.as_slice(),
            "MORSEL_SIZE={morsel_size} rows differ"
        );
        assert_eq!(
            result.total_getnext, total,
            "MORSEL_SIZE={morsel_size} total(Q) differs"
        );
    }

    // A zero morsel size is rejected synchronously — no session spent.
    assert!(matches!(
        service.submit_with(
            sql,
            SubmitOptions {
                morsel_size: Some(0),
                ..SubmitOptions::default()
            },
        ),
        Err(SubmitError::BadRequest(_))
    ));

    // Over the wire: HELLO advertises MORSEL_SIZE so clients can gate on
    // it, and a SUBMIT carrying the field round-trips to the serial
    // answer. Bad values are an ERR at SUBMIT time.
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connects");
    let hello = client.hello().expect("hello");
    assert!(hello.contains("MORSEL_SIZE"), "hello: {hello}");

    let id = client
        .submit_with_fields("PARALLELISM=4 MORSEL_SIZE=1", sql)
        .unwrap()
        .expect("admitted");
    assert_eq!(service.wait(id), Some(QueryState::Finished));
    let result = service.result(id).expect("retained");
    assert_eq!(result.rows.as_slice(), rows.as_slice());
    assert_eq!(result.total_getnext, total);

    let err = client.submit_with_fields("MORSEL_SIZE=0", sql).unwrap();
    assert!(err.is_err(), "MORSEL_SIZE=0 must be rejected");

    server.shutdown();
}
