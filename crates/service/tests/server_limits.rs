//! Server resource limits: the connection cap, idle-connection reaping,
//! and bounded-grace shutdown with a query still running.

use qp_datagen::{TpchConfig, TpchDb};
use qp_service::{
    ProgressServer, QueryService, QueryState, RetryPolicy, ServerConfig, ServiceClient,
    ServiceConfig,
};
use qp_storage::Database;
use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_db() -> Arc<Database> {
    let t = TpchDb::generate(TpchConfig {
        scale: 0.002,
        z: 1.0,
        seed: 42,
    });
    Arc::new(t.db)
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// Fill the server with idle sockets past its cap; the idle reaper must
/// close them, and a real client arriving afterwards must be served.
#[test]
fn idle_connections_are_reaped_and_later_clients_served() {
    let service = Arc::new(QueryService::new(tiny_db(), ServiceConfig::default()));
    let mut server = ProgressServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            max_connections: 2,
            idle_timeout: Duration::from_millis(250),
            ..ServerConfig::default()
        },
    )
    .expect("binds");
    let addr = server.local_addr();

    // Two idle sockets occupy every handler slot (a third would sit in
    // the OS backlog unserved).
    let idle: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(addr).expect("connects"))
        .collect();

    // The reaper closes them after the idle timeout: reads observe EOF.
    for mut s in idle {
        s.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut buf = [0u8; 1];
        let eof = wait_until(Duration::from_secs(5), || matches!(s.read(&mut buf), Ok(0)));
        assert!(eof, "idle connection was never reaped");
    }

    // With the slots freed, a real client gets in and is served — using
    // the retry policy a client behind a briefly-full server would use.
    let mut client = ServiceClient::connect_with_retry(
        addr,
        &RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 7,
        },
    )
    .expect("connects after reaping");
    let id = client
        .submit("SELECT COUNT(*) AS n FROM region")
        .unwrap()
        .expect("admitted");
    assert!(wait_until(Duration::from_secs(10), || {
        service.status(id).unwrap().state == QueryState::Finished
    }));
    let status = client.status(id).unwrap().expect("status");
    assert_eq!(status.state, QueryState::Finished);

    server.shutdown();
}

/// `connect_with_retry` against a dead port exhausts its attempts and
/// reports the last error instead of hanging or panicking.
#[test]
fn connect_with_retry_gives_up_cleanly() {
    // Port 1 on loopback: refused (or at worst filtered) — never a
    // ProgressServer.
    let start = Instant::now();
    let result = ServiceClient::connect_with_retry(
        "127.0.0.1:1",
        &RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
            seed: 1,
        },
    );
    assert!(result.is_err(), "connecting to port 1 should fail");
    // 3 attempts with ≤20ms caps: the whole thing is bounded.
    assert!(start.elapsed() < Duration::from_secs(10));
}

/// `shutdown()` with a RUNNING query: the grace period elapses, the
/// straggler is cancelled, and the call returns promptly — it must not
/// wait for the cross join to finish naturally.
#[test]
fn shutdown_cancels_running_queries_after_grace() {
    let service = QueryService::new(
        tiny_db(),
        ServiceConfig {
            workers: 1,
            stride: Some(100),
            shutdown_grace: Duration::from_millis(200),
            ..ServiceConfig::default()
        },
    );
    // Four-way cross product (~30M tuples at this scale): far too much
    // work to finish inside the grace window even on a fast machine, so
    // the straggler is genuinely still RUNNING when the grace expires.
    let heavy = service
        .submit(
            "SELECT COUNT(*) AS n FROM supplier, nation, region, lineitem \
             WHERE s_acctbal > l_extendedprice",
        )
        .expect("admitted");
    assert!(wait_until(Duration::from_secs(20), || {
        service.status(heavy).unwrap().state == QueryState::Running
    }));

    let start = Instant::now();
    service.shutdown();
    // Grace (200ms) + one cooperative cancellation: well under 10s.
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "shutdown took {:?}",
        start.elapsed()
    );
    assert_eq!(
        service.status(heavy).unwrap().state,
        QueryState::Cancelled,
        "the straggler must be cancelled, not left running"
    );
}

/// A dropped-then-restored connection: with reconnect armed (as
/// `connect_with_retry` clients are), idempotent STATUS/METRICS/TRACE
/// requests resend over a fresh connection and yield the same answer.
/// A plain `connect` client just surfaces the transport error.
#[test]
fn idempotent_requests_survive_a_dropped_connection() {
    let service = Arc::new(QueryService::new(tiny_db(), ServiceConfig::default()));
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let addr = server.local_addr();

    let mut client =
        ServiceClient::connect_with_retry(addr, &RetryPolicy::default()).expect("connects");
    let id = client
        .submit("SELECT COUNT(*) AS n FROM region")
        .unwrap()
        .expect("admitted");
    assert_eq!(service.wait(id), Some(QueryState::Finished));
    let before = client.status(id).unwrap().expect("status");
    assert_eq!(before.state, QueryState::Finished);

    // Kill the TCP connection out from under the client. The next
    // STATUS reconnects, resends once, and reports the same terminal
    // answer — one consistent result, not a duplicate side effect.
    client.sever();
    let after = client.status(id).unwrap().expect("status after reconnect");
    assert_eq!(after.state, before.state);
    assert_eq!(after.rows, before.rows);
    assert_eq!(after.curr, before.curr);

    // Block-framed reads ride the same path, even severed mid-session.
    client.sever();
    let metrics = client.metrics().unwrap().expect("metrics after reconnect");
    assert!(metrics.contains("qp_sessions_submitted_total"));
    client.sever();
    let trace = client.trace(id).unwrap().expect("trace after reconnect");
    assert!(!trace.is_empty());

    // Without reconnect armed, the same drop is a hard transport error.
    let mut plain = ServiceClient::connect(addr).expect("connects");
    plain.sever();
    assert!(plain.status(id).is_err(), "plain client must not retry");

    server.shutdown();
}

/// `shutdown()` with everything already terminal returns without waiting
/// out the grace period.
#[test]
fn shutdown_with_drained_sessions_is_prompt() {
    let service = QueryService::new(
        tiny_db(),
        ServiceConfig {
            shutdown_grace: Duration::from_secs(30),
            ..ServiceConfig::default()
        },
    );
    let id = service
        .submit("SELECT COUNT(*) AS n FROM region")
        .expect("admitted");
    assert_eq!(service.wait(id), Some(QueryState::Finished));
    let start = Instant::now();
    service.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "an idle service must not wait out its 30s grace"
    );
}
