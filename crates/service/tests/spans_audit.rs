//! The deep-observability surface end to end: hierarchical span trees
//! and the `AUDIT` estimator-accuracy postmortems.
//!
//! * Span trees are *well-formed* for every session the service runs —
//!   under Exchange fan-out (`PARALLELISM`) and under mid-flight
//!   cancellation, across several scheduling seeds: exactly one
//!   session/query/pipeline span each, every span closed, every
//!   parent id resolving to another span of the same session, workers
//!   nesting under their Exchange, operators under the pipeline tree.
//! * `AUDIT <id>` over TCP is byte-identical to the in-process
//!   `telemetry::audit_jsonl` replay of the same session, bare `AUDIT`
//!   aggregates every retained postmortem, unknown ids get a clean
//!   `ERR`, and only FINISHED sessions are scored (a cancelled query
//!   has no ground-truth `total(Q)` to score against).

use qp_datagen::{TpchConfig, TpchDb};
use qp_exec::FaultConfig;
use qp_obs::{Span, SpanKind};
use qp_service::{
    telemetry, ProgressServer, QueryId, QueryService, QueryState, ServiceClient, ServiceConfig,
    SubmitOptions,
};
use qp_stats::DbStats;
use qp_storage::Database;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn tpch() -> Arc<Database> {
    let t = TpchDb::generate(TpchConfig {
        scale: 0.005,
        z: 1.0,
        seed: 42,
    });
    Arc::new(t.db)
}

fn service_with(db: &Arc<Database>, config: ServiceConfig) -> Arc<QueryService> {
    let stats = Arc::new(DbStats::build(db));
    Arc::new(QueryService::with_stats(Arc::clone(db), stats, config))
}

/// Structural well-formedness of one session's span tree. Returns the
/// per-kind span counts for the caller's stronger assertions.
fn assert_well_formed(id: QueryId, spans: &[Span]) -> HashMap<SpanKind, usize> {
    assert!(!spans.is_empty(), "{id}: no spans recorded");
    let by_id: HashMap<u64, &Span> = spans.iter().map(|s| (s.span, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "{id}: duplicate span ids");
    let mut counts: HashMap<SpanKind, usize> = HashMap::new();
    for s in spans {
        *counts.entry(s.kind).or_default() += 1;
        assert_eq!(s.query, id.0, "{id}: span tagged with foreign query");
        let end = s
            .end_us
            .unwrap_or_else(|| panic!("{id}: {:?} span {} never closed", s.kind, s.span));
        assert!(
            end >= s.begin_us,
            "{id}: {:?} span ends before it begins",
            s.kind
        );
        match s.kind {
            SpanKind::Session => {
                assert_eq!(s.parent, 0, "{id}: session span must be a root");
            }
            kind => {
                let parent = by_id.get(&s.parent).unwrap_or_else(|| {
                    panic!(
                        "{id}: {kind:?} span {} orphaned (parent {})",
                        s.span, s.parent
                    )
                });
                // The hierarchy the executor promises: query under
                // session, pipeline under query, Exchange/operators in
                // the pipeline tree, workers under their Exchange.
                let ok = match kind {
                    SpanKind::Session => unreachable!(),
                    SpanKind::Query => parent.kind == SpanKind::Session,
                    SpanKind::Pipeline => parent.kind == SpanKind::Query,
                    SpanKind::Exchange | SpanKind::Operator => matches!(
                        parent.kind,
                        SpanKind::Pipeline | SpanKind::Worker | SpanKind::Operator
                    ),
                    SpanKind::Worker => parent.kind == SpanKind::Exchange,
                };
                assert!(
                    ok,
                    "{id}: {kind:?} span {} nests under {:?}",
                    s.span, parent.kind
                );
            }
        }
    }
    for kind in [SpanKind::Session, SpanKind::Query, SpanKind::Pipeline] {
        assert_eq!(
            counts.get(&kind).copied().unwrap_or(0),
            1,
            "{id}: expected exactly one {kind:?} span"
        );
    }
    counts
}

#[test]
fn span_trees_stay_well_formed_under_fanout_and_cancel() {
    let db = tpch();
    for seed in [1u64, 5, 9] {
        let service = service_with(
            &db,
            ServiceConfig {
                workers: 3,
                stride: Some(100),
                // The seed perturbs scheduling via deterministic fault
                // *delays only* — no errors or panics, so queries still
                // finish, but the three runs interleave differently.
                fault_seed: Some(seed),
                fault_config: FaultConfig {
                    horizon: 4_000,
                    exec_errors: 0,
                    storage_errors: 0,
                    panics: 0,
                    delays: 3,
                    delay: Duration::from_millis(1),
                },
                ..ServiceConfig::default()
            },
        );

        // Fan-out: an Exchange splits the lineitem scan across 3
        // partition workers, each a forked ExecContext.
        let fanned = service
            .submit_with(
                "SELECT COUNT(*) AS n FROM lineitem",
                SubmitOptions {
                    parallelism: Some(3),
                    ..SubmitOptions::default()
                },
            )
            .expect("admitted");
        // Mid-flight cancel: same shape, interrupted while the workers
        // drive. Every span must still close.
        let cancelled = service
            .submit_with(
                "SELECT COUNT(*) AS n FROM lineitem l1, nation n1",
                SubmitOptions {
                    parallelism: Some(2),
                    ..SubmitOptions::default()
                },
            )
            .expect("admitted");
        // A plain serial query rides along: no Exchange, no workers.
        let serial = service
            .submit("SELECT COUNT(*) AS n FROM nation")
            .expect("admitted");

        while service.status(cancelled).map(|s| s.state) == Some(QueryState::Queued) {
            std::thread::yield_now();
        }
        service.cancel(cancelled);

        assert_eq!(service.wait(fanned), Some(QueryState::Finished));
        assert_eq!(service.wait(serial), Some(QueryState::Finished));
        let cancelled_state = service.wait(cancelled).expect("terminal");
        assert!(
            matches!(
                cancelled_state,
                QueryState::Cancelled | QueryState::Finished
            ),
            "seed {seed}: cancel landed in {cancelled_state:?}"
        );

        let sink = service.span_sink();
        assert_eq!(sink.dropped(), 0, "seed {seed}: span ring overflowed");
        for id in [fanned, cancelled, serial] {
            let counts = assert_well_formed(id, &sink.spans_for(id.0));
            let workers = counts.get(&SpanKind::Worker).copied().unwrap_or(0);
            let exchanges = counts.get(&SpanKind::Exchange).copied().unwrap_or(0);
            if id == fanned {
                assert_eq!(exchanges, 1, "seed {seed}: fan-out without Exchange span");
                assert_eq!(workers, 3, "seed {seed}: expected 3 worker spans");
            }
            if id == serial {
                assert_eq!(exchanges, 0, "seed {seed}: serial query grew an Exchange");
                assert_eq!(workers, 0, "seed {seed}: serial query grew workers");
            }
            assert!(
                counts.get(&SpanKind::Operator).copied().unwrap_or(0) > 0,
                "seed {seed}: {id} recorded no operator spans"
            );
        }
    }
}

#[test]
fn audit_over_tcp_matches_in_process_replay() {
    let db = tpch();
    let service = service_with(
        &db,
        ServiceConfig {
            workers: 2,
            stride: Some(100),
            ..ServiceConfig::default()
        },
    );
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connects");

    let hello = client.hello().expect("hello");
    assert!(
        hello.contains("AUDIT"),
        "HELLO must advertise AUDIT: {hello}"
    );

    // Nothing finished yet: bare AUDIT is a legal empty block, a made-up
    // id is a clean error.
    assert_eq!(client.audit(None).expect("io"), Ok(vec![]));
    assert!(client.audit(Some(QueryId(999))).expect("io").is_err());

    let a = client
        .submit("SELECT COUNT(*) AS n FROM lineitem")
        .expect("io")
        .expect("admitted");
    let b = client
        .submit("SELECT COUNT(*) AS n FROM orders")
        .expect("io")
        .expect("admitted");
    assert_eq!(service.wait(a), Some(QueryState::Finished));
    assert_eq!(service.wait(b), Some(QueryState::Finished));

    // A cancelled-before-running query never finishes, so it is never
    // scored — and its id stays unknown to AUDIT.
    let c = service
        .submit("SELECT COUNT(*) AS n FROM lineitem l1, orders o1")
        .expect("admitted");
    service.cancel(c);
    service.wait(c);

    for id in [a, b] {
        let wire = client.audit(Some(id)).expect("io").expect("AUDIT serves");
        let local = telemetry::audit_jsonl(&service, Some(id)).expect("retained");
        assert_eq!(
            wire, local,
            "{id}: wire AUDIT diverges from in-process replay"
        );
        assert!(!wire.is_empty(), "{id}: finished session must be scored");
        for line in &wire {
            assert!(
                line.contains(&format!("\"query\":{}", id.0)),
                "{id}: audit line tagged wrong: {line}"
            );
        }
    }
    if service.status(c).map(|s| s.state) == Some(QueryState::Cancelled) {
        assert!(
            client.audit(Some(c)).expect("io").is_err(),
            "cancelled sessions have no total(Q) and must not be scored"
        );
    }

    // Bare AUDIT is the concatenation of every retained postmortem,
    // oldest first — byte-identical to the in-process renderer too.
    let all_wire = client.audit(None).expect("io").expect("AUDIT serves");
    let all_local = telemetry::audit_jsonl(&service, None).expect("always Some");
    assert_eq!(all_wire, all_local);
    let per_query: usize = [a, b]
        .iter()
        .map(|&id| {
            telemetry::audit_jsonl(&service, Some(id))
                .expect("retained")
                .len()
        })
        .sum();
    assert_eq!(
        all_wire.len(),
        per_query,
        "bare AUDIT must cover both sessions"
    );

    client.shutdown().expect("clean shutdown");
    server.shutdown();
}

#[test]
fn slow_query_threshold_records_the_flight_event() {
    let db = tpch();
    let service = service_with(
        &db,
        ServiceConfig {
            workers: 1,
            slow_query_threshold: Some(Duration::ZERO),
            ..ServiceConfig::default()
        },
    );
    let id = service
        .submit("SELECT COUNT(*) AS n FROM lineitem")
        .expect("admitted");
    assert_eq!(service.wait(id), Some(QueryState::Finished));
    let tail = service.recorder().tail_for(id.0);
    let slow = tail
        .iter()
        .find(|e| e.kind == qp_obs::EventKind::SlowQuery)
        .expect("zero threshold marks every query slow");
    // a = worst postmortem ratio error in milli-units (>= 1.0 by
    // definition), b = the final trust flag's discriminant.
    assert!(slow.a >= 1000, "worst ratio below 1.0: {}", slow.a);
    assert!(slow.b <= 2, "trust code out of range: {}", slow.b);
}
