//! The service over a paged database: WAL replay on open, result parity
//! with the in-memory backend, and the `PAGE_CACHE_FRAMES=` wire field
//! round-tripping (resize observable through `METRICS`, zero and
//! memory-only misuse rejected with typed errors).

use qp_datagen::{TpchConfig, TpchDb};
use qp_service::{ProgressServer, QueryService, QueryState, ServiceClient, ServiceConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qp-service-paged-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny() -> TpchDb {
    TpchDb::generate(TpchConfig {
        scale: 0.002,
        z: 1.0,
        seed: 11,
    })
}

const SQL: &str = "SELECT COUNT(*) AS n FROM orders, customer \
                   WHERE o_custkey = c_custkey AND o_totalprice > 1000";

#[test]
fn paged_service_matches_memory_service() {
    let t = tiny();
    let dir = tmp("parity");
    t.save_paged(&dir).expect("bulk load");

    let mem = QueryService::new(Arc::new(t.db), ServiceConfig::default());
    let paged = QueryService::open_paged(&dir, 16, ServiceConfig::default()).expect("open");
    assert!(paged.database().buffer_pool().is_some());

    let (a, b) = (mem.submit(SQL).unwrap(), paged.submit(SQL).unwrap());
    assert_eq!(mem.wait(a), Some(QueryState::Finished));
    assert_eq!(paged.wait(b), Some(QueryState::Finished));
    let (sa, sb) = (mem.status(a).unwrap(), paged.status(b).unwrap());
    assert_eq!(sa.rows, sb.rows);
    assert_eq!(
        sa.total_getnext, sb.total_getnext,
        "total(Q) must not depend on the backend"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn page_cache_frames_round_trips_over_the_wire() {
    let t = tiny();
    let dir = tmp("wire");
    t.save_paged(&dir).expect("bulk load");
    let service = Arc::new(QueryService::open_paged(&dir, 64, ServiceConfig::default()).unwrap());
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let mut client = ServiceClient::connect(server.local_addr()).unwrap();

    // The capability line advertises the field, so clients can gate on it.
    assert!(client.hello().unwrap().contains("PAGE_CACHE_FRAMES"));

    // Zero is a typed BAD_REQUEST, not SQL and not a panic.
    let err = client
        .submit_with_fields("PAGE_CACHE_FRAMES=0", SQL)
        .unwrap()
        .unwrap_err();
    assert!(err.starts_with("BAD_REQUEST"), "{err}");

    // A valid resize is accepted and observable through METRICS.
    let id = client
        .submit_with_fields("PAGE_CACHE_FRAMES=7", SQL)
        .unwrap()
        .expect("accepted");
    assert_eq!(service.wait(id), Some(QueryState::Finished));

    let metrics = client.metrics().unwrap().unwrap();
    assert!(metrics.contains("qp_pagecache_frames 7"), "{metrics}");
    assert!(metrics.contains("qp_wal_fsyncs_total"), "{metrics}");
    let misses: f64 = metrics
        .lines()
        .find(|l| l.starts_with("qp_pagecache_misses_total"))
        .and_then(|l| l.rsplit(' ').next())
        .expect("misses sample")
        .parse()
        .unwrap();
    assert!(
        misses > 0.0,
        "a real scan through the pool must miss at least once"
    );
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn page_cache_frames_rejected_on_memory_backend() {
    let t = tiny();
    let service = Arc::new(QueryService::new(Arc::new(t.db), ServiceConfig::default()));
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let mut client = ServiceClient::connect(server.local_addr()).unwrap();
    let err = client
        .submit_with_fields("PAGE_CACHE_FRAMES=8", SQL)
        .unwrap()
        .unwrap_err();
    assert!(err.starts_with("BAD_REQUEST"), "{err}");
    drop(client);
    server.shutdown();
}
