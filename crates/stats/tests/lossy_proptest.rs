//! Property test of the *lossiness* premise (Section 2.3 of the paper):
//! for relations with any slack between adjacent values, there is a
//! single-tuple mutation — to a fresh value — that leaves the equi-depth
//! histogram unchanged. Lossiness is the hinge of the paper's Theorem 1;
//! this test verifies our statistics generator actually has the property
//! the theory requires.
//!
//! Ported from `proptest` to the in-tree `qp_testkit::prop` harness; the
//! invariants and case counts are unchanged.

use qp_stats::Histogram;
use qp_storage::Value;
use qp_testkit::prop::collection;
use qp_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Finds a victim index and a fresh replacement value that stays strictly
/// inside the victim's histogram bucket and collides with no existing
/// value.
fn find_in_bucket_mutation(vals: &[i64], hist: &Histogram) -> Option<(usize, i64)> {
    use std::collections::{HashMap, HashSet};
    let present: HashSet<i64> = vals.iter().copied().collect();
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for &v in vals {
        *counts.entry(v).or_default() += 1;
    }
    for (i, &v) in vals.iter().enumerate() {
        // The victim must be unique in the relation: mutating one copy of
        // a duplicated value would change the bucket's distinct count
        // (the paper's definition replaces the tuple "with values not
        // currently present", which only preserves distinct counts when
        // the old value disappears entirely).
        if counts[&v] != 1 {
            continue;
        }
        let vv = Value::Int(v);
        // Locate the containing bucket.
        let Some(b) = hist.buckets().iter().find(|b| vv >= b.lo && vv <= b.hi) else {
            continue;
        };
        let (Some(lo), Some(hi)) = (b.lo.as_i64(), b.hi.as_i64()) else {
            continue;
        };
        // The victim must be strictly interior (so boundaries survive) and
        // the replacement fresh, interior, and order-preserving within the
        // bucket relative to the victim's neighbors.
        if v <= lo || v >= hi {
            continue;
        }
        for cand in [v + 1, v - 1] {
            if cand > lo && cand < hi && !present.contains(&cand) {
                return Some((i, cand));
            }
        }
    }
    None
}

prop_check! {
    cases = 96,

    /// Whenever an in-bucket mutation exists, applying it preserves the
    /// histogram (bucket boundaries, counts, distinct counts) — i.e. the
    /// generator is lossy in exactly the formal sense the paper's lower
    /// bound needs.
    fn equi_depth_is_lossy_under_in_bucket_mutations(
        mut vals in collection::vec(0i64..10_000, 20..300),
        buckets in 2usize..20,
    ) {
        // Spread values out so interior gaps are common.
        for v in &mut vals {
            *v *= 3;
        }
        let as_values = |vs: &[i64]| vs.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>();
        let before = Histogram::equi_depth(as_values(&vals).iter(), buckets);
        if let Some((idx, replacement)) = find_in_bucket_mutation(&vals, &before) {
            let mut mutated = vals.clone();
            mutated[idx] = replacement;
            let after = Histogram::equi_depth(as_values(&mutated).iter(), buckets);
            prop_assert_eq!(before.buckets().len(), after.buckets().len());
            for (a, b) in before.buckets().iter().zip(after.buckets()) {
                prop_assert_eq!(a.count, b.count, "counts diverged");
                prop_assert_eq!(a.distinct, b.distinct, "distincts diverged");
                prop_assert_eq!(&a.lo, &b.lo, "lower boundary moved");
                prop_assert_eq!(&a.hi, &b.hi, "upper boundary moved");
            }
        }
        // (If no mutation site exists — e.g. fully dense data — the
        // property is vacuous for this instance; the generator strategy
        // makes that rare.)
    }

    /// Histogram range bounds always bracket the true count, for random
    /// data and random ranges (the soundness the pmax/safe bound rules
    /// rely on, Section 5.1 footnote 2).
    fn range_bounds_are_sound(
        vals in collection::vec(-500i64..500, 1..400),
        buckets in 1usize..30,
        lo in -500i64..500,
        width in 0i64..500,
    ) {
        let hi = lo.saturating_add(width);
        let values: Vec<Value> = vals.iter().map(|&v| Value::Int(v)).collect();
        let h = Histogram::equi_depth(values.iter(), buckets);
        let truth = vals.iter().filter(|&&v| v >= lo && v <= hi).count() as u64;
        let lo_v = Value::Int(lo);
        let hi_v = Value::Int(hi);
        let lb = h.lower_bound_range(
            std::ops::Bound::Included(&lo_v),
            std::ops::Bound::Included(&hi_v),
        );
        let ub = h.upper_bound_range(
            std::ops::Bound::Included(&lo_v),
            std::ops::Bound::Included(&hi_v),
        );
        prop_assert!(lb <= truth, "lb {} > truth {}", lb, truth);
        prop_assert!(ub >= truth, "ub {} < truth {}", ub, truth);
    }

    /// Equality upper bounds are sound for arbitrary multisets.
    fn eq_upper_bound_is_sound(
        vals in collection::vec(0i64..50, 1..300),
        probe in 0i64..50,
        buckets in 1usize..10,
    ) {
        let values: Vec<Value> = vals.iter().map(|&v| Value::Int(v)).collect();
        let h = Histogram::equi_depth(values.iter(), buckets);
        let truth = vals.iter().filter(|&&v| v == probe).count() as u64;
        prop_assert!(h.upper_bound_eq(&Value::Int(probe)) >= truth);
    }
}
