//! Fixed-size reservoir samples — the *randomized* single-relation
//! statistics generator of Section 2.3.
//!
//! The paper notes that all of its results carry over from deterministic
//! generators (histograms) to randomized ones (pre-computed samples), with
//! "high probability" qualifiers. A fixed-size sample is lossy in the same
//! sense: with probability `1 - k/N` a given tuple is not in the sample at
//! all, so changing it cannot change the statistic.

use qp_storage::Value;
use qp_testkit::rng::TestRng;

/// A uniform random sample of up to `capacity` values, built by reservoir
/// sampling (Vitter's Algorithm R) over a single pass.
#[derive(Debug)]
pub struct ReservoirSample {
    reservoir: Vec<Value>,
    seen: u64,
    capacity: usize,
    rng: TestRng,
}

impl ReservoirSample {
    /// Creates an empty sampler with the given capacity and seed. The seed
    /// makes statistics reproducible across runs of an experiment.
    pub fn new(capacity: usize, seed: u64) -> ReservoirSample {
        assert!(capacity > 0, "capacity must be positive");
        ReservoirSample {
            reservoir: Vec::with_capacity(capacity),
            seen: 0,
            capacity,
            rng: TestRng::seed_from_u64(seed),
        }
    }

    /// Offers one value to the reservoir.
    pub fn offer(&mut self, v: &Value) {
        self.seen += 1;
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(v.clone());
        } else {
            let j = self.rng.random_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.reservoir[j as usize] = v.clone();
            }
        }
    }

    /// Builds a sample from an iterator of values.
    pub fn build<'a>(
        values: impl IntoIterator<Item = &'a Value>,
        capacity: usize,
        seed: u64,
    ) -> ReservoirSample {
        let mut s = ReservoirSample::new(capacity, seed);
        for v in values {
            s.offer(v);
        }
        s
    }

    /// The sampled values (unordered).
    pub fn values(&self) -> &[Value] {
        &self.reservoir
    }

    /// How many values were offered in total.
    pub fn population_size(&self) -> u64 {
        self.seen
    }

    /// Estimated selectivity of a predicate, as the fraction of sampled
    /// values satisfying it.
    pub fn selectivity(&self, pred: impl Fn(&Value) -> bool) -> f64 {
        if self.reservoir.is_empty() {
            return 0.0;
        }
        let hits = self.reservoir.iter().filter(|v| pred(v)).count();
        hits as f64 / self.reservoir.len() as f64
    }

    /// Estimated cardinality of a predicate over the full population.
    pub fn estimate(&self, pred: impl Fn(&Value) -> bool) -> f64 {
        self.selectivity(pred) * self.seen as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_population_is_kept_entirely() {
        let vals: Vec<Value> = (0..10).map(Value::Int).collect();
        let s = ReservoirSample::build(vals.iter(), 100, 1);
        assert_eq!(s.values().len(), 10);
        assert_eq!(s.population_size(), 10);
    }

    #[test]
    fn capacity_is_respected() {
        let vals: Vec<Value> = (0..10_000).map(Value::Int).collect();
        let s = ReservoirSample::build(vals.iter(), 64, 1);
        assert_eq!(s.values().len(), 64);
        assert_eq!(s.population_size(), 10_000);
    }

    #[test]
    fn selectivity_estimate_is_close_for_uniform_data() {
        // Half the values are below 5000; the estimate should be ~0.5.
        let vals: Vec<Value> = (0..10_000).map(Value::Int).collect();
        let s = ReservoirSample::build(vals.iter(), 1_000, 7);
        let sel = s.selectivity(|v| *v < Value::Int(5_000));
        assert!(
            (sel - 0.5).abs() < 0.08,
            "selectivity {sel} too far from 0.5"
        );
        let est = s.estimate(|v| *v < Value::Int(5_000));
        assert!((est - 5_000.0).abs() < 800.0, "estimate {est}");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let vals: Vec<Value> = (0..5_000).map(Value::Int).collect();
        let a = ReservoirSample::build(vals.iter(), 32, 99);
        let b = ReservoirSample::build(vals.iter(), 32, 99);
        assert_eq!(a.values(), b.values());
    }

    /// Randomized lossiness (Section 2.3): changing a tuple that the sample
    /// did not retain produces the identical statistic.
    #[test]
    fn sample_is_lossy_with_high_probability() {
        let vals: Vec<Value> = (0..10_000).map(Value::Int).collect();
        let a = ReservoirSample::build(vals.iter(), 16, 3);
        // Find an index whose value is not in the reservoir.
        let retained: std::collections::HashSet<i64> =
            a.values().iter().filter_map(|v| v.as_i64()).collect();
        let victim = (0..10_000).find(|i| !retained.contains(i)).unwrap();
        let mut vals2 = vals.clone();
        vals2[victim as usize] = Value::Int(1_000_000); // value not present before
        let b = ReservoirSample::build(vals2.iter(), 16, 3);
        assert_eq!(a.values(), b.values(), "sample changed despite miss");
    }
}
