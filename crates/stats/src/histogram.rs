//! Single-column histograms: equi-width and equi-depth.
//!
//! Besides the usual selectivity *estimates*, the histograms expose hard
//! **cardinality bounds** for range predicates: every bucket fully inside
//! the range contributes its full count to the lower bound, and every
//! bucket overlapping the range contributes its full count to the upper
//! bound. Footnote 2 of the paper points out exactly this use ("for a leaf
//! operator that is a range scan on a clustered index, lower bounds can be
//! obtained by looking at appropriate bucket boundaries in histograms").
//!
//! The histograms are *lossy* statistics in the formal sense of
//! Section 2.3: values inside a bucket can change (without crossing bucket
//! boundaries or changing the distinct count) while the histogram stays
//! identical. The unit tests construct such twin relations explicitly.

use qp_storage::Value;
use std::ops::Bound;

/// Which construction algorithm produced a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramKind {
    /// Buckets of equal value-range width (numeric columns only).
    EquiWidth,
    /// Buckets of (approximately) equal row count.
    EquiDepth,
}

/// One histogram bucket over the closed value interval `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    pub lo: Value,
    pub hi: Value,
    /// Number of rows whose value falls in `[lo, hi]`.
    pub count: u64,
    /// Number of distinct values observed in `[lo, hi]`.
    pub distinct: u64,
}

/// A single-column histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    kind: HistogramKind,
    buckets: Vec<Bucket>,
    null_count: u64,
    total_rows: u64,
}

impl Histogram {
    /// Builds an equi-depth histogram with at most `max_buckets` buckets.
    /// Works for any ordered value type. Duplicated boundary values never
    /// straddle buckets (a bucket always ends at a value change), so bucket
    /// counts are exact partitions of the multiset.
    pub fn equi_depth<'a>(
        values: impl IntoIterator<Item = &'a Value>,
        max_buckets: usize,
    ) -> Histogram {
        assert!(max_buckets >= 1, "need at least one bucket");
        let mut vals: Vec<Value> = Vec::new();
        let mut null_count = 0u64;
        for v in values {
            if v.is_null() {
                null_count += 1;
            } else {
                vals.push(v.clone());
            }
        }
        let total_rows = vals.len() as u64 + null_count;
        vals.sort_unstable();
        let mut buckets = Vec::with_capacity(max_buckets);
        if !vals.is_empty() {
            let target = vals.len().div_ceil(max_buckets).max(1);
            let mut start = 0usize;
            while start < vals.len() {
                let mut end = (start + target).min(vals.len());
                // Extend so a run of duplicates never straddles buckets.
                while end < vals.len() && vals[end] == vals[end - 1] {
                    end += 1;
                }
                let slice = &vals[start..end];
                let mut distinct = 1u64;
                for w in slice.windows(2) {
                    if w[0] != w[1] {
                        distinct += 1;
                    }
                }
                buckets.push(Bucket {
                    lo: slice[0].clone(),
                    hi: slice[slice.len() - 1].clone(),
                    count: slice.len() as u64,
                    distinct,
                });
                start = end;
            }
        }
        Histogram {
            kind: HistogramKind::EquiDepth,
            buckets,
            null_count,
            total_rows,
        }
    }

    /// Builds an equi-width histogram over numeric values with exactly
    /// `n_buckets` buckets spanning `[min, max]`. Non-numeric values panic.
    pub fn equi_width<'a>(
        values: impl IntoIterator<Item = &'a Value>,
        n_buckets: usize,
    ) -> Histogram {
        assert!(n_buckets >= 1, "need at least one bucket");
        let mut nums: Vec<f64> = Vec::new();
        let mut null_count = 0u64;
        for v in values {
            if v.is_null() {
                null_count += 1;
            } else {
                nums.push(v.as_f64().expect("equi_width needs numeric values"));
            }
        }
        let total_rows = nums.len() as u64 + null_count;
        if nums.is_empty() {
            return Histogram {
                kind: HistogramKind::EquiWidth,
                buckets: Vec::new(),
                null_count,
                total_rows,
            };
        }
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &nums {
            min = min.min(x);
            max = max.max(x);
        }
        let width = ((max - min) / n_buckets as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0u64; n_buckets];
        let mut distinct_sets: Vec<std::collections::HashSet<u64>> =
            vec![std::collections::HashSet::new(); n_buckets];
        for &x in &nums {
            let mut b = ((x - min) / width) as usize;
            if b >= n_buckets {
                b = n_buckets - 1;
            }
            counts[b] += 1;
            distinct_sets[b].insert(x.to_bits());
        }
        let buckets = (0..n_buckets)
            .filter(|&i| counts[i] > 0)
            .map(|i| Bucket {
                lo: Value::Float(min + i as f64 * width),
                hi: Value::Float(if i == n_buckets - 1 {
                    max
                } else {
                    min + (i + 1) as f64 * width
                }),
                count: counts[i],
                distinct: distinct_sets[i].len() as u64,
            })
            .collect();
        Histogram {
            kind: HistogramKind::EquiWidth,
            buckets,
            null_count,
            total_rows,
        }
    }

    /// Construction algorithm.
    pub fn kind(&self) -> HistogramKind {
        self.kind
    }

    /// All buckets, in value order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Number of NULLs in the column.
    pub fn null_count(&self) -> u64 {
        self.null_count
    }

    /// Total rows summarized (including NULLs).
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Sum of per-bucket distinct counts (an upper bound on the column's
    /// distinct count; exact for equi-depth construction).
    pub fn distinct_estimate(&self) -> u64 {
        self.buckets.iter().map(|b| b.distinct).sum()
    }

    /// Estimated number of rows equal to `v` (uniform-within-bucket
    /// assumption: `count / distinct` of the containing bucket).
    pub fn estimate_eq(&self, v: &Value) -> f64 {
        if v.is_null() {
            return self.null_count as f64;
        }
        for b in &self.buckets {
            if *v >= b.lo && *v <= b.hi {
                return b.count as f64 / b.distinct.max(1) as f64;
            }
        }
        0.0
    }

    /// Estimated number of rows in the given range (interpolating inside
    /// partially-overlapped numeric buckets; counting half of a partially-
    /// overlapped non-numeric bucket).
    pub fn estimate_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> f64 {
        let mut est = 0.0;
        for b in &self.buckets {
            est += b.count as f64 * overlap_fraction(b, lo, hi);
        }
        est
    }

    /// A hard **lower bound** on the number of rows in the range: the sum of
    /// counts of buckets entirely contained in the range.
    pub fn lower_bound_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> u64 {
        self.buckets
            .iter()
            .filter(|b| bound_allows_ge(lo, &b.lo) && bound_allows_le(hi, &b.hi))
            .map(|b| b.count)
            .sum()
    }

    /// A hard **upper bound** on the number of rows in the range: the sum of
    /// counts of buckets overlapping the range at all.
    pub fn upper_bound_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> u64 {
        self.buckets
            .iter()
            .filter(|b| overlaps(b, lo, hi))
            .map(|b| b.count)
            .sum()
    }

    /// A hard upper bound on the number of rows equal to `v`: the count of
    /// the bucket containing `v` (0 if no bucket contains it). A singleton
    /// bucket makes this exact.
    pub fn upper_bound_eq(&self, v: &Value) -> u64 {
        if v.is_null() {
            return self.null_count;
        }
        self.buckets
            .iter()
            .find(|b| *v >= b.lo && *v <= b.hi)
            .map_or(0, |b| b.count)
    }
}

/// Whether the range's lower bound admits every value `>= x`.
fn bound_allows_ge(lo: Bound<&Value>, x: &Value) -> bool {
    match lo {
        Bound::Unbounded => true,
        Bound::Included(l) => *l <= *x,
        Bound::Excluded(l) => *l < *x,
    }
}

/// Whether the range's upper bound admits every value `<= x`.
fn bound_allows_le(hi: Bound<&Value>, x: &Value) -> bool {
    match hi {
        Bound::Unbounded => true,
        Bound::Included(h) => *h >= *x,
        Bound::Excluded(h) => *h > *x,
    }
}

/// Whether bucket `b` overlaps the range at all.
fn overlaps(b: &Bucket, lo: Bound<&Value>, hi: Bound<&Value>) -> bool {
    let below = match hi {
        Bound::Unbounded => true,
        Bound::Included(h) => b.lo <= *h,
        Bound::Excluded(h) => b.lo < *h,
    };
    let above = match lo {
        Bound::Unbounded => true,
        Bound::Included(l) => b.hi >= *l,
        Bound::Excluded(l) => b.hi > *l,
    };
    below && above
}

/// Fraction of bucket `b` covered by the range, interpolating linearly for
/// numeric buckets and using 0.5 for partial overlap of non-numeric ones.
fn overlap_fraction(b: &Bucket, lo: Bound<&Value>, hi: Bound<&Value>) -> f64 {
    if !overlaps(b, lo, hi) {
        return 0.0;
    }
    if bound_allows_ge(lo, &b.lo) && bound_allows_le(hi, &b.hi) {
        return 1.0;
    }
    match (b.lo.as_f64(), b.hi.as_f64()) {
        (Some(blo), Some(bhi)) if bhi > blo => {
            let rlo = match lo {
                Bound::Unbounded => blo,
                Bound::Included(l) | Bound::Excluded(l) => l.as_f64().unwrap_or(blo).max(blo),
            };
            let rhi = match hi {
                Bound::Unbounded => bhi,
                Bound::Included(h) | Bound::Excluded(h) => h.as_f64().unwrap_or(bhi).min(bhi),
            };
            ((rhi - rlo) / (bhi - blo)).clamp(0.0, 1.0)
        }
        _ => 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn equi_depth_partitions_exactly() {
        let vals = ints(&[1, 1, 2, 3, 3, 3, 4, 5, 6, 7]);
        let h = Histogram::equi_depth(vals.iter(), 3);
        let total: u64 = h.buckets().iter().map(|b| b.count).sum();
        assert_eq!(total, 10);
        assert_eq!(h.total_rows(), 10);
        // Buckets must tile the sorted domain without overlap.
        for w in h.buckets().windows(2) {
            assert!(w[0].hi < w[1].lo, "buckets overlap: {w:?}");
        }
    }

    #[test]
    fn equi_depth_never_splits_duplicate_runs() {
        // 50 copies of value 7 with 2 buckets: the run must stay together.
        let mut vals = ints(&[7; 50]);
        vals.extend(ints(&[1, 2, 3]));
        let h = Histogram::equi_depth(vals.iter(), 2);
        let seven_buckets: Vec<_> = h
            .buckets()
            .iter()
            .filter(|b| Value::Int(7) >= b.lo && Value::Int(7) <= b.hi)
            .collect();
        assert_eq!(seven_buckets.len(), 1);
        // The full duplicate run lives in that one bucket (it may also
        // absorb the few preceding values).
        assert!(seven_buckets[0].count >= 50);
    }

    #[test]
    fn estimate_eq_uses_count_over_distinct() {
        let vals = ints(&[1, 1, 1, 1, 2, 2, 2, 2]); // one bucket likely
        let h = Histogram::equi_depth(vals.iter(), 1);
        let est = h.estimate_eq(&Value::Int(1));
        assert!((est - 4.0).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn range_bounds_bracket_truth() {
        let vals: Vec<Value> = (0..1000).map(|i| Value::Int(i % 100)).collect();
        let h = Histogram::equi_depth(vals.iter(), 10);
        let lo = Value::Int(25);
        let hi = Value::Int(75);
        let truth = vals.iter().filter(|v| **v >= lo && **v <= hi).count() as u64;
        let lb = h.lower_bound_range(Bound::Included(&lo), Bound::Included(&hi));
        let ub = h.upper_bound_range(Bound::Included(&lo), Bound::Included(&hi));
        assert!(lb <= truth, "lb={lb} truth={truth}");
        assert!(ub >= truth, "ub={ub} truth={truth}");
        let est = h.estimate_range(Bound::Included(&lo), Bound::Included(&hi));
        assert!(est >= lb as f64 - 1e-9 && est <= ub as f64 + 1e-9);
    }

    #[test]
    fn equi_width_spans_min_max() {
        let vals = ints(&[0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
        let h = Histogram::equi_width(vals.iter(), 5);
        let total: u64 = h.buckets().iter().map(|b| b.count).sum();
        assert_eq!(total, 10);
        assert_eq!(h.kind(), HistogramKind::EquiWidth);
    }

    #[test]
    fn nulls_counted_separately() {
        let vals = [Value::Int(1), Value::Null, Value::Null, Value::Int(2)];
        let h = Histogram::equi_depth(vals.iter(), 4);
        assert_eq!(h.null_count(), 2);
        assert_eq!(h.total_rows(), 4);
        assert_eq!(h.estimate_eq(&Value::Null), 2.0);
    }

    /// The formal lossiness property of Section 2.3: two relations of the
    /// same size, differing in exactly one tuple (changed to a value not
    /// already present), with identical histograms.
    #[test]
    fn equi_depth_is_lossy() {
        // Values 0..100 in one-wide steps; bucket width ~10.
        let r1: Vec<Value> = (0..100).map(|i| Value::Int(i * 10)).collect();
        let h1 = Histogram::equi_depth(r1.iter(), 10);
        // Change one mid-bucket value to another value inside the SAME
        // bucket that is not currently present and keeps distinct count.
        let mut r2 = r1.clone();
        // Find a bucket and pick an interior new value.
        let b = &h1.buckets()[5];
        let (blo, bhi) = (b.lo.as_i64().unwrap(), b.hi.as_i64().unwrap());
        let victim_idx = r1
            .iter()
            .position(|v| *v > Value::Int(blo) && *v < Value::Int(bhi))
            .expect("interior value exists");
        let new_val = Value::Int(r1[victim_idx].as_i64().unwrap() + 1); // not a multiple of 10
        assert!(!r1.contains(&new_val));
        r2[victim_idx] = new_val;
        let h2 = Histogram::equi_depth(r2.iter(), 10);
        // Same bucket boundaries, counts and distinct counts.
        assert_eq!(h1.buckets().len(), h2.buckets().len());
        for (a, b) in h1.buckets().iter().zip(h2.buckets()) {
            assert_eq!(a.count, b.count);
            assert_eq!(a.distinct, b.distinct);
        }
    }

    #[test]
    fn empty_input_yields_empty_histogram() {
        let h = Histogram::equi_depth(std::iter::empty(), 8);
        assert_eq!(h.buckets().len(), 0);
        assert_eq!(h.estimate_eq(&Value::Int(0)), 0.0);
        assert_eq!(h.upper_bound_range(Bound::Unbounded, Bound::Unbounded), 0);
    }

    #[test]
    fn upper_bound_eq_is_bucket_count() {
        let vals = ints(&[5, 5, 5, 9]);
        let h = Histogram::equi_depth(vals.iter(), 1);
        assert!(h.upper_bound_eq(&Value::Int(5)) >= 3);
        assert_eq!(h.upper_bound_eq(&Value::Int(1000)), 0);
    }
}
