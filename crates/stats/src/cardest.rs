//! Optimizer-style cardinality estimation.
//!
//! Classic System-R-style estimation: per-predicate selectivities from
//! histograms, combined under the *independence assumption*, and join
//! selectivity `1 / max(ndv(a), ndv(b))` under the *containment
//! assumption*. The paper's position (Sections 2.5 and 7) is that these
//! estimates carry **no guarantees** — errors compound multiplicatively
//! through join trees [Ioannidis & Christodoulakis 1991] — which is exactly
//! why the `pmax`/`safe` estimators maintain *bounds* instead. This module
//! exists because:
//!
//! 1. the `dne` estimator needs per-pipeline work estimates to weight
//!    pipelines of a complex plan (Section 4.1, following [5, 13]);
//! 2. "just use the optimizer's `total(Q)` estimate" is the natural
//!    baseline to compare the paper's estimators against.

use crate::table_stats::TableStats;
use qp_storage::Value;
use std::ops::Bound;

/// A summarized predicate over a single column, as seen by the cardinality
/// estimator. The executor lowers its scalar expressions to these.
#[derive(Debug, Clone, PartialEq)]
pub enum PredSpec {
    /// `col = value`
    Eq(usize, Value),
    /// `col <> value`
    NotEq(usize, Value),
    /// `col` within the bounds
    Range(usize, Bound<Value>, Bound<Value>),
    /// `col IN (values)`
    In(usize, Vec<Value>),
    /// `col IS NULL`
    IsNull(usize),
    /// `col IS NOT NULL`
    IsNotNull(usize),
    /// A predicate the estimator cannot analyze; falls back to a default
    /// selectivity (the traditional 1/3 for "unknown").
    Opaque,
}

/// Default selectivity for predicates the estimator cannot analyze.
pub const OPAQUE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Cardinality estimator over a table's statistics.
#[derive(Debug, Clone, Copy)]
pub struct CardEstimator<'a> {
    stats: &'a TableStats,
}

impl<'a> CardEstimator<'a> {
    pub fn new(stats: &'a TableStats) -> CardEstimator<'a> {
        CardEstimator { stats }
    }

    /// Selectivity of one predicate, in `[0, 1]`.
    pub fn selectivity(&self, pred: &PredSpec) -> f64 {
        let rows = self.stats.row_count as f64;
        if rows == 0.0 {
            return 0.0;
        }
        let sel = match pred {
            PredSpec::Eq(col, v) => self.col(*col).histogram.estimate_eq(v) / rows,
            PredSpec::NotEq(col, v) => {
                1.0 - self.col(*col).histogram.estimate_eq(v) / rows
                    - self.col(*col).null_count as f64 / rows
            }
            PredSpec::Range(col, lo, hi) => {
                self.col(*col)
                    .histogram
                    .estimate_range(lo.as_ref(), hi.as_ref())
                    / rows
            }
            PredSpec::In(col, vals) => {
                vals.iter()
                    .map(|v| self.col(*col).histogram.estimate_eq(v))
                    .sum::<f64>()
                    / rows
            }
            PredSpec::IsNull(col) => self.col(*col).null_count as f64 / rows,
            PredSpec::IsNotNull(col) => 1.0 - self.col(*col).null_count as f64 / rows,
            PredSpec::Opaque => OPAQUE_SELECTIVITY,
        };
        sel.clamp(0.0, 1.0)
    }

    /// Combined selectivity of a conjunction under independence.
    pub fn conjunction_selectivity(&self, preds: &[PredSpec]) -> f64 {
        preds.iter().map(|p| self.selectivity(p)).product()
    }

    /// Estimated output cardinality of filtering this table.
    pub fn filter_cardinality(&self, preds: &[PredSpec]) -> f64 {
        self.stats.row_count as f64 * self.conjunction_selectivity(preds)
    }

    fn col(&self, i: usize) -> &crate::table_stats::ColumnStats {
        self.stats.column(i)
    }
}

/// Estimated cardinality of an equi-join between two inputs, under the
/// containment assumption: `|L| * |R| / max(ndv_l, ndv_r)`.
///
/// `left_rows`/`right_rows` may already reflect upstream filters; the
/// distinct counts come from base-table statistics (per Section 2.3 only
/// single-relation statistics exist, so no post-filter distinct counts are
/// available — this is one source of the propagation error the paper
/// discusses).
pub fn join_cardinality(left_rows: f64, right_rows: f64, ndv_left: u64, ndv_right: u64) -> f64 {
    let ndv = ndv_left.max(ndv_right).max(1) as f64;
    (left_rows * right_rows / ndv).max(0.0)
}

/// Estimated number of groups produced by grouping `rows` input rows on a
/// column with `ndv` distinct values (Cardenas' formula, capped at both).
pub fn group_cardinality(rows: f64, ndv: u64) -> f64 {
    let d = ndv.max(1) as f64;
    // Expected number of non-empty "bins" when throwing `rows` balls into
    // `d` bins uniformly.
    d * (1.0 - (1.0 - 1.0 / d).powf(rows)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_storage::{ColumnType, Row, Schema, Table};

    fn stats() -> TableStats {
        let mut t = Table::new(
            "r",
            Schema::of(&[("a", ColumnType::Int), ("b", ColumnType::Int)]),
        );
        // a: uniform 0..100 (10 each); b: constant 7.
        for i in 0..1000 {
            t.insert(Row::new(vec![Value::Int(i % 100), Value::Int(7)]))
                .unwrap();
        }
        TableStats::build(&t, 20)
    }

    #[test]
    fn eq_selectivity_matches_uniform_data() {
        let s = stats();
        let est = CardEstimator::new(&s);
        let sel = est.selectivity(&PredSpec::Eq(0, Value::Int(42)));
        assert!((sel - 0.01).abs() < 0.005, "sel={sel}");
        let sel_b = est.selectivity(&PredSpec::Eq(1, Value::Int(7)));
        assert!((sel_b - 1.0).abs() < 1e-9, "sel={sel_b}");
    }

    #[test]
    fn range_selectivity_is_proportional() {
        let s = stats();
        let est = CardEstimator::new(&s);
        let sel = est.selectivity(&PredSpec::Range(
            0,
            Bound::Included(Value::Int(0)),
            Bound::Included(Value::Int(49)),
        ));
        assert!((sel - 0.5).abs() < 0.08, "sel={sel}");
    }

    #[test]
    fn independence_multiplies() {
        let s = stats();
        let est = CardEstimator::new(&s);
        let p1 = PredSpec::Range(
            0,
            Bound::Included(Value::Int(0)),
            Bound::Included(Value::Int(49)),
        );
        let p2 = PredSpec::Opaque;
        let combined = est.conjunction_selectivity(&[p1.clone(), p2]);
        let alone = est.selectivity(&p1);
        assert!((combined - alone * OPAQUE_SELECTIVITY).abs() < 1e-9);
    }

    #[test]
    fn in_sums_equalities() {
        let s = stats();
        let est = CardEstimator::new(&s);
        let sel = est.selectivity(&PredSpec::In(
            0,
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
        ));
        assert!((sel - 0.03).abs() < 0.01, "sel={sel}");
    }

    #[test]
    fn join_cardinality_containment() {
        // R(1000 rows, 100 ndv) join S(500 rows, 50 ndv): 1000*500/100.
        let est = join_cardinality(1000.0, 500.0, 100, 50);
        assert!((est - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn group_cardinality_saturates() {
        // Many rows, few groups: all groups non-empty.
        assert!((group_cardinality(1_000_000.0, 10) - 10.0).abs() < 1e-6);
        // Few rows, many groups: about one group per row.
        let g = group_cardinality(10.0, 1_000_000);
        assert!((g - 10.0).abs() < 0.1, "g={g}");
    }

    #[test]
    fn not_eq_excludes_nulls_and_matches() {
        let mut t = Table::new("n", Schema::of(&[("a", ColumnType::Int)]));
        for i in 0..10 {
            let v = if i < 2 { Value::Null } else { Value::Int(1) };
            t.insert(Row::new(vec![v])).unwrap();
        }
        let s = TableStats::build(&t, 4);
        let est = CardEstimator::new(&s);
        // 8 rows have a=1; NULLs don't satisfy a<>1 either. sel ~= 0.
        let sel = est.selectivity(&PredSpec::NotEq(0, Value::Int(1)));
        assert!(sel < 0.05, "sel={sel}");
    }
}
