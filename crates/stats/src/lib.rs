//! # qp-stats — single-relation database statistics
//!
//! The paper's framework (Section 2.3) allows a progress estimator to
//! consult *single-relation statistics*: per-table summaries produced
//! independently per relation, capturing no inter-table correlation — the
//! setting of essentially every commercial optimizer. Crucially, the
//! statistics generators considered are **lossy**: for any sufficiently
//! large relation there exist two instances differing in one tuple that
//! produce the *same* statistic. Lossiness is what powers the paper's
//! lower-bound argument (Theorem 1), and this crate's property tests verify
//! that both of its generators (histograms and fixed-size samples) are
//! lossy in exactly that sense.
//!
//! Contents:
//! * [`histogram`] — equi-width and equi-depth single-column histograms
//!   with selectivity estimates *and* hard lower/upper cardinality bounds
//!   for range predicates (used by the `pmax`/`safe` bound maintenance,
//!   Section 5.1, footnote 2 of the paper);
//! * [`sample`] — reservoir samples (the randomized statistics generator of
//!   Section 2.3);
//! * [`table_stats`] — per-table/column statistics bundles and a whole-
//!   database statistics catalog;
//! * [`cardest`] — optimizer-style cardinality estimation (independence and
//!   containment assumptions). The paper stresses that these estimates come
//!   with **no guarantees** (Sections 2.5 and 7); they are used here for the
//!   `dne` pipeline weighting and as the "use the optimizer estimate"
//!   baseline that the paper's estimators are designed to replace.

pub mod cardest;
pub mod end_biased;
pub mod histogram;
pub mod sample;
pub mod table_stats;

pub use cardest::{CardEstimator, PredSpec};
pub use end_biased::EndBiasedHistogram;
pub use histogram::{Histogram, HistogramKind};
pub use sample::ReservoirSample;
pub use table_stats::{ColumnStats, DbStats, TableStats};
