//! Per-table statistics bundles and the database statistics catalog.
//!
//! This is the "Database Statistics" box in Figure 1 of the paper: the
//! union of single-relation statistics produced by running a statistics
//! generator over each relation *separately* (no inter-table correlation is
//! captured, per Section 2.3).

use crate::histogram::Histogram;
use qp_storage::{Database, Table, Value};
use std::collections::BTreeMap;

/// Default number of histogram buckets (commercial systems commonly use a
/// few hundred steps; SQL Server's legacy format used up to 200).
pub const DEFAULT_BUCKETS: usize = 100;

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub name: String,
    pub histogram: Histogram,
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Exact distinct count at statistics-build time.
    pub distinct: u64,
    pub null_count: u64,
}

/// Statistics for one table: row count plus per-column stats.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub table: String,
    pub row_count: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Builds statistics for a table with `buckets` histogram buckets per
    /// column.
    pub fn build(table: &Table, buckets: usize) -> TableStats {
        // Materialize once through `scan` so stats work over any backend
        // (heap or paged) without holding page pins across the pass.
        let rows: Vec<_> = table.scan().map(|(_, r)| r).collect();
        let mut columns = Vec::with_capacity(table.schema().arity());
        for (ci, col) in table.schema().columns().iter().enumerate() {
            let values: Vec<&Value> = rows.iter().map(|r| r.get(ci)).collect();
            let histogram = Histogram::equi_depth(values.iter().copied(), buckets);
            let mut non_null: Vec<&Value> =
                values.iter().copied().filter(|v| !v.is_null()).collect();
            non_null.sort_unstable();
            let distinct = if non_null.is_empty() {
                0
            } else {
                1 + non_null.windows(2).filter(|w| w[0] != w[1]).count() as u64
            };
            let null_count = (values.len() - non_null.len()) as u64;
            columns.push(ColumnStats {
                name: col.name.clone(),
                min: non_null.first().map(|v| (*v).clone()),
                max: non_null.last().map(|v| (*v).clone()),
                distinct,
                null_count,
                histogram,
            });
        }
        TableStats {
            table: table.name().to_string(),
            row_count: table.len() as u64,
            columns,
        }
    }

    /// Stats for a column by position.
    pub fn column(&self, i: usize) -> &ColumnStats {
        &self.columns[i]
    }

    /// Stats for a column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// Statistics for a whole database: one [`TableStats`] per table.
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    tables: BTreeMap<String, TableStats>,
}

impl DbStats {
    /// Runs the statistics generator over every table in the database.
    pub fn build(db: &Database) -> DbStats {
        DbStats::build_with_buckets(db, DEFAULT_BUCKETS)
    }

    /// Like [`DbStats::build`] with a custom bucket budget.
    pub fn build_with_buckets(db: &Database, buckets: usize) -> DbStats {
        let mut tables = BTreeMap::new();
        for name in db.table_names() {
            let t = db.table(name).expect("listed table exists");
            tables.insert(name.to_string(), TableStats::build(&t, buckets));
        }
        DbStats { tables }
    }

    /// Stats for a table, if present.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Inserts or replaces stats for one table.
    pub fn insert(&mut self, stats: TableStats) {
        self.tables.insert(stats.table.clone(), stats);
    }

    /// Exact row count from the catalog at stats-build time.
    pub fn row_count(&self, table: &str) -> Option<u64> {
        self.tables.get(table).map(|t| t.row_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_storage::{ColumnType, Row, Schema};

    fn make_table() -> Table {
        let mut t = Table::new(
            "r",
            Schema::of(&[("a", ColumnType::Int), ("b", ColumnType::Str)]),
        );
        for i in 0..500 {
            t.insert(Row::new(vec![
                Value::Int(i % 50),
                Value::str(format!("s{}", i % 7)),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn build_computes_row_and_distinct_counts() {
        let stats = TableStats::build(&make_table(), 10);
        assert_eq!(stats.row_count, 500);
        assert_eq!(stats.column(0).distinct, 50);
        assert_eq!(stats.column(1).distinct, 7);
        assert_eq!(stats.column(0).min, Some(Value::Int(0)));
        assert_eq!(stats.column(0).max, Some(Value::Int(49)));
    }

    #[test]
    fn column_by_name_works() {
        let stats = TableStats::build(&make_table(), 10);
        assert!(stats.column_by_name("b").is_some());
        assert!(stats.column_by_name("zz").is_none());
    }

    #[test]
    fn db_stats_covers_all_tables() {
        let mut db = Database::new();
        db.add_table(make_table()).unwrap();
        let mut t2 = Table::new("s", Schema::of(&[("x", ColumnType::Int)]));
        t2.insert(Row::new(vec![Value::Int(1)])).unwrap();
        db.add_table(t2).unwrap();
        let stats = DbStats::build(&db);
        assert_eq!(stats.row_count("r"), Some(500));
        assert_eq!(stats.row_count("s"), Some(1));
        assert!(stats.table("nope").is_none());
    }

    #[test]
    fn histograms_cover_every_row() {
        let stats = TableStats::build(&make_table(), 10);
        for c in &stats.columns {
            let total: u64 = c.histogram.buckets().iter().map(|b| b.count).sum();
            assert_eq!(total + c.histogram.null_count(), 500);
        }
    }

    #[test]
    fn null_heavy_column_counts_nulls() {
        let mut t = Table::new("n", Schema::of(&[("a", ColumnType::Int)]));
        for i in 0..10 {
            let v = if i % 2 == 0 {
                Value::Null
            } else {
                Value::Int(i)
            };
            t.insert(Row::new(vec![v])).unwrap();
        }
        let stats = TableStats::build(&t, 4);
        assert_eq!(stats.column(0).null_count, 5);
        assert_eq!(stats.column(0).distinct, 5);
    }
}
