//! End-biased histograms: exact singleton buckets for the most frequent
//! values, an equi-depth histogram for the rest (Poosala & Ioannidis — the
//! very reference \[16\] the paper cites for zipfian skew being common).
//!
//! Relevance to the paper: an end-biased histogram on `R2.B` *does* expose
//! the heavy join keys of the Section 5 experiments, which tightens the
//! upper bounds the `safe` estimator uses. It does **not** break the
//! Theorem 1 lower bound — the adversarial twins differ in `R1`, where the
//! victim's value is deliberately *infrequent* (frequency 1), exactly the
//! kind of value an end-biased histogram cannot pin down. The unit tests
//! demonstrate both facts.

use crate::histogram::Histogram;
use qp_storage::Value;
use std::collections::HashMap;
use std::ops::Bound;

/// An end-biased histogram: the `k` most frequent values kept exactly,
/// everything else summarized equi-depth.
#[derive(Debug, Clone, PartialEq)]
pub struct EndBiasedHistogram {
    /// `(value, exact count)` for the retained heavy hitters, sorted by
    /// value.
    frequent: Vec<(Value, u64)>,
    /// Equi-depth summary of the remaining values.
    rest: Histogram,
    total_rows: u64,
}

impl EndBiasedHistogram {
    /// Builds the histogram retaining the `top_k` most frequent values
    /// exactly and summarizing the rest into `buckets` equi-depth buckets.
    pub fn build<'a>(
        values: impl IntoIterator<Item = &'a Value>,
        top_k: usize,
        buckets: usize,
    ) -> EndBiasedHistogram {
        let vals: Vec<&Value> = values.into_iter().collect();
        let total_rows = vals.len() as u64;
        let mut counts: HashMap<&Value, u64> = HashMap::new();
        for v in &vals {
            if !v.is_null() {
                *counts.entry(v).or_default() += 1;
            }
        }
        // Heavy hitters: top_k by count (ties broken by value for
        // determinism). Only values occurring more than once earn a
        // singleton bucket — a frequency-1 value carries no information
        // beyond the rest-histogram.
        let mut by_count: Vec<(&Value, u64)> = counts.into_iter().collect();
        by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut frequent: Vec<(Value, u64)> = by_count
            .iter()
            .take(top_k)
            .filter(|(_, c)| *c > 1)
            .map(|(v, c)| ((*v).clone(), *c))
            .collect();
        frequent.sort_by(|a, b| a.0.cmp(&b.0));
        let is_frequent = |v: &Value| frequent.binary_search_by(|(f, _)| f.cmp(v)).is_ok();
        let rest_vals: Vec<&Value> = vals
            .iter()
            .copied()
            .filter(|v| v.is_null() || !is_frequent(v))
            .collect();
        let rest = Histogram::equi_depth(rest_vals, buckets);
        EndBiasedHistogram {
            frequent,
            rest,
            total_rows,
        }
    }

    /// The retained heavy hitters.
    pub fn frequent(&self) -> &[(Value, u64)] {
        &self.frequent
    }

    /// The residual equi-depth histogram.
    pub fn rest(&self) -> &Histogram {
        &self.rest
    }

    /// Total rows summarized.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Estimated number of rows equal to `v`: exact for heavy hitters,
    /// uniform-within-bucket otherwise.
    pub fn estimate_eq(&self, v: &Value) -> f64 {
        if let Ok(i) = self.frequent.binary_search_by(|(f, _)| f.cmp(v)) {
            return self.frequent[i].1 as f64;
        }
        self.rest.estimate_eq(v)
    }

    /// A hard upper bound on rows equal to `v` — exact for heavy hitters
    /// (this is the tightening the `safe`/`pmax` bounds benefit from).
    pub fn upper_bound_eq(&self, v: &Value) -> u64 {
        if let Ok(i) = self.frequent.binary_search_by(|(f, _)| f.cmp(v)) {
            return self.frequent[i].1;
        }
        self.rest.upper_bound_eq(v)
    }

    /// Estimated rows within the range: exact heavy hitters inside the
    /// range plus the residual histogram's estimate.
    pub fn estimate_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> f64 {
        let in_lo = |v: &Value| match lo {
            Bound::Unbounded => true,
            Bound::Included(l) => v >= l,
            Bound::Excluded(l) => v > l,
        };
        let in_hi = |v: &Value| match hi {
            Bound::Unbounded => true,
            Bound::Included(h) => v <= h,
            Bound::Excluded(h) => v < h,
        };
        let heavy: u64 = self
            .frequent
            .iter()
            .filter(|(v, _)| in_lo(v) && in_hi(v))
            .map(|(_, c)| c)
            .sum();
        heavy as f64 + self.rest.estimate_range(lo, hi)
    }

    /// The largest retained frequency — an exact upper bound on the
    /// fan-out of *any retained* key; for non-retained keys the residual
    /// histogram's densest bucket bounds the frequency.
    pub fn max_frequency_bound(&self) -> u64 {
        let heavy = self.frequent.iter().map(|(_, c)| *c).max().unwrap_or(0);
        let rest = self
            .rest
            .buckets()
            .iter()
            .map(|b| b.count)
            .max()
            .unwrap_or(0);
        heavy.max(rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipfish() -> Vec<Value> {
        // Value 0 appears 100×, value 1 appears 50×, 2..52 once each.
        let mut v = vec![Value::Int(0); 100];
        v.extend(vec![Value::Int(1); 50]);
        v.extend((2..52).map(Value::Int));
        v
    }

    #[test]
    fn heavy_hitters_are_exact() {
        let h = EndBiasedHistogram::build(zipfish().iter(), 2, 8);
        assert_eq!(h.estimate_eq(&Value::Int(0)), 100.0);
        assert_eq!(h.estimate_eq(&Value::Int(1)), 50.0);
        assert_eq!(h.upper_bound_eq(&Value::Int(0)), 100);
        assert_eq!(h.frequent().len(), 2);
    }

    #[test]
    fn rest_histogram_covers_the_tail() {
        let h = EndBiasedHistogram::build(zipfish().iter(), 2, 8);
        let tail_total: u64 = h.rest().buckets().iter().map(|b| b.count).sum();
        assert_eq!(tail_total, 50);
        // A tail value estimates around 1.
        let est = h.estimate_eq(&Value::Int(30));
        assert!((0.5..=3.0).contains(&est), "est {est}");
    }

    #[test]
    fn range_estimates_add_heavy_and_tail() {
        let h = EndBiasedHistogram::build(zipfish().iter(), 2, 8);
        let est = h.estimate_range(
            Bound::Included(&Value::Int(0)),
            Bound::Included(&Value::Int(10)),
        );
        // 100 + 50 heavy + 9 tail values (2..=10).
        assert!((est - 159.0).abs() < 3.0, "est {est}");
    }

    #[test]
    fn frequency_one_values_earn_no_singleton() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let h = EndBiasedHistogram::build(vals.iter(), 10, 8);
        assert!(h.frequent().is_empty());
    }

    #[test]
    fn max_frequency_bound_covers_every_value() {
        let vals = zipfish();
        let h = EndBiasedHistogram::build(vals.iter(), 2, 8);
        let bound = h.max_frequency_bound();
        let mut true_counts: std::collections::HashMap<&Value, u64> = Default::default();
        for v in &vals {
            *true_counts.entry(v).or_default() += 1;
        }
        let true_max = *true_counts.values().max().unwrap();
        assert!(bound >= true_max);
    }

    /// The paper's Theorem-1 construction survives end-biased histograms:
    /// the adversarial victim has frequency 1 in `R1`, so its value is
    /// never a retained heavy hitter and the twins remain statistically
    /// indistinguishable.
    #[test]
    fn lower_bound_construction_survives_end_biased_stats() {
        // R1 values are all distinct (multiples of 10); twins differ only
        // in one in-bucket value.
        let r1_x: Vec<Value> = (0..1000).map(|i| Value::Int(i * 10)).collect();
        let mut r1_y = r1_x.clone();
        // Pick an interior value and nudge it within its bucket.
        r1_y[503] = Value::Int(5031);
        let hx = EndBiasedHistogram::build(r1_x.iter(), 50, 100);
        let hy = EndBiasedHistogram::build(r1_y.iter(), 50, 100);
        // No singletons exist (all frequencies are 1), and the equi-depth
        // residuals agree bucket-for-bucket in counts.
        assert!(hx.frequent().is_empty());
        assert!(hy.frequent().is_empty());
        assert_eq!(hx.rest().buckets().len(), hy.rest().buckets().len());
        for (a, b) in hx.rest().buckets().iter().zip(hy.rest().buckets()) {
            assert_eq!(a.count, b.count);
            assert_eq!(a.distinct, b.distinct);
        }
    }
}
