//! Property-based tests: the B+Tree must behave exactly like a sorted
//! multimap model under arbitrary insertion sequences, and structural
//! invariants must hold at every point.
//!
//! Ported from `proptest` to the in-tree `qp_testkit::prop` harness; the
//! invariants and case counts are unchanged.

use qp_storage::btree::BTreeIndex;
use qp_storage::{RowId, Value};
use qp_testkit::prop::collection;
use qp_testkit::{prop_assert, prop_assert_eq, prop_check};
use std::collections::BTreeSet;
use std::ops::Bound;

fn key(v: i64) -> Vec<Value> {
    vec![Value::Int(v)]
}

prop_check! {
    cases = 64,

    /// Lookups agree with a model multimap for arbitrary inserts
    /// (including many duplicates, thanks to the narrow key domain).
    fn lookup_matches_model(inserts in collection::vec(0i64..50, 0..800)) {
        let mut tree = BTreeIndex::new(1);
        let mut model: BTreeSet<(i64, RowId)> = BTreeSet::new();
        for (rid, k) in inserts.iter().enumerate() {
            tree.insert(key(*k), rid as RowId);
            model.insert((*k, rid as RowId));
        }
        tree.check_invariants();
        for k in 0..50i64 {
            let got: Vec<RowId> = tree.lookup(&key(k)).collect();
            let want: Vec<RowId> = model
                .range((k, 0)..=(k, RowId::MAX))
                .map(|&(_, r)| r)
                .collect();
            prop_assert_eq!(got, want, "key {}", k);
        }
    }

    /// Range scans return exactly the model's range contents, in order.
    fn range_matches_model(
        inserts in collection::vec(0i64..100, 0..500),
        lo in 0i64..100,
        width in 0i64..100,
    ) {
        let hi = (lo + width).min(99);
        let mut tree = BTreeIndex::new(1);
        let mut model: Vec<(i64, RowId)> = Vec::new();
        for (rid, k) in inserts.iter().enumerate() {
            tree.insert(key(*k), rid as RowId);
            model.push((*k, rid as RowId));
        }
        model.sort();
        let got: Vec<(i64, RowId)> = tree
            .range(Bound::Included(&key(lo)), Bound::Included(key(hi)))
            .map(|(k, r)| (k[0].as_i64().unwrap(), r))
            .collect();
        let want: Vec<(i64, RowId)> = model
            .iter()
            .filter(|(k, _)| *k >= lo && *k <= hi)
            .copied()
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Full scans are always sorted and complete.
    fn scan_is_sorted_and_complete(inserts in collection::vec(-1000i64..1000, 0..600)) {
        let mut tree = BTreeIndex::new(1);
        for (rid, k) in inserts.iter().enumerate() {
            tree.insert(key(*k), rid as RowId);
        }
        let scanned: Vec<(i64, RowId)> = tree
            .scan()
            .map(|(k, r)| (k[0].as_i64().unwrap(), r))
            .collect();
        prop_assert_eq!(scanned.len(), inserts.len());
        prop_assert!(scanned.windows(2).all(|w| w[0] <= w[1]));
    }
}
