//! The crash-recovery matrix: a simulated power cut at every stage of
//! the WAL commit protocol, for several seeds, proving that recovery
//! restores the table file **byte-identical** to either the
//! never-started or the fully-committed image — never anything between.
//!
//! The matrix exercises `append_rows` (the update path) on top of a
//! clean `save_database` baseline:
//!
//! * rollback-class points (`BeforeWal`, `TornWal`, `WalNoCommit` — no
//!   commit record reached the log) must leave the file bytes equal to
//!   the pre-append image;
//! * durable-class points (`AfterCommit`, `MidApply`, `BeforeTruncate` —
//!   the commit record was fsynced) must recover to bytes equal to a
//!   run that never crashed at all.
//!
//! Every case is driven by an explicit `(seed, CrashPoint)` pair, so a
//! failure reproduces by name.

use qp_storage::paged::{append_rows, open_database, open_table, save_database};
use qp_storage::{BufferPool, ColumnType, CrashPoint, Database, Row, Schema, Table, Value};
use qp_testkit::rng::TestRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SEEDS: [u64; 3] = [0xC0FFEE, 42, 7_777_777];

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qp-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn row(rng: &mut TestRng, i: u64) -> Row {
    Row::new(vec![
        Value::Int(i as i64),
        Value::Int((rng.next_u64() % 1000) as i64),
        Value::str(format!("payload-{}", rng.next_u64() % 97)),
    ])
}

/// A two-table database seeded from `seed`, with enough rows to span
/// several pages each.
fn build_db(seed: u64) -> Database {
    let mut rng = TestRng::seed_from_u64(seed);
    let schema = Schema::of(&[
        ("id", ColumnType::Int),
        ("k", ColumnType::Int),
        ("payload", ColumnType::Str),
    ]);
    let mut db = Database::new();
    for (name, n) in [("alpha", 300u64), ("beta", 120u64)] {
        let mut t = Table::new(name, schema.clone());
        for i in 0..n {
            t.insert_unchecked(row(&mut rng, i));
        }
        db.add_table(t).unwrap();
    }
    db
}

/// The rows a later append would add, derived from the same seed.
fn extra_rows(seed: u64) -> Vec<Row> {
    let mut rng = TestRng::seed_from_u64(seed ^ 0xA99E);
    (1000..1137).map(|i| row(&mut rng, i)).collect()
}

fn file_bytes(dir: &Path, table: &str) -> Vec<u8> {
    std::fs::read(dir.join(format!("{table}.qpt"))).expect("data file")
}

fn scan_rows(dir: &Path, table: &str) -> Vec<Row> {
    let pool = Arc::new(BufferPool::new(8));
    let t = open_table(dir, table, &pool).expect("open after recovery");
    t.scan().map(|(_, r)| r).collect()
}

#[test]
fn crash_matrix_recovers_byte_identical() {
    for seed in SEEDS {
        // Reference: the same baseline + append that never crashes.
        let clean = tmp(&format!("clean-{seed}"));
        save_database(&build_db(seed), &clean).unwrap();
        let pre_bytes = file_bytes(&clean, "alpha");
        let pre_rows = scan_rows(&clean, "alpha");
        append_rows(&clean, "alpha", &extra_rows(seed), None).unwrap();
        let post_bytes = file_bytes(&clean, "alpha");
        let post_rows = scan_rows(&clean, "alpha");
        assert_eq!(post_rows.len(), pre_rows.len() + extra_rows(seed).len());

        for point in CrashPoint::ALL {
            let dir = tmp(&format!("case-{seed}-{point:?}"));
            save_database(&build_db(seed), &dir).unwrap();
            assert_eq!(
                file_bytes(&dir, "alpha"),
                pre_bytes,
                "seed {seed}: the bulk load itself must be deterministic"
            );

            let err = append_rows(&dir, "alpha", &extra_rows(seed), Some(point))
                .expect_err("a simulated crash must surface as an error");
            assert!(
                err.to_string().contains("simulated crash"),
                "seed {seed} {point:?}: unexpected error {err}"
            );

            // Recovery happens on the next open (WAL replay), after
            // which the file must match one of the two legal images.
            let rows = scan_rows(&dir, "alpha");
            let bytes = file_bytes(&dir, "alpha");
            if point.is_durable() {
                assert_eq!(
                    bytes, post_bytes,
                    "seed {seed} {point:?}: committed txn must survive the crash"
                );
                assert_eq!(rows, post_rows, "seed {seed} {point:?}");
            } else {
                assert_eq!(
                    bytes, pre_bytes,
                    "seed {seed} {point:?}: uncommitted txn must roll back wholesale"
                );
                assert_eq!(rows, pre_rows, "seed {seed} {point:?}");
            }

            // A second open is a no-op: recovery is idempotent.
            assert_eq!(file_bytes(&dir, "alpha"), bytes, "seed {seed} {point:?}");
            let _ = std::fs::remove_dir_all(&dir);
        }

        // The untouched second table must be oblivious to all of this.
        let other = scan_rows(&clean, "beta");
        assert_eq!(other.len(), 120);
        let _ = std::fs::remove_dir_all(&clean);
    }
}

/// Seeded bit-flip corruption alongside the crash matrix: a single bit
/// flipped anywhere in a stamped page's payload must surface as typed
/// corruption (`PagerError::Corrupt` through the pager and pool,
/// `StorageError` through `open_table`) — never as silently wrong rows
/// and never as a panic.
#[test]
fn bit_flips_surface_as_typed_corruption() {
    use qp_pager::{BufferPool as Pool, Pager, PagerError, PAGE_PAYLOAD_END, PAGE_SIZE};

    for seed in SEEDS {
        let dir = tmp(&format!("bitflip-{seed}"));
        save_database(&build_db(seed), &dir).unwrap();
        let path = dir.join("alpha.qpt");
        let pristine = std::fs::read(&path).unwrap();
        let pages = pristine.len() / PAGE_SIZE;
        assert!(pages > 3, "need data pages to corrupt, got {pages}");

        // Pick a seeded random data page, payload byte, and bit. Data
        // pages start at 2 (0 = header, 1 = table meta).
        let mut rng = TestRng::seed_from_u64(seed ^ 0xB17F11B);
        let page = 2 + (rng.next_u64() as usize % (pages - 2));
        let byte = rng.next_u64() as usize % PAGE_PAYLOAD_END;
        let bit = 1u8 << (rng.next_u64() % 8);
        let mut flipped = pristine.clone();
        flipped[page * PAGE_SIZE + byte] ^= bit;
        std::fs::write(&path, &flipped).unwrap();

        // The pager detects it, as a typed error, not a panic.
        let pager = Arc::new(Pager::open(&path).unwrap());
        let mut buf = [0u8; PAGE_SIZE];
        let err = pager.read_page(page as u64, &mut buf).unwrap_err();
        assert!(
            matches!(err, PagerError::Corrupt(ref m) if m.contains("checksum")),
            "seed {seed} page {page} byte {byte}: expected checksum corruption, got {err}"
        );
        // ... and so does a read through the buffer pool.
        let pool = Pool::new(4);
        assert!(matches!(
            pool.get(&pager, page as u64),
            Err(PagerError::Corrupt(_))
        ));
        drop(pager);

        // A flip in the table-meta page fails the typed open path.
        let mut meta_flip = pristine.clone();
        meta_flip[PAGE_SIZE + 100] ^= 0x10;
        std::fs::write(&path, &meta_flip).unwrap();
        let pool = Arc::new(BufferPool::new(4));
        let err = open_table(&dir, "alpha", &pool).expect_err("corrupt meta page must not open");
        assert!(err.to_string().contains("corruption"), "seed {seed}: {err}");

        // Restored pristine bytes read clean again: detection is a
        // property of the bytes, not sticky state.
        std::fs::write(&path, &pristine).unwrap();
        let rows = scan_rows(&dir, "alpha");
        assert_eq!(rows.len(), 300, "seed {seed}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The whole-database open path also recovers: crash one table's append
/// mid-apply, then `open_database` must replay it and serve consistent
/// queries through the shared pool.
#[test]
fn open_database_replays_wal_on_startup() {
    let seed = SEEDS[0];
    let dir = tmp("open-db");
    save_database(&build_db(seed), &dir).unwrap();
    append_rows(&dir, "alpha", &extra_rows(seed), Some(CrashPoint::MidApply))
        .expect_err("simulated crash");

    let db = open_database(&dir, 16).expect("open with replay");
    let alpha = db.table("alpha").unwrap();
    assert!(alpha.is_paged());
    assert_eq!(alpha.len(), 300 + extra_rows(seed).len());
    // The pool served real page reads during the scan-driven len checks.
    let t: Vec<Row> = alpha.scan().map(|(_, r)| r).collect();
    assert_eq!(t.len(), alpha.len());
    let _ = std::fs::remove_dir_all(&dir);
}
