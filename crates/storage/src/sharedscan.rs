//! Shared-scan reuse: concurrent full-table scans attach to one
//! in-flight row producer instead of each paying their own pass over
//! the base data.
//!
//! The circulating-scan idea (one disk arm, many consumers) is standard
//! in shared-work systems; here it matters because the service front
//! end now multiplexes thousands of sessions, and a popular table would
//! otherwise be re-read once per session — on the paged backend, once
//! *per disk pass*. The contract that makes sharing admissible in this
//! codebase is stricter than mere result equality, though: the paper's
//! accounting model (Section 2.2) defines progress in per-session
//! getnext counts, so every attached session must observe *exactly* the
//! row sequence a solo scan would — same rows, same order, same length
//! — or its counters, estimator readings, and `total(Q)` drift.
//!
//! The design is therefore **attach-and-replay**, not row routing:
//!
//! * A [`ScanShare`] registry maps a live table (by `Arc` identity) to
//!   its current [`ScanGroup`] — one *epoch* of sharing. Attaching
//!   yields a [`SharedCursor`]; dropping the cursor detaches, and the
//!   epoch ends (its entry is removed, its cache freed) when the last
//!   attacher leaves. The next scan of that table starts a fresh epoch.
//! * The group materializes the table once, chunk by chunk, on demand:
//!   whichever cursor first needs chunk `i` produces it (a short burst
//!   of `Table::row` reads) under the group's production lock and
//!   publishes it as an `Arc<[Row]>` chunk every attacher replays.
//!   Physical reads happen once per epoch — N identical scans cost ~1
//!   pass — while every cursor logically sees the full insertion-order
//!   sequence from row 0, regardless of when it attached.
//! * Late attachers replay already-produced chunks from the cache and
//!   only wait (briefly, on the production lock) at the frontier. A
//!   cursor dropped mid-scan — a cancelled session — just decrements
//!   the attach count; production continues only as long as someone
//!   still needs rows.
//!
//! Memory is bounded by the epoch lifecycle: a group caches at most one
//! table's rows, and only while at least one scan is in flight.

use crate::row::Row;
use crate::table::{RowId, Table};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Rows per produced chunk. Purely a producer granularity / lock-hold
/// knob: replay order is row-by-row, so the chunk size is invisible to
/// attachers (and to counters).
const CHUNK_ROWS: usize = 1024;

/// Monotone counters describing sharing effectiveness, exposed over the
/// service `METRICS` endpoint. All relaxed: totals, not invariants.
#[derive(Debug, Default)]
pub struct ScanShareStats {
    /// Cursors handed out (one per attaching scan).
    pub attaches: AtomicU64,
    /// Attaches that joined an epoch already in flight — each one is a
    /// table pass avoided.
    pub shared_attaches: AtomicU64,
    /// Epochs started (groups created).
    pub groups: AtomicU64,
    /// Rows physically read from tables by producers.
    pub rows_produced: AtomicU64,
    /// Rows replayed to cursors (≥ `rows_produced` whenever sharing
    /// actually deduplicated work).
    pub rows_served: AtomicU64,
}

/// One epoch of shared scanning over one table: the chunk cache, the
/// production frontier, and the attach count that scopes its lifetime.
#[derive(Debug)]
pub struct ScanGroup {
    table: Arc<Table>,
    /// Total rows this epoch serves (latched at creation; tables are
    /// frozen, so this equals `table.len()` for the epoch's lifetime).
    len: usize,
    /// Produced chunks, in order. The `Mutex` is also the production
    /// lock: whoever holds it and finds the needed chunk missing reads
    /// it from the table, so exactly one attacher performs each
    /// physical read burst.
    chunks: Mutex<Vec<Arc<[Row]>>>,
    attachers: AtomicUsize,
}

impl ScanGroup {
    fn new(table: Arc<Table>) -> ScanGroup {
        let len = table.len();
        ScanGroup {
            table,
            len,
            chunks: Mutex::new(Vec::new()),
            attachers: AtomicUsize::new(0),
        }
    }

    /// The chunk containing row `index * CHUNK_ROWS`, producing it (and
    /// any earlier unproduced chunks) from the table if this cursor is
    /// first past the frontier.
    fn chunk(&self, index: usize, stats: &ScanShareStats) -> Arc<[Row]> {
        let mut chunks = match self.chunks.lock() {
            Ok(g) => g,
            // A poisoning panic can only have happened mid-`Vec::push`;
            // the produced prefix is still coherent, so keep serving.
            Err(poisoned) => poisoned.into_inner(),
        };
        while chunks.len() <= index {
            let start = chunks.len() * CHUNK_ROWS;
            let end = (start + CHUNK_ROWS).min(self.len);
            let rows: Vec<Row> = (start..end)
                .map(|rid| self.table.row(rid as RowId))
                .collect();
            stats
                .rows_produced
                .fetch_add((end - start) as u64, Ordering::Relaxed);
            chunks.push(rows.into());
        }
        Arc::clone(&chunks[index])
    }
}

/// The process-wide sharing registry: at most one live [`ScanGroup`]
/// per table. Held by the service and threaded into executors through
/// `RunControls`; sessions that must not share (fault-injected runs,
/// whose schedules are keyed to physical read order) simply run without
/// one.
#[derive(Debug, Default)]
pub struct ScanShare {
    /// Live epochs, keyed by table identity (`Arc` pointer — tables are
    /// interned in the `Database` catalog, so identity is stable).
    groups: Mutex<HashMap<usize, Arc<ScanGroup>>>,
    stats: ScanShareStats,
}

impl ScanShare {
    /// An empty registry.
    pub fn new() -> ScanShare {
        ScanShare::default()
    }

    /// Sharing-effectiveness counters.
    pub fn stats(&self) -> &ScanShareStats {
        &self.stats
    }

    /// Attaches a scan of `table`: joins the table's in-flight epoch if
    /// one exists, otherwise starts a new one. The returned cursor
    /// replays the full insertion-order row sequence from row 0.
    pub fn attach(self: &Arc<ScanShare>, table: &Arc<Table>) -> SharedCursor {
        let key = Arc::as_ptr(table) as usize;
        let mut groups = match self.groups.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        self.stats.attaches.fetch_add(1, Ordering::Relaxed);
        let group = match groups.get(&key) {
            Some(group) => {
                self.stats.shared_attaches.fetch_add(1, Ordering::Relaxed);
                Arc::clone(group)
            }
            None => {
                self.stats.groups.fetch_add(1, Ordering::Relaxed);
                let group = Arc::new(ScanGroup::new(Arc::clone(table)));
                groups.insert(key, Arc::clone(&group));
                group
            }
        };
        group.attachers.fetch_add(1, Ordering::Relaxed);
        drop(groups);
        SharedCursor {
            share: Arc::clone(self),
            group,
            key,
            pos: 0,
            chunk: None,
            chunk_index: 0,
        }
    }

    /// Ends `group`'s epoch if it is still the registered one (a fresh
    /// epoch for the same table must not be evicted by a stale detach).
    fn retire(&self, key: usize, group: &Arc<ScanGroup>) {
        let mut groups = match self.groups.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(current) = groups.get(&key) {
            if Arc::ptr_eq(current, group) {
                groups.remove(&key);
            }
        }
    }
}

/// One attached scan: an independent replay position over its group's
/// chunk sequence. Detaches (and possibly retires the epoch) on drop.
#[derive(Debug)]
pub struct SharedCursor {
    share: Arc<ScanShare>,
    group: Arc<ScanGroup>,
    key: usize,
    /// Next row index to serve, in `[0, group.len]`.
    pos: usize,
    /// Cached current chunk (avoids a registry lock per row).
    chunk: Option<Arc<[Row]>>,
    chunk_index: usize,
}

impl SharedCursor {
    /// Rewinds to row 0 (operator `open` semantics — re-opened scans
    /// replay from the start, exactly like a solo scan would).
    pub fn reset(&mut self) {
        self.pos = 0;
        self.chunk = None;
    }

    /// Total rows this scan will produce.
    pub fn len(&self) -> usize {
        self.group.len
    }

    /// Whether the underlying table is empty.
    pub fn is_empty(&self) -> bool {
        self.group.len == 0
    }
}

impl Iterator for SharedCursor {
    type Item = Row;

    /// The next row in insertion order, or `None` at the end.
    fn next(&mut self) -> Option<Row> {
        if self.pos >= self.group.len {
            return None;
        }
        let index = self.pos / CHUNK_ROWS;
        if self.chunk.is_none() || self.chunk_index != index {
            self.chunk = Some(self.group.chunk(index, &self.share.stats));
            self.chunk_index = index;
        }
        let row = self.chunk.as_ref().expect("chunk just installed")[self.pos % CHUNK_ROWS].clone();
        self.pos += 1;
        self.share.stats.rows_served.fetch_add(1, Ordering::Relaxed);
        Some(row)
    }
}

impl Drop for SharedCursor {
    fn drop(&mut self) {
        if self.group.attachers.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.share.retire(self.key, &self.group);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use crate::value::Value;

    fn table(rows: usize) -> Arc<Table> {
        let mut t = Table::new("t", Schema::of(&[("x", ColumnType::Int)]));
        for i in 0..rows {
            t.insert_unchecked(Row::new(vec![Value::Int(i as i64)]));
        }
        Arc::new(t)
    }

    fn drain(mut cursor: SharedCursor) -> Vec<Row> {
        std::iter::from_fn(|| cursor.next()).collect()
    }

    #[test]
    fn replay_matches_a_direct_scan() {
        let t = table(2500);
        let share = Arc::new(ScanShare::new());
        let direct: Vec<Row> = (0..t.len()).map(|rid| t.row(rid as RowId)).collect();
        assert_eq!(drain(share.attach(&t)), direct);
    }

    #[test]
    fn concurrent_attachers_each_see_the_full_sequence_for_one_pass() {
        let t = table(5000);
        let share = Arc::new(ScanShare::new());
        let direct: Vec<Row> = (0..t.len()).map(|rid| t.row(rid as RowId)).collect();
        // Attach everyone before anyone runs: a drained cursor retires
        // the epoch, so attach-after-finish would start a second pass.
        let cursors: Vec<_> = (0..4).map(|_| share.attach(&t)).collect();
        let handles: Vec<_> = cursors
            .into_iter()
            .map(|cursor| std::thread::spawn(move || drain(cursor)))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), direct);
        }
        let stats = share.stats();
        assert_eq!(stats.attaches.load(Ordering::Relaxed), 4);
        assert_eq!(stats.groups.load(Ordering::Relaxed), 1);
        // One physical pass served four logical ones.
        assert_eq!(stats.rows_produced.load(Ordering::Relaxed), 5000);
        assert_eq!(stats.rows_served.load(Ordering::Relaxed), 4 * 5000);
    }

    #[test]
    fn epochs_retire_when_the_last_attacher_leaves() {
        let t = table(100);
        let share = Arc::new(ScanShare::new());
        let a = share.attach(&t);
        let b = share.attach(&t);
        assert_eq!(share.stats().shared_attaches.load(Ordering::Relaxed), 1);
        drop(a);
        drop(b);
        // The epoch is gone: a new attach starts (and pays for) a fresh
        // pass instead of replaying a stale cache.
        drop(share.attach(&t));
        assert_eq!(share.stats().groups.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn dropping_mid_scan_detaches_without_disturbing_others() {
        let t = table(3000);
        let share = Arc::new(ScanShare::new());
        let mut quitter = share.attach(&t);
        let survivor = share.attach(&t);
        for _ in 0..10 {
            quitter.next();
        }
        drop(quitter);
        let direct: Vec<Row> = (0..t.len()).map(|rid| t.row(rid as RowId)).collect();
        assert_eq!(drain(survivor), direct);
    }

    #[test]
    fn reset_replays_from_row_zero() {
        let t = table(50);
        let share = Arc::new(ScanShare::new());
        let mut cursor = share.attach(&t);
        for _ in 0..30 {
            cursor.next();
        }
        cursor.reset();
        let direct: Vec<Row> = (0..t.len()).map(|rid| t.row(rid as RowId)).collect();
        assert_eq!(drain(cursor), direct);
        // The replay cost no second physical pass.
        assert_eq!(share.stats().rows_produced.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn empty_table_attaches_and_ends_immediately() {
        let t = table(0);
        let share = Arc::new(ScanShare::new());
        let mut cursor = share.attach(&t);
        assert!(cursor.is_empty());
        assert_eq!(cursor.next(), None);
    }
}
