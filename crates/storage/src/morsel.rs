//! Morsel-at-a-time work distribution for parallel scans.
//!
//! Static range partitioning (see [`Table::partition_ranges`]) assigns each
//! worker a fixed slice of the heap up front. That is the simplest scheme
//! that keeps parallel results byte-identical to a serial scan, but it
//! collapses under skewed per-row cost: with Zipf-distributed work the
//! worker that drew the hot ranks becomes the critical path while its
//! siblings idle (the paper's Section 7 "uniformity of work" caveat, made
//! concrete in `BENCH_parallel.json`'s cpu-bound rows).
//!
//! The fix, due to the HyPer morsel-driven scheduler (Leis et al., SIGMOD
//! 2014), is to hand out work in small fixed-size *morsels* from a shared
//! dispenser: a worker that finishes early simply claims the next morsel —
//! work stealing without queues, just one atomic cursor. Two properties of
//! this dispenser carry the whole serial-equivalence argument upstream in
//! `qp-exec`:
//!
//! 1. **Exactly-once, covering claims.** Every row position in `[0, len)`
//!    belongs to exactly one morsel, and each morsel is claimed by exactly
//!    one worker (the atomic cursor advance is the claim).
//! 2. **Globally ordered claims.** Morsels are claimed in strictly
//!    increasing index order across *all* workers, regardless of thread
//!    scheduling. Any per-morsel decision keyed on "the smallest morsel
//!    index that X" is therefore deterministic, which is what keeps seeded
//!    fault schedules replayable under stealing.
//!
//! The dispenser is pure coordination — it never touches rows. Scan
//! operators in `qp-exec` turn a claimed [`Morsel`] into reads against a
//! [`Table`] heap slice or a slice of an index's row-id list.
//!
//! [`Table::partition_ranges`]: crate::table::Table::partition_ranges
//! [`Table`]: crate::table::Table

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel for a dispenser whose input length is not yet known.
const UNBOUND: usize = usize::MAX;

/// One claimed unit of scan work: the half-open position range
/// `[start, end)` of the shared input, plus its ordinal among all morsels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Ordinal of this morsel (0-based, in input order). Morsel `i` covers
    /// positions `[i · size, min((i+1) · size, len))`.
    pub index: usize,
    /// First input position covered (inclusive).
    pub start: usize,
    /// One past the last input position covered (exclusive).
    pub end: usize,
}

impl Morsel {
    /// Number of input positions in the morsel.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the morsel covers no positions (never produced by
    /// [`MorselDispenser::claim`], which returns `None` instead).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// A shared work dispenser: one atomic cursor over `[0, len)`, handing out
/// fixed-size [`Morsel`]s to however many workers pull from it.
///
/// Workers share the dispenser behind an `Arc` and call [`claim`] in a
/// loop; `None` means the input is exhausted. The claim itself is the only
/// synchronization — there is no queue, no per-worker state, and no
/// assignment step, so the degree of "stealing" adapts to however unevenly
/// the per-morsel work is distributed.
///
/// For inputs whose length is only known at open time (an index range scan
/// learns its row-id count after walking the B+Tree), construct with
/// [`unbound`] and have each worker [`bind`] the length before claiming;
/// the first bind wins and the rest are validated no-ops, which is safe
/// exactly because every worker derives the identical length from shared
/// immutable state.
///
/// [`claim`]: MorselDispenser::claim
/// [`unbound`]: MorselDispenser::unbound
/// [`bind`]: MorselDispenser::bind
#[derive(Debug)]
pub struct MorselDispenser {
    /// Morsel size in input positions, normalized ≥ 1. A requested size of
    /// 0 (or anything ≥ the input length) degrades to one whole-input
    /// morsel — the static single-partition behaviour.
    size: usize,
    /// Total input positions; [`UNBOUND`] until known.
    len: AtomicUsize,
    /// Next unclaimed input position.
    cursor: AtomicUsize,
}

impl MorselDispenser {
    /// A dispenser over a known input length. `size = 0` means one
    /// whole-input morsel.
    pub fn new(len: usize, size: usize) -> MorselDispenser {
        assert!(len < UNBOUND, "input length collides with UNBOUND sentinel");
        MorselDispenser {
            size: Self::normalize(size),
            len: AtomicUsize::new(len),
            cursor: AtomicUsize::new(0),
        }
    }

    /// A dispenser whose input length will be supplied later via
    /// [`MorselDispenser::bind`]. Claiming before binding panics.
    pub fn unbound(size: usize) -> MorselDispenser {
        MorselDispenser {
            size: Self::normalize(size),
            len: AtomicUsize::new(UNBOUND),
            cursor: AtomicUsize::new(0),
        }
    }

    fn normalize(size: usize) -> usize {
        if size == 0 {
            UNBOUND // saturates to "whole input" in claim()
        } else {
            size
        }
    }

    /// Supplies the input length. Idempotent: the first bind wins; any
    /// later bind must agree (all workers compute the length from the same
    /// immutable input, so disagreement is a logic error).
    pub fn bind(&self, len: usize) {
        assert!(len < UNBOUND, "input length collides with UNBOUND sentinel");
        if let Err(bound) =
            self.len
                .compare_exchange(UNBOUND, len, Ordering::AcqRel, Ordering::Acquire)
        {
            assert_eq!(bound, len, "workers bound conflicting input lengths");
        }
    }

    /// True once the input length is known (constructed sized, or bound).
    pub fn is_bound(&self) -> bool {
        self.len.load(Ordering::Acquire) != UNBOUND
    }

    /// Claims the next unclaimed morsel, or `None` when the input is
    /// exhausted. Thread-safe; each morsel is handed to exactly one caller,
    /// and successive successful claims (across all callers) carry strictly
    /// increasing `index`.
    ///
    /// # Panics
    /// Panics if the dispenser is still unbound.
    pub fn claim(&self) -> Option<Morsel> {
        let len = self.len.load(Ordering::Acquire);
        assert_ne!(len, UNBOUND, "claim() before bind(): length unknown");
        let start = self
            .cursor
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                if c >= len {
                    None
                } else {
                    Some(c.saturating_add(self.size))
                }
            })
            .ok()?;
        Some(Morsel {
            index: start / self.size,
            start,
            end: start.saturating_add(self.size).min(len),
        })
    }

    /// Total number of morsels the bound input divides into (the `n` for
    /// per-morsel fault-schedule derivation). Zero for an empty input.
    ///
    /// # Panics
    /// Panics if the dispenser is still unbound.
    pub fn morsel_count(&self) -> usize {
        let len = self.len.load(Ordering::Acquire);
        assert_ne!(len, UNBOUND, "morsel_count() before bind()");
        len.div_ceil(self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claims_are_disjoint_covering_and_in_order() {
        for (len, size) in [(10, 3), (10, 1), (10, 10), (10, 64), (7, 2), (1, 1)] {
            let d = MorselDispenser::new(len, size);
            let mut claimed = Vec::new();
            while let Some(m) = d.claim() {
                claimed.push(m);
            }
            assert!(d.claim().is_none(), "exhausted dispenser stays exhausted");
            assert_eq!(claimed.len(), d.morsel_count());
            let mut next_start = 0;
            for (i, m) in claimed.iter().enumerate() {
                assert_eq!(m.index, i, "indices count up from 0");
                assert_eq!(m.start, next_start, "morsels are contiguous");
                assert!(m.end > m.start, "no empty morsels");
                assert!(!m.is_empty());
                assert!(m.len() <= size.max(1) || size == 0);
                next_start = m.end;
            }
            assert_eq!(next_start, len, "morsels cover the input");
        }
    }

    #[test]
    fn zero_size_means_one_whole_input_morsel() {
        let d = MorselDispenser::new(42, 0);
        assert_eq!(d.morsel_count(), 1);
        let m = d.claim().unwrap();
        assert_eq!((m.index, m.start, m.end), (0, 0, 42));
        assert!(d.claim().is_none());
    }

    #[test]
    fn oversized_morsel_degrades_to_whole_input() {
        let d = MorselDispenser::new(5, usize::MAX);
        assert_eq!(d.morsel_count(), 1);
        assert_eq!(d.claim().unwrap().len(), 5);
        assert!(d.claim().is_none());
    }

    #[test]
    fn empty_input_yields_no_morsels() {
        let d = MorselDispenser::new(0, 8);
        assert_eq!(d.morsel_count(), 0);
        assert!(d.claim().is_none());
    }

    #[test]
    fn unbound_binds_once_then_claims() {
        let d = MorselDispenser::unbound(4);
        assert!(!d.is_bound());
        d.bind(9);
        assert!(d.is_bound());
        d.bind(9); // idempotent re-bind from a sibling worker
        assert_eq!(d.morsel_count(), 3);
        let sizes: Vec<usize> = std::iter::from_fn(|| d.claim()).map(|m| m.len()).collect();
        assert_eq!(sizes, vec![4, 4, 1]);
    }

    #[test]
    #[should_panic(expected = "conflicting input lengths")]
    fn conflicting_bind_is_a_logic_error() {
        let d = MorselDispenser::unbound(4);
        d.bind(9);
        d.bind(10);
    }

    #[test]
    #[should_panic(expected = "before bind()")]
    fn claim_before_bind_is_a_logic_error() {
        MorselDispenser::unbound(4).claim();
    }

    #[test]
    fn concurrent_claims_partition_the_input_exactly_once() {
        let d = Arc::new(MorselDispenser::new(10_000, 7));
        let workers = 4;
        let per_worker: Vec<Vec<Morsel>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let d = Arc::clone(&d);
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(m) = d.claim() {
                            mine.push(m);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Each worker's claims are strictly increasing in index…
        for mine in &per_worker {
            for w in mine.windows(2) {
                assert!(w[0].index < w[1].index);
            }
        }
        // …and together they cover every morsel exactly once.
        let mut all: Vec<Morsel> = per_worker.into_iter().flatten().collect();
        all.sort_by_key(|m| m.index);
        assert_eq!(all.len(), d.morsel_count());
        let mut next_start = 0;
        for (i, m) in all.iter().enumerate() {
            assert_eq!(m.index, i);
            assert_eq!(m.start, next_start);
            next_start = m.end;
        }
        assert_eq!(next_start, 10_000);
    }
}
