//! Tables: in-memory heaps and paged (disk-backed) row stores behind
//! one scan/lookup interface.

use crate::codec::decode_row;
use crate::error::{StorageError, StorageResult};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use qp_pager::{read_cell, BufferPool, PageId, Pager};
use std::sync::Arc;

/// Position of a row within its table's heap. Stable: this engine is
/// insert-only (the paper's experiments never update or delete during
/// a measured query).
pub type RowId = u64;

/// How a table's rows are stored.
///
/// The executor never sees this: both backends sit behind the same
/// `row`/`scan`/`len` interface and return identical rows, so query
/// results, per-node counters, and `total(Q)` are byte-identical across
/// backends (the parallel equivalence matrix asserts exactly that).
/// What differs is the *cost* of a row read — a heap read is a `Vec`
/// index, a paged read is a buffer-pool lookup that may miss to disk —
/// which is the paper's Section 7 "uniformity of work per GetNext"
/// caveat made concrete.
enum Backend {
    /// Rows in a `Vec`, insertion order.
    Heap(Vec<Row>),
    /// Rows in fixed-stride slotted pages behind a shared buffer pool.
    Paged(PagedRows),
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Heap(rows) => write!(f, "Heap({} rows)", rows.len()),
            Backend::Paged(p) => write!(
                f,
                "Paged({} rows, {} per page, file {:?})",
                p.len,
                p.rows_per_page,
                p.pager.path()
            ),
        }
    }
}

/// The paged backend: row `rid` lives in slot `rid % rows_per_page` of
/// page `first_data_page + rid / rows_per_page`. The fixed stride makes
/// the rid → page mapping pure arithmetic (no page directory), which is
/// what lets morsels align to page boundaries for free.
pub(crate) struct PagedRows {
    pub(crate) pager: Arc<Pager>,
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) first_data_page: PageId,
    pub(crate) rows_per_page: u64,
    pub(crate) len: u64,
}

impl PagedRows {
    fn row(&self, rid: u64) -> Row {
        let page = self.first_data_page + rid / self.rows_per_page;
        let slot = (rid % self.rows_per_page) as usize;
        let frame = self
            .pool
            .get(&self.pager, page)
            .unwrap_or_else(|e| panic!("paged read of page {page}: {e}"));
        let cell = read_cell(&frame, slot)
            .unwrap_or_else(|| panic!("row {rid}: no cell {slot} in page {page}"));
        decode_row(cell).unwrap_or_else(|e| panic!("row {rid}: {e}"))
    }
}

/// A table: a schema plus rows in insertion order, stored in either the
/// in-memory heap backend or the paged backend (see [`crate::paged`]).
///
/// Insertion order matters: the paper studies how the **order in which
/// tuples are retrieved from the driver node** affects estimator accuracy
/// (Section 4.2, "predictive orders"), and a table scan returns rows in
/// exactly this order — both backends preserve it. The data generators in
/// `qp-datagen` produce tables in controlled orders (random / sorted /
/// skew-first / skew-last).
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    backend: Backend,
    /// Simulated storage latency: sleep `stall_ns` nanoseconds once per
    /// `stall_every` heap reads (0 = disabled, the default). The tables
    /// here are in-memory, but the paper's environment is disk-bound —
    /// this knob recreates that regime for experiments (e.g. measuring
    /// what partitioned parallel scans buy when leaf reads actually
    /// wait), without touching results or getnext accounting.
    stall_every: std::sync::atomic::AtomicU64,
    stall_ns: std::sync::atomic::AtomicU64,
    reads: std::sync::atomic::AtomicU64,
}

impl Table {
    /// Creates an empty heap table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema,
            backend: Backend::Heap(Vec::new()),
            stall_every: std::sync::atomic::AtomicU64::new(0),
            stall_ns: std::sync::atomic::AtomicU64::new(0),
            reads: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Creates a paged table over an already-loaded page file. Only the
    /// `paged` module constructs these (via `open_database`/`open_table`).
    pub(crate) fn paged(name: impl Into<String>, schema: Schema, rows: PagedRows) -> Table {
        Table {
            name: name.into(),
            schema,
            backend: Backend::Paged(rows),
            stall_every: std::sync::atomic::AtomicU64::new(0),
            stall_ns: std::sync::atomic::AtomicU64::new(0),
            reads: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Whether this table reads through the buffer pool.
    pub fn is_paged(&self) -> bool {
        matches!(self.backend, Backend::Paged(_))
    }

    /// Rows per page for a paged table (`None` on heaps). Scan morsels
    /// sized in multiples of this never split a page across workers.
    pub fn page_rows(&self) -> Option<u64> {
        match &self.backend {
            Backend::Heap(_) => None,
            Backend::Paged(p) => Some(p.rows_per_page),
        }
    }

    fn heap_rows(&self) -> &Vec<Row> {
        match &self.backend {
            Backend::Heap(rows) => rows,
            Backend::Paged(_) => panic!(
                "table {}: operation requires the heap backend (paged tables are bulk-loaded and read-only)",
                self.name
            ),
        }
    }

    fn heap_rows_mut(&mut self) -> &mut Vec<Row> {
        match &mut self.backend {
            Backend::Heap(rows) => rows,
            Backend::Paged(_) => panic!(
                "table {}: operation requires the heap backend (paged tables are bulk-loaded and read-only)",
                self.name
            ),
        }
    }

    /// Table name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Exact cardinality. Progress estimators may use this (Section 5.1:
    /// base-relation cardinality "is accurately available from the database
    /// catalogs").
    #[inline]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(rows) => rows.len(),
            Backend::Paged(p) => p.len as usize,
        }
    }

    /// True if the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a row after validating it against the schema.
    pub fn insert(&mut self, row: Row) -> StorageResult<RowId> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::SchemaMismatch(format!(
                "table {}: expected {} columns, got {}",
                self.name,
                self.schema.arity(),
                row.arity()
            )));
        }
        for (i, v) in row.values().iter().enumerate() {
            let col = self.schema.column(i);
            if !col.ty.admits(v) {
                return Err(StorageError::SchemaMismatch(format!(
                    "table {}: column {} ({}) cannot hold {v:?}",
                    self.name, col.name, col.ty
                )));
            }
        }
        let rows = self.heap_rows_mut();
        let rid = rows.len() as RowId;
        rows.push(row);
        Ok(rid)
    }

    /// Appends a row without schema validation. Used by bulk loaders that
    /// construct rows straight from a typed generator.
    #[inline]
    pub fn insert_unchecked(&mut self, row: Row) -> RowId {
        let rows = self.heap_rows_mut();
        let rid = rows.len() as RowId;
        rows.push(row);
        rid
    }

    /// Bulk-inserts rows built from value vectors, validating each.
    pub fn load(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> StorageResult<usize> {
        let mut n = 0;
        for vals in rows {
            self.insert(Row::new(vals))?;
            n += 1;
        }
        Ok(n)
    }

    /// Row by id, owned. A heap read is an `Arc` refcount bump; a paged
    /// read pins the page in the buffer pool (possibly missing to disk)
    /// and decodes the cell. Panics if out of range or if the page file
    /// is corrupt (row ids come from this table's own indexes, so a miss
    /// is a logic error, not a user error — and corruption is caught by
    /// WAL recovery at open, not at read time).
    #[inline]
    pub fn row(&self, rid: RowId) -> Row {
        if self.stall_every.load(std::sync::atomic::Ordering::Relaxed) != 0 {
            self.stall_read();
        }
        match &self.backend {
            Backend::Heap(rows) => rows[rid as usize].clone(),
            Backend::Paged(p) => p.row(rid),
        }
    }

    /// Enables (or, with `every = 0`, disables) the simulated read
    /// stall: every `every`-th heap read sleeps for `stall`. Callable
    /// through a shared handle — concurrent partition scans each pay
    /// their share of the stalls, exactly like concurrent page reads.
    pub fn set_read_stall(&self, every: u64, stall: std::time::Duration) {
        let ns = stall.as_nanos().min(u64::MAX as u128) as u64;
        self.stall_ns
            .store(ns, std::sync::atomic::Ordering::Relaxed);
        // Reset the phase so the schedule is deterministic from the moment
        // of (re)configuration: the first sleep lands on the `every`-th
        // read after this call, however many reads happened before it.
        self.reads.store(0, std::sync::atomic::Ordering::Relaxed);
        self.stall_every
            .store(every, std::sync::atomic::Ordering::Relaxed);
    }

    /// Cold path of [`Table::row`] when a stall is configured.
    #[cold]
    fn stall_read(&self) {
        use std::sync::atomic::Ordering;
        let every = self.stall_every.load(Ordering::Relaxed);
        // 1-based count: the `every`-th, `2·every`-th, … reads sleep, so
        // the very first read never does (unless `every == 1`).
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        if every != 0 && n.is_multiple_of(every) {
            let ns = self.stall_ns.load(Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }

    /// All rows as a slice, heap backend only (paged rows do not live
    /// contiguously in memory — iterate [`Table::scan`] instead).
    #[inline]
    pub fn rows(&self) -> &[Row] {
        self.heap_rows()
    }

    /// Iterator over `(rid, row)` in insertion order, on any backend.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, Row)> + '_ {
        (0..self.len() as RowId).map(move |rid| (rid, self.row(rid)))
    }

    /// Splits the heap into `n` contiguous, non-overlapping row-id ranges
    /// `[start, end)` that cover the table in insertion order. The first
    /// `len % n` ranges get one extra row, so partition sizes differ by at
    /// most one. Concatenating the partitions in order reproduces the
    /// serial scan order exactly — the invariant parallel scans rely on to
    /// keep results byte-identical to a serial run.
    pub fn partition_ranges(&self, n: usize) -> Vec<(usize, usize)> {
        let n = n.max(1);
        let len = self.len();
        let (base, extra) = (len / n, len % n);
        let mut ranges = Vec::with_capacity(n);
        let mut start = 0;
        for p in 0..n {
            let size = base + usize::from(p < extra);
            ranges.push((start, start + size));
            start += size;
        }
        ranges
    }

    /// Reorders the rows of the table in place according to `perm`, where
    /// the new row `i` is the old row `perm[i]`. Invalidates indexes; the
    /// catalog rebuilds them. Used by the data generators to realize the
    /// paper's adversarial input orders.
    pub fn reorder(&mut self, perm: &[usize]) {
        let rows = self.heap_rows_mut();
        assert_eq!(perm.len(), rows.len(), "permutation length mismatch");
        let mut new_rows = Vec::with_capacity(rows.len());
        for &p in perm {
            new_rows.push(rows[p].clone());
        }
        *rows = new_rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn t() -> Table {
        Table::new(
            "t",
            Schema::of(&[("a", ColumnType::Int), ("b", ColumnType::Str)]),
        )
    }

    #[test]
    fn insert_validates_arity() {
        let mut tab = t();
        let err = tab.insert(Row::new(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch(_)));
    }

    #[test]
    fn insert_validates_types() {
        let mut tab = t();
        let err = tab
            .insert(Row::new(vec![Value::str("x"), Value::str("y")]))
            .unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch(_)));
        // NULL is admissible anywhere.
        tab.insert(Row::new(vec![Value::Null, Value::Null]))
            .unwrap();
    }

    #[test]
    fn scan_preserves_insertion_order() {
        let mut tab = t();
        for i in 0..10 {
            tab.insert(Row::new(vec![Value::Int(i), Value::str("x")]))
                .unwrap();
        }
        let got: Vec<i64> = tab
            .scan()
            .map(|(_, r)| r.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reorder_applies_permutation() {
        let mut tab = t();
        for i in 0..4 {
            tab.insert(Row::new(vec![Value::Int(i), Value::str("x")]))
                .unwrap();
        }
        tab.reorder(&[3, 1, 0, 2]);
        let got: Vec<i64> = tab
            .rows()
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![3, 1, 0, 2]);
    }

    #[test]
    fn partition_ranges_cover_the_table_in_order() {
        let mut tab = t();
        for i in 0..10 {
            tab.insert(Row::new(vec![Value::Int(i), Value::str("x")]))
                .unwrap();
        }
        for n in [1, 2, 3, 4, 7, 10, 16] {
            let ranges = tab.partition_ranges(n);
            assert_eq!(ranges.len(), n);
            let mut expect_start = 0;
            for &(start, end) in &ranges {
                assert_eq!(start, expect_start, "ranges must be contiguous");
                assert!(end >= start);
                expect_start = end;
            }
            assert_eq!(expect_start, tab.len(), "ranges must cover the heap");
            let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(
                max - min <= 1,
                "sizes must differ by at most one: {sizes:?}"
            );
        }
        // Degenerate request: n = 0 behaves as 1.
        assert_eq!(tab.partition_ranges(0), vec![(0, 10)]);
    }

    #[test]
    fn row_ids_are_positions() {
        let mut tab = t();
        let r0 = tab
            .insert(Row::new(vec![Value::Int(7), Value::str("a")]))
            .unwrap();
        let r1 = tab
            .insert(Row::new(vec![Value::Int(8), Value::str("b")]))
            .unwrap();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(tab.row(r1).get(0), &Value::Int(8));
    }
}
