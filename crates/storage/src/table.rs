//! Heap tables.

use crate::error::{StorageError, StorageResult};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Position of a row within its table's heap. Stable: this engine is
/// insert-only (the paper's experiments never update or delete during
/// a measured query).
pub type RowId = u64;

/// An in-memory heap table: a schema plus a vector of rows in insertion
/// order.
///
/// Insertion order matters: the paper studies how the **order in which
/// tuples are retrieved from the driver node** affects estimator accuracy
/// (Section 4.2, "predictive orders"), and a heap scan returns rows in
/// exactly this order. The data generators in `qp-datagen` produce tables
/// in controlled orders (random / sorted / skew-first / skew-last).
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    /// Simulated storage latency: sleep `stall_ns` nanoseconds once per
    /// `stall_every` heap reads (0 = disabled, the default). The tables
    /// here are in-memory, but the paper's environment is disk-bound —
    /// this knob recreates that regime for experiments (e.g. measuring
    /// what partitioned parallel scans buy when leaf reads actually
    /// wait), without touching results or getnext accounting.
    stall_every: std::sync::atomic::AtomicU64,
    stall_ns: std::sync::atomic::AtomicU64,
    reads: std::sync::atomic::AtomicU64,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            stall_every: std::sync::atomic::AtomicU64::new(0),
            stall_ns: std::sync::atomic::AtomicU64::new(0),
            reads: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Table name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Exact cardinality. Progress estimators may use this (Section 5.1:
    /// base-relation cardinality "is accurately available from the database
    /// catalogs").
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row after validating it against the schema.
    pub fn insert(&mut self, row: Row) -> StorageResult<RowId> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::SchemaMismatch(format!(
                "table {}: expected {} columns, got {}",
                self.name,
                self.schema.arity(),
                row.arity()
            )));
        }
        for (i, v) in row.values().iter().enumerate() {
            let col = self.schema.column(i);
            if !col.ty.admits(v) {
                return Err(StorageError::SchemaMismatch(format!(
                    "table {}: column {} ({}) cannot hold {v:?}",
                    self.name, col.name, col.ty
                )));
            }
        }
        let rid = self.rows.len() as RowId;
        self.rows.push(row);
        Ok(rid)
    }

    /// Appends a row without schema validation. Used by bulk loaders that
    /// construct rows straight from a typed generator.
    #[inline]
    pub fn insert_unchecked(&mut self, row: Row) -> RowId {
        let rid = self.rows.len() as RowId;
        self.rows.push(row);
        rid
    }

    /// Bulk-inserts rows built from value vectors, validating each.
    pub fn load(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> StorageResult<usize> {
        let mut n = 0;
        for vals in rows {
            self.insert(Row::new(vals))?;
            n += 1;
        }
        Ok(n)
    }

    /// Row by id. Panics if out of range (row ids come from this table's
    /// own indexes, so a miss is a logic error, not a user error).
    #[inline]
    pub fn row(&self, rid: RowId) -> &Row {
        if self.stall_every.load(std::sync::atomic::Ordering::Relaxed) != 0 {
            self.stall_read();
        }
        &self.rows[rid as usize]
    }

    /// Enables (or, with `every = 0`, disables) the simulated read
    /// stall: every `every`-th heap read sleeps for `stall`. Callable
    /// through a shared handle — concurrent partition scans each pay
    /// their share of the stalls, exactly like concurrent page reads.
    pub fn set_read_stall(&self, every: u64, stall: std::time::Duration) {
        let ns = stall.as_nanos().min(u64::MAX as u128) as u64;
        self.stall_ns
            .store(ns, std::sync::atomic::Ordering::Relaxed);
        // Reset the phase so the schedule is deterministic from the moment
        // of (re)configuration: the first sleep lands on the `every`-th
        // read after this call, however many reads happened before it.
        self.reads.store(0, std::sync::atomic::Ordering::Relaxed);
        self.stall_every
            .store(every, std::sync::atomic::Ordering::Relaxed);
    }

    /// Cold path of [`Table::row`] when a stall is configured.
    #[cold]
    fn stall_read(&self) {
        use std::sync::atomic::Ordering;
        let every = self.stall_every.load(Ordering::Relaxed);
        // 1-based count: the `every`-th, `2·every`-th, … reads sleep, so
        // the very first read never does (unless `every == 1`).
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        if every != 0 && n.is_multiple_of(every) {
            let ns = self.stall_ns.load(Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }

    /// All rows in heap (insertion) order.
    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Iterator over `(rid, row)` in heap order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().enumerate().map(|(i, r)| (i as RowId, r))
    }

    /// Splits the heap into `n` contiguous, non-overlapping row-id ranges
    /// `[start, end)` that cover the table in insertion order. The first
    /// `len % n` ranges get one extra row, so partition sizes differ by at
    /// most one. Concatenating the partitions in order reproduces the
    /// serial scan order exactly — the invariant parallel scans rely on to
    /// keep results byte-identical to a serial run.
    pub fn partition_ranges(&self, n: usize) -> Vec<(usize, usize)> {
        let n = n.max(1);
        let len = self.rows.len();
        let (base, extra) = (len / n, len % n);
        let mut ranges = Vec::with_capacity(n);
        let mut start = 0;
        for p in 0..n {
            let size = base + usize::from(p < extra);
            ranges.push((start, start + size));
            start += size;
        }
        ranges
    }

    /// Reorders the rows of the table in place according to `perm`, where
    /// the new row `i` is the old row `perm[i]`. Invalidates indexes; the
    /// catalog rebuilds them. Used by the data generators to realize the
    /// paper's adversarial input orders.
    pub fn reorder(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.rows.len(), "permutation length mismatch");
        let mut new_rows = Vec::with_capacity(self.rows.len());
        for &p in perm {
            new_rows.push(self.rows[p].clone());
        }
        self.rows = new_rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn t() -> Table {
        Table::new(
            "t",
            Schema::of(&[("a", ColumnType::Int), ("b", ColumnType::Str)]),
        )
    }

    #[test]
    fn insert_validates_arity() {
        let mut tab = t();
        let err = tab.insert(Row::new(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch(_)));
    }

    #[test]
    fn insert_validates_types() {
        let mut tab = t();
        let err = tab
            .insert(Row::new(vec![Value::str("x"), Value::str("y")]))
            .unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch(_)));
        // NULL is admissible anywhere.
        tab.insert(Row::new(vec![Value::Null, Value::Null]))
            .unwrap();
    }

    #[test]
    fn scan_preserves_insertion_order() {
        let mut tab = t();
        for i in 0..10 {
            tab.insert(Row::new(vec![Value::Int(i), Value::str("x")]))
                .unwrap();
        }
        let got: Vec<i64> = tab
            .scan()
            .map(|(_, r)| r.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reorder_applies_permutation() {
        let mut tab = t();
        for i in 0..4 {
            tab.insert(Row::new(vec![Value::Int(i), Value::str("x")]))
                .unwrap();
        }
        tab.reorder(&[3, 1, 0, 2]);
        let got: Vec<i64> = tab
            .rows()
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![3, 1, 0, 2]);
    }

    #[test]
    fn partition_ranges_cover_the_table_in_order() {
        let mut tab = t();
        for i in 0..10 {
            tab.insert(Row::new(vec![Value::Int(i), Value::str("x")]))
                .unwrap();
        }
        for n in [1, 2, 3, 4, 7, 10, 16] {
            let ranges = tab.partition_ranges(n);
            assert_eq!(ranges.len(), n);
            let mut expect_start = 0;
            for &(start, end) in &ranges {
                assert_eq!(start, expect_start, "ranges must be contiguous");
                assert!(end >= start);
                expect_start = end;
            }
            assert_eq!(expect_start, tab.len(), "ranges must cover the heap");
            let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(
                max - min <= 1,
                "sizes must differ by at most one: {sizes:?}"
            );
        }
        // Degenerate request: n = 0 behaves as 1.
        assert_eq!(tab.partition_ranges(0), vec![(0, 10)]);
    }

    #[test]
    fn row_ids_are_positions() {
        let mut tab = t();
        let r0 = tab
            .insert(Row::new(vec![Value::Int(7), Value::str("a")]))
            .unwrap();
        let r1 = tab
            .insert(Row::new(vec![Value::Int(8), Value::str("b")]))
            .unwrap();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(tab.row(r1).get(0), &Value::Int(8));
    }
}
