//! Heap tables.

use crate::error::{StorageError, StorageResult};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Position of a row within its table's heap. Stable: this engine is
/// insert-only (the paper's experiments never update or delete during
/// a measured query).
pub type RowId = u64;

/// An in-memory heap table: a schema plus a vector of rows in insertion
/// order.
///
/// Insertion order matters: the paper studies how the **order in which
/// tuples are retrieved from the driver node** affects estimator accuracy
/// (Section 4.2, "predictive orders"), and a heap scan returns rows in
/// exactly this order. The data generators in `qp-datagen` produce tables
/// in controlled orders (random / sorted / skew-first / skew-last).
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Table name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Exact cardinality. Progress estimators may use this (Section 5.1:
    /// base-relation cardinality "is accurately available from the database
    /// catalogs").
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row after validating it against the schema.
    pub fn insert(&mut self, row: Row) -> StorageResult<RowId> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::SchemaMismatch(format!(
                "table {}: expected {} columns, got {}",
                self.name,
                self.schema.arity(),
                row.arity()
            )));
        }
        for (i, v) in row.values().iter().enumerate() {
            let col = self.schema.column(i);
            if !col.ty.admits(v) {
                return Err(StorageError::SchemaMismatch(format!(
                    "table {}: column {} ({}) cannot hold {v:?}",
                    self.name, col.name, col.ty
                )));
            }
        }
        let rid = self.rows.len() as RowId;
        self.rows.push(row);
        Ok(rid)
    }

    /// Appends a row without schema validation. Used by bulk loaders that
    /// construct rows straight from a typed generator.
    #[inline]
    pub fn insert_unchecked(&mut self, row: Row) -> RowId {
        let rid = self.rows.len() as RowId;
        self.rows.push(row);
        rid
    }

    /// Bulk-inserts rows built from value vectors, validating each.
    pub fn load(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> StorageResult<usize> {
        let mut n = 0;
        for vals in rows {
            self.insert(Row::new(vals))?;
            n += 1;
        }
        Ok(n)
    }

    /// Row by id. Panics if out of range (row ids come from this table's
    /// own indexes, so a miss is a logic error, not a user error).
    #[inline]
    pub fn row(&self, rid: RowId) -> &Row {
        &self.rows[rid as usize]
    }

    /// All rows in heap (insertion) order.
    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Iterator over `(rid, row)` in heap order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().enumerate().map(|(i, r)| (i as RowId, r))
    }

    /// Reorders the rows of the table in place according to `perm`, where
    /// the new row `i` is the old row `perm[i]`. Invalidates indexes; the
    /// catalog rebuilds them. Used by the data generators to realize the
    /// paper's adversarial input orders.
    pub fn reorder(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.rows.len(), "permutation length mismatch");
        let mut new_rows = Vec::with_capacity(self.rows.len());
        for &p in perm {
            new_rows.push(self.rows[p].clone());
        }
        self.rows = new_rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn t() -> Table {
        Table::new(
            "t",
            Schema::of(&[("a", ColumnType::Int), ("b", ColumnType::Str)]),
        )
    }

    #[test]
    fn insert_validates_arity() {
        let mut tab = t();
        let err = tab.insert(Row::new(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch(_)));
    }

    #[test]
    fn insert_validates_types() {
        let mut tab = t();
        let err = tab
            .insert(Row::new(vec![Value::str("x"), Value::str("y")]))
            .unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch(_)));
        // NULL is admissible anywhere.
        tab.insert(Row::new(vec![Value::Null, Value::Null]))
            .unwrap();
    }

    #[test]
    fn scan_preserves_insertion_order() {
        let mut tab = t();
        for i in 0..10 {
            tab.insert(Row::new(vec![Value::Int(i), Value::str("x")]))
                .unwrap();
        }
        let got: Vec<i64> = tab
            .scan()
            .map(|(_, r)| r.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reorder_applies_permutation() {
        let mut tab = t();
        for i in 0..4 {
            tab.insert(Row::new(vec![Value::Int(i), Value::str("x")]))
                .unwrap();
        }
        tab.reorder(&[3, 1, 0, 2]);
        let got: Vec<i64> = tab
            .rows()
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![3, 1, 0, 2]);
    }

    #[test]
    fn row_ids_are_positions() {
        let mut tab = t();
        let r0 = tab
            .insert(Row::new(vec![Value::Int(7), Value::str("a")]))
            .unwrap();
        let r1 = tab
            .insert(Row::new(vec![Value::Int(8), Value::str("b")]))
            .unwrap();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(tab.row(r1).get(0), &Value::Int(8));
    }
}
