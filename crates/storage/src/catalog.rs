//! The database catalog: tables, indexes, and their metadata.

use crate::btree::BTreeIndex;
use crate::error::{StorageError, StorageResult};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Metadata and structure of one index.
#[derive(Debug)]
pub struct IndexMeta {
    pub name: String,
    pub table: String,
    /// Column positions (in the table schema) forming the composite key.
    pub key_columns: Vec<usize>,
    /// Declared unique (informational; key-FK joins are "linear" in the
    /// paper's sense when the lookup side is unique).
    pub unique: bool,
    /// The B+Tree structure itself.
    pub tree: BTreeIndex,
}

/// An in-memory database: named tables and the indexes built over them.
///
/// Tables are wrapped in `Arc` once frozen so that executor operators can
/// hold cheap references to them during a query. The engine is insert-only:
/// build the data, `freeze` it implicitly by handing out `Arc`s, then run
/// queries.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Arc<Table>>,
    indexes: BTreeMap<String, Arc<IndexMeta>>,
    /// The buffer pool shared by every paged table of this database
    /// (`None` for pure in-memory databases).
    pool: Option<Arc<qp_pager::BufferPool>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Attaches the buffer pool that this database's paged tables read
    /// through. Set by `paged::open_database`.
    pub fn set_buffer_pool(&mut self, pool: Arc<qp_pager::BufferPool>) {
        self.pool = Some(pool);
    }

    /// The shared buffer pool, if any table here is paged. Services use
    /// this to resize the pool (`SUBMIT PAGE_CACHE_FRAMES=`) and to
    /// export hit/miss/eviction counters through METRICS.
    pub fn buffer_pool(&self) -> Option<&Arc<qp_pager::BufferPool>> {
        self.pool.as_ref()
    }

    /// Adds a fully-built table to the catalog.
    pub fn add_table(&mut self, table: Table) -> StorageResult<Arc<Table>> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StorageError::Duplicate(name));
        }
        let arc = Arc::new(table);
        self.tables.insert(name, Arc::clone(&arc));
        Ok(arc)
    }

    /// Replaces an existing table (e.g. after reordering rows) and rebuilds
    /// all of its indexes.
    pub fn replace_table(&mut self, table: Table) -> StorageResult<Arc<Table>> {
        let name = table.name().to_string();
        if !self.tables.contains_key(&name) {
            return Err(StorageError::UnknownTable(name));
        }
        let arc = Arc::new(table);
        self.tables.insert(name.clone(), Arc::clone(&arc));
        // Rebuild dependent indexes.
        let to_rebuild: Vec<(String, Vec<usize>, bool)> = self
            .indexes
            .values()
            .filter(|ix| ix.table == name)
            .map(|ix| (ix.name.clone(), ix.key_columns.clone(), ix.unique))
            .collect();
        for (ix_name, cols, unique) in to_rebuild {
            self.indexes.remove(&ix_name);
            self.create_index_impl(&ix_name, &name, &cols, unique)?;
        }
        Ok(arc)
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> StorageResult<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Exact cardinality of a table, as a catalog lookup.
    pub fn cardinality(&self, name: &str) -> StorageResult<usize> {
        Ok(self.table(name)?.len())
    }

    /// Builds a B+Tree index named `index_name` over `table.key_column_names`.
    pub fn create_index(
        &mut self,
        index_name: &str,
        table_name: &str,
        key_column_names: &[&str],
        unique: bool,
    ) -> StorageResult<Arc<IndexMeta>> {
        let table = self.table(table_name)?;
        let cols = key_column_names
            .iter()
            .map(|c| table.schema().index_of(c))
            .collect::<StorageResult<Vec<_>>>()?;
        self.create_index_impl(index_name, table_name, &cols, unique)
    }

    fn create_index_impl(
        &mut self,
        index_name: &str,
        table_name: &str,
        key_columns: &[usize],
        unique: bool,
    ) -> StorageResult<Arc<IndexMeta>> {
        if self.indexes.contains_key(index_name) {
            return Err(StorageError::Duplicate(index_name.to_string()));
        }
        let table = self.table(table_name)?;
        let mut tree = BTreeIndex::new(key_columns.len());
        let mut seen_keys: Option<std::collections::HashSet<Vec<Value>>> =
            unique.then(std::collections::HashSet::new);
        for (rid, row) in table.scan() {
            let key: Vec<Value> = key_columns.iter().map(|&c| row.get(c).clone()).collect();
            if let Some(seen) = &mut seen_keys {
                if !seen.insert(key.clone()) {
                    return Err(StorageError::UniqueViolation(format!("{key:?}")));
                }
            }
            tree.insert(key, rid);
        }
        let meta = Arc::new(IndexMeta {
            name: index_name.to_string(),
            table: table_name.to_string(),
            key_columns: key_columns.to_vec(),
            unique,
            tree,
        });
        self.indexes
            .insert(index_name.to_string(), Arc::clone(&meta));
        Ok(meta)
    }

    /// All index metadata, in name order (used by the persistence layer
    /// to record index definitions in the database MANIFEST).
    pub fn index_metas(&self) -> impl Iterator<Item = &Arc<IndexMeta>> {
        self.indexes.values()
    }

    /// Looks up an index by name.
    pub fn index(&self, name: &str) -> StorageResult<Arc<IndexMeta>> {
        self.indexes
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownIndex(name.to_string()))
    }

    /// Finds an index on `table_name` whose key is exactly `key_columns`
    /// (by position), if one exists.
    pub fn find_index_on(&self, table_name: &str, key_columns: &[usize]) -> Option<Arc<IndexMeta>> {
        self.indexes
            .values()
            .find(|ix| ix.table == table_name && ix.key_columns == key_columns)
            .cloned()
    }

    /// Convenience: creates a table from a schema and row-value vectors.
    pub fn create_table_with_rows(
        &mut self,
        name: &str,
        schema: Schema,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> StorageResult<Arc<Table>> {
        let mut t = Table::new(name, schema);
        t.load(rows)?;
        self.add_table(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn db_with_t() -> Database {
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("k", ColumnType::Int), ("v", ColumnType::Str)]),
            (0..100).map(|i| vec![Value::Int(i % 10), Value::str(format!("v{i}"))]),
        )
        .unwrap();
        db
    }

    #[test]
    fn table_lookup_and_cardinality() {
        let db = db_with_t();
        assert_eq!(db.cardinality("t").unwrap(), 100);
        assert!(matches!(
            db.table("nope"),
            Err(StorageError::UnknownTable(_))
        ));
    }

    #[test]
    fn index_build_and_lookup() {
        let mut db = db_with_t();
        let ix = db.create_index("t_k", "t", &["k"], false).unwrap();
        assert_eq!(ix.tree.len(), 100);
        // Each key 0..10 appears 10 times.
        assert_eq!(ix.tree.lookup(&[Value::Int(3)]).count(), 10);
        ix.tree.check_invariants();
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut db = db_with_t();
        let err = db.create_index("t_k_u", "t", &["k"], true).unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation(_)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut db = db_with_t();
        let t2 = Table::new("t", Schema::of(&[("x", ColumnType::Int)]));
        assert!(matches!(db.add_table(t2), Err(StorageError::Duplicate(_))));
    }

    #[test]
    fn replace_table_rebuilds_indexes() {
        let mut db = db_with_t();
        db.create_index("t_k", "t", &["k"], false).unwrap();
        // Reorder rows and replace; index must still find everything.
        let old = db.table("t").unwrap();
        let mut t2 = Table::new("t", old.schema().clone());
        for (_, r) in old.scan() {
            t2.insert_unchecked(r.clone());
        }
        let perm: Vec<usize> = (0..100).rev().collect();
        t2.reorder(&perm);
        db.replace_table(t2).unwrap();
        let ix = db.index("t_k").unwrap();
        assert_eq!(ix.tree.len(), 100);
        assert_eq!(ix.tree.lookup(&[Value::Int(9)]).count(), 10);
    }

    #[test]
    fn find_index_on_matches_key_columns() {
        let mut db = db_with_t();
        db.create_index("t_k", "t", &["k"], false).unwrap();
        assert!(db.find_index_on("t", &[0]).is_some());
        assert!(db.find_index_on("t", &[1]).is_none());
        assert!(db.find_index_on("u", &[0]).is_none());
    }
}
