//! Typed scalar values with a total order.
//!
//! The paper's framework needs values only for (a) evaluating predicates and
//! join conditions, (b) ordering (sort, merge join, B+Tree keys), and
//! (c) hashing (hash join, hash aggregation). [`Value`] supports all three
//! with a *total* order so that it can be used directly as a B+Tree key
//! component without auxiliary wrapper types.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically-typed scalar value.
///
/// Numeric comparisons are performed cross-type between [`Value::Int`] and
/// [`Value::Float`] so that predicates like `l_quantity < 24` behave as in
/// SQL regardless of the stored representation. All other comparisons are
/// within-type; across different types, a fixed type rank defines the total
/// order (`Null < Bool < numerics < Str < Date`).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Compares less than every non-null value (index order), but
    /// predicate evaluation treats comparisons with NULL as *false*
    /// (three-valued logic collapsed to two, as in a WHERE clause).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalized to compare greater than all other
    /// floats, giving a total order.
    Float(f64),
    /// Interned UTF-8 string. `Arc<str>` keeps `Row` clones cheap.
    Str(Arc<str>),
    /// Date as days since the epoch 1970-01-01 (negative allowed).
    Date(i32),
}

impl Value {
    /// Builds a string value from anything string-like.
    pub fn str(s: impl Into<Cow<'static, str>>) -> Value {
        match s.into() {
            Cow::Borrowed(b) => Value::Str(Arc::from(b)),
            Cow::Owned(o) => Value::Str(Arc::from(o.as_str())),
        }
    }

    /// Builds a [`Value::Date`] from a `(year, month, day)` triple using a
    /// proleptic Gregorian calendar. Panics on out-of-range month/day.
    pub fn date(year: i32, month: u32, day: u32) -> Value {
        Value::Date(days_from_civil(year, month, day))
    }

    /// True iff this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it is numeric.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank used to order values of different types.
    #[inline]
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Date(_) => 4,
        }
    }

    /// SQL comparison: returns `None` when either side is NULL (unknown),
    /// `Some(ordering)` otherwise. Used by predicate evaluation; the total
    /// [`Ord`] implementation below is used by sorting and index keys.
    #[inline]
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => total_f64_cmp(*a, *b),
            (Int(a), Float(b)) => total_f64_cmp(*a as f64, *b),
            (Float(a), Int(b)) => total_f64_cmp(*a, *b as f64),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Date(a), Date(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equal; hash the
            // canonical f64 bit pattern for both when the int is exactly
            // representable, otherwise the i64.
            Value::Int(i) => {
                let f = *i as f64;
                if f as i64 == *i {
                    2u8.hash(state);
                    canonical_f64_bits(f).hash(state);
                } else {
                    3u8.hash(state);
                    i.hash(state);
                }
            }
            Value::Float(f) => {
                2u8.hash(state);
                canonical_f64_bits(*f).hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                5u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => {
                let (y, m, day) = civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// Total order over f64 treating NaN as the greatest value and -0.0 == 0.0.
#[inline]
fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("non-NaN floats always compare"),
    }
}

/// Bit pattern used for hashing floats consistently with `total_f64_cmp`.
#[inline]
fn canonical_f64_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0.0f64.to_bits() // collapse -0.0 and +0.0
    } else {
        f.to_bits()
    }
}

/// Days from civil date, Howard Hinnant's algorithm (public domain).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    assert!((1..=12).contains(&m), "month out of range: {m}");
    assert!((1..=31).contains(&d), "day out of range: {d}");
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Civil date from days, inverse of [`days_from_civil`].
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn int_float_cross_compare() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(h(&Value::Int(42)), h(&Value::Float(42.0)));
        assert_eq!(h(&Value::Float(0.0)), h(&Value::Float(-0.0)));
    }

    #[test]
    fn nan_is_greatest_float() {
        assert!(Value::Float(f64::NAN) > Value::Float(f64::INFINITY));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn null_sorts_first_but_sql_cmp_is_unknown() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(0)), None);
        assert_eq!(Value::Int(0).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(1)), Some(Ordering::Equal));
    }

    #[test]
    fn cross_type_order_is_total_and_consistent() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Float(0.5),
            Value::Int(7),
            Value::str("abc"),
            Value::str("abd"),
            Value::date(1995, 3, 15),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1992, 2, 29),
            (1998, 12, 1),
            (2000, 1, 1),
            (1969, 12, 31),
            (1900, 3, 1),
        ] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d), "{y}-{m}-{d}");
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
    }

    #[test]
    fn date_display() {
        assert_eq!(Value::date(1995, 3, 15).to_string(), "1995-03-15");
    }

    #[test]
    fn str_interning_is_cheap_to_clone() {
        let v = Value::str("hello world");
        let w = v.clone();
        assert_eq!(v, w);
    }
}
