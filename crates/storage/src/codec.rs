//! Row serialization for page cells.
//!
//! One cell per row: `u16` arity, then per value a tag byte and a
//! fixed- or length-prefixed payload. The encoding round-trips every
//! [`Value`] *exactly* — floats travel as their IEEE bit pattern — so a
//! query over a paged table is byte-identical to the same query over
//! the heap the table was saved from. All integers little-endian.

use crate::error::{StorageError, StorageResult};
use crate::row::Row;
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_DATE: u8 = 5;

/// Appends the encoding of `row` to `out`.
pub fn encode_row(row: &Row, out: &mut Vec<u8>) {
    out.extend_from_slice(&(row.arity() as u16).to_le_bytes());
    for v in row.values() {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                out.push(TAG_DATE);
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
    }
}

/// Size of [`encode_row`]'s output for `row`.
pub fn encoded_len(row: &Row) -> usize {
    2 + row
        .values()
        .iter()
        .map(|v| match v {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Date(_) => 5,
        })
        .sum::<usize>()
}

/// Decodes one row from a page cell.
pub fn decode_row(cell: &[u8]) -> StorageResult<Row> {
    let corrupt = |what: &str| StorageError::ReadFailed(format!("row cell corrupt: {what}"));
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> StorageResult<&[u8]> {
        let end = *pos + n;
        let s = cell.get(*pos..end).ok_or_else(|| corrupt("truncated"))?;
        *pos = end;
        Ok(s)
    };
    let arity = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        let tag = take(&mut pos, 1)?[0];
        values.push(match tag {
            TAG_NULL => Value::Null,
            TAG_BOOL => Value::Bool(take(&mut pos, 1)?[0] != 0),
            TAG_INT => Value::Int(i64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap())),
            TAG_FLOAT => Value::Float(f64::from_bits(u64::from_le_bytes(
                take(&mut pos, 8)?.try_into().unwrap(),
            ))),
            TAG_STR => {
                let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
                let bytes = take(&mut pos, len)?;
                let s = std::str::from_utf8(bytes).map_err(|_| corrupt("non-utf8 string"))?;
                Value::Str(s.into())
            }
            TAG_DATE => Value::Date(i32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap())),
            _ => return Err(corrupt("unknown value tag")),
        });
    }
    if pos != cell.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(Row::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_value_kind_round_trips_exactly() {
        let row = Row::new(vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.1 + 0.2), // not representable "nicely": bits must survive
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::str(""),
            Value::str("héllo ⋈ wörld"),
            Value::Date(-719468),
        ]);
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        assert_eq!(buf.len(), encoded_len(&row));
        let back = decode_row(&buf).unwrap();
        assert_eq!(back.arity(), row.arity());
        for (a, b) in row.values().iter().zip(back.values()) {
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn truncated_and_garbage_cells_error_cleanly() {
        let row = Row::new(vec![Value::Int(42), Value::str("abc")]);
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_row(&buf[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = buf.clone();
        trailing.push(0);
        assert!(decode_row(&trailing).is_err());
        let mut bad_tag = buf.clone();
        bad_tag[2] = 99;
        assert!(decode_row(&bad_tag).is_err());
    }

    #[test]
    fn empty_row_round_trips() {
        let mut buf = Vec::new();
        encode_row(&Row::empty(), &mut buf);
        assert_eq!(buf, vec![0, 0]);
        assert_eq!(decode_row(&buf).unwrap().arity(), 0);
    }
}
