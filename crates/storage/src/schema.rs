//! Column and schema descriptions.

use crate::error::{StorageError, StorageResult};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    Bool,
    Int,
    Float,
    Str,
    Date,
}

impl ColumnType {
    /// Whether a value is admissible in a column of this type.
    /// NULLs are admissible everywhere (nullability is advisory in this
    /// engine; the paper's framework never depends on NOT NULL enforcement).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Date, Value::Date(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Bool => "BOOL",
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Str => "STR",
            ColumnType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Column {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns. Cheap to clone (`Arc` inside) because every
/// operator in the executor carries its output schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<[Column]>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema {
            columns: columns.into(),
        }
    }

    /// Builds a schema from `(name, type)` pairs.
    pub fn of(cols: &[(&str, ColumnType)]) -> Schema {
        Schema::new(
            cols.iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect::<Vec<_>>(),
        )
    }

    /// An empty schema (zero columns).
    pub fn empty() -> Schema {
        Schema::new(Vec::new())
    }

    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    #[inline]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> StorageResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// Column at position `i`. Panics if out of range.
    #[inline]
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Concatenation of two schemas (used by joins). Column names are kept
    /// as-is; the executor addresses columns by position, so duplicate names
    /// across sides are allowed (`index_of` finds the leftmost).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = Vec::with_capacity(self.arity() + other.arity());
        cols.extend_from_slice(&self.columns);
        cols.extend_from_slice(&other.columns);
        Schema::new(cols)
    }

    /// Schema consisting of the columns at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.columns[i].clone()).collect())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::of(&[
            ("a", ColumnType::Int),
            ("b", ColumnType::Str),
            ("c", ColumnType::Float),
        ])
    }

    #[test]
    fn index_of_finds_columns() {
        let s = abc();
        assert_eq!(s.index_of("a").unwrap(), 0);
        assert_eq!(s.index_of("c").unwrap(), 2);
        assert!(matches!(
            s.index_of("zz"),
            Err(StorageError::UnknownColumn(_))
        ));
    }

    #[test]
    fn join_concatenates() {
        let s = abc().join(&Schema::of(&[("d", ColumnType::Date)]));
        assert_eq!(s.arity(), 4);
        assert_eq!(s.column(3).name, "d");
    }

    #[test]
    fn project_selects_in_order() {
        let s = abc().project(&[2, 0]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column(0).name, "c");
        assert_eq!(s.column(1).name, "a");
    }

    #[test]
    fn admits_respects_types_and_null() {
        assert!(ColumnType::Int.admits(&Value::Int(5)));
        assert!(!ColumnType::Int.admits(&Value::str("x")));
        assert!(ColumnType::Str.admits(&Value::Null));
        // Ints are admissible in float columns (numeric widening).
        assert!(ColumnType::Float.admits(&Value::Int(5)));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(abc().to_string(), "(a INT, b STR, c FLOAT)");
    }
}
