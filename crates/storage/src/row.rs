//! Rows: immutable, cheaply-cloneable tuples.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable tuple of values.
///
/// Rows flow through every operator of the executor and are cloned at
/// pipeline boundaries (sort buffers, hash tables), so they are backed by an
/// `Arc<[Value]>`: cloning a `Row` is a refcount bump, never a deep copy.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Row {
    /// Builds a row from a vector of values.
    pub fn new(values: Vec<Value>) -> Row {
        Row {
            values: values.into(),
        }
    }

    /// The empty row (used by zero-column aggregations).
    pub fn empty() -> Row {
        Row {
            values: Arc::from(Vec::new()),
        }
    }

    /// All values, in column order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column position `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Concatenation of two rows, used by join operators.
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Row::new(v)
    }

    /// Concatenation of this row with `n` NULLs (outer-join padding).
    pub fn concat_nulls(&self, n: usize) -> Row {
        let mut v = Vec::with_capacity(self.arity() + n);
        v.extend_from_slice(&self.values);
        v.extend(std::iter::repeat_with(|| Value::Null).take(n));
        Row::new(v)
    }

    /// Row consisting of the values at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Extracts the key values at `indices` into a reusable buffer.
    /// Hot-path variant of [`Row::project`] that avoids constructing a `Row`.
    #[inline]
    pub fn extract_key_into(&self, indices: &[usize], out: &mut Vec<Value>) {
        out.clear();
        out.extend(indices.iter().map(|&i| self.values[i].clone()));
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Row[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Row {
        Row::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn concat_preserves_order() {
        let r = row(&[1, 2]).concat(&row(&[3]));
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(2), &Value::Int(3));
    }

    #[test]
    fn concat_nulls_pads() {
        let r = row(&[1]).concat_nulls(2);
        assert_eq!(r.arity(), 3);
        assert!(r.get(1).is_null());
        assert!(r.get(2).is_null());
    }

    #[test]
    fn project_reorders() {
        let r = row(&[10, 20, 30]).project(&[2, 0]);
        assert_eq!(r.values(), &[Value::Int(30), Value::Int(10)]);
    }

    #[test]
    fn clone_is_shallow() {
        let r = row(&[1, 2, 3]);
        let s = r.clone();
        assert!(Arc::ptr_eq(&r.values, &s.values));
    }

    #[test]
    fn extract_key_into_reuses_buffer() {
        let r = row(&[5, 6, 7]);
        let mut buf = Vec::new();
        r.extract_key_into(&[1], &mut buf);
        assert_eq!(buf, vec![Value::Int(6)]);
        r.extract_key_into(&[0, 2], &mut buf);
        assert_eq!(buf, vec![Value::Int(5), Value::Int(7)]);
    }
}
