//! Error type shared by the storage layer.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A named table was not found in the catalog.
    UnknownTable(String),
    /// A named index was not found in the catalog.
    UnknownIndex(String),
    /// A named column was not found in a schema.
    UnknownColumn(String),
    /// A row's arity or column types did not match the table schema.
    SchemaMismatch(String),
    /// An object with the same name already exists.
    Duplicate(String),
    /// A unique index rejected a duplicate key.
    UniqueViolation(String),
    /// A read from the storage layer failed (in this in-memory engine the
    /// only producer is deterministic fault injection, standing in for the
    /// torn pages / IO errors a disk-backed engine would surface).
    ReadFailed(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(n) => write!(f, "unknown table: {n}"),
            StorageError::UnknownIndex(n) => write!(f, "unknown index: {n}"),
            StorageError::UnknownColumn(n) => write!(f, "unknown column: {n}"),
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StorageError::Duplicate(n) => write!(f, "object already exists: {n}"),
            StorageError::UniqueViolation(k) => write!(f, "unique violation on key {k}"),
            StorageError::ReadFailed(m) => write!(f, "storage read failed: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenient result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;
