//! A hand-written B+Tree index mapping composite [`Value`] keys to row ids.
//!
//! This is the substrate for the `index-seek` operator and the *index
//! nested-loops join* — the operator at the heart of the paper's
//! lower-bound argument (Section 3, Example 1): an INL join performs one
//! B+Tree lookup per outer tuple, so the number of `getnext` calls charged
//! to the inner side is exactly the number of matching index entries, which
//! is what makes the total work unpredictable under join skew.
//!
//! Design notes:
//! * Keys are composite (`Vec<Value>`); duplicates are allowed unless the
//!   index is declared unique (entries are `(key, row_id)` pairs, and the
//!   tree is ordered by the pair, making every entry distinct).
//! * Leaf nodes are chained for efficient range scans.
//! * Node capacity (`MAX_KEYS`) is 64 — small enough to exercise splits in
//!   unit tests, large enough to keep trees shallow.

use crate::table::RowId;
use crate::value::Value;
use std::ops::Bound;

/// Maximum number of entries in a node before it splits.
const MAX_KEYS: usize = 64;

/// A composite index key.
pub type Key = Vec<Value>;

#[derive(Debug)]
enum Node {
    Leaf(LeafNode),
    Internal(InternalNode),
}

#[derive(Debug, Default)]
struct LeafNode {
    /// Sorted by (key, rid).
    entries: Vec<(Key, RowId)>,
    /// Index of the next leaf in `BTreeIndex::leaves` order, for range scans.
    next: Option<usize>,
}

#[derive(Debug)]
struct InternalNode {
    /// `keys[i]` is the smallest (key, rid) in `children[i + 1]`'s subtree.
    keys: Vec<(Key, RowId)>,
    children: Vec<usize>,
}

/// A B+Tree mapping composite keys to [`RowId`]s, with duplicate support and
/// leaf chaining for range scans.
#[derive(Debug)]
pub struct BTreeIndex {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
    key_arity: usize,
}

impl BTreeIndex {
    /// Creates an empty index over keys of the given arity.
    pub fn new(key_arity: usize) -> BTreeIndex {
        BTreeIndex {
            nodes: vec![Node::Leaf(LeafNode::default())],
            root: 0,
            len: 0,
            key_arity,
        }
    }

    /// Number of entries in the index.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index contains no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arity of the composite key.
    #[inline]
    pub fn key_arity(&self) -> usize {
        self.key_arity
    }

    /// Inserts an entry. Duplicate keys are allowed (entries are unique by
    /// `(key, rid)`).
    pub fn insert(&mut self, key: Key, rid: RowId) {
        debug_assert_eq!(key.len(), self.key_arity, "key arity mismatch");
        if let Some((sep, right)) = self.insert_rec(self.root, key, rid) {
            // Root split: create a new root with two children.
            let old_root = self.root;
            self.nodes.push(Node::Internal(InternalNode {
                keys: vec![sep],
                children: vec![old_root, right],
            }));
            self.root = self.nodes.len() - 1;
        }
        self.len += 1;
    }

    /// Recursive insert; returns `Some((separator, new_node_idx))` when the
    /// child at `node` split.
    fn insert_rec(&mut self, node: usize, key: Key, rid: RowId) -> Option<((Key, RowId), usize)> {
        match &mut self.nodes[node] {
            Node::Leaf(leaf) => {
                let pos = leaf
                    .entries
                    .partition_point(|(k, r)| (k.as_slice(), *r) < (key.as_slice(), rid));
                leaf.entries.insert(pos, (key, rid));
                if leaf.entries.len() <= MAX_KEYS {
                    return None;
                }
                // Split the leaf in half; the new right leaf follows this one
                // in the chain.
                let mid = leaf.entries.len() / 2;
                let right_entries = leaf.entries.split_off(mid);
                let right_next = leaf.next;
                let sep = right_entries[0].clone();
                let right_idx = self.nodes.len();
                if let Node::Leaf(leaf) = &mut self.nodes[node] {
                    leaf.next = Some(right_idx);
                }
                self.nodes.push(Node::Leaf(LeafNode {
                    entries: right_entries,
                    next: right_next,
                }));
                Some((sep, right_idx))
            }
            Node::Internal(internal) => {
                let child_pos = internal
                    .keys
                    .partition_point(|(k, r)| (k.as_slice(), *r) <= (key.as_slice(), rid));
                let child = internal.children[child_pos];
                let split = self.insert_rec(child, key, rid)?;
                let (sep, right_idx) = split;
                if let Node::Internal(internal) = &mut self.nodes[node] {
                    let pos = internal
                        .keys
                        .partition_point(|(k, r)| (k.as_slice(), *r) < (sep.0.as_slice(), sep.1));
                    internal.keys.insert(pos, sep);
                    internal.children.insert(pos + 1, right_idx);
                    if internal.keys.len() <= MAX_KEYS {
                        return None;
                    }
                    // Split the internal node; the middle key moves up.
                    let mid = internal.keys.len() / 2;
                    let up = internal.keys[mid].clone();
                    let right_keys = internal.keys.split_off(mid + 1);
                    internal.keys.pop(); // remove `up`
                    let right_children = internal.children.split_off(mid + 1);
                    let new_idx = self.nodes.len();
                    self.nodes.push(Node::Internal(InternalNode {
                        keys: right_keys,
                        children: right_children,
                    }));
                    return Some((up, new_idx));
                }
                unreachable!("node changed kind during insert");
            }
        }
    }

    /// Returns the leaf index and entry offset of the first entry whose
    /// `(key, rid)` is `>= (key, rid_floor)`.
    fn seek(&self, key: &[Value], rid_floor: RowId) -> (usize, usize) {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal(internal) => {
                    let pos = internal
                        .keys
                        .partition_point(|(k, r)| (k.as_slice(), *r) <= (key, rid_floor));
                    node = internal.children[pos];
                }
                Node::Leaf(leaf) => {
                    let pos = leaf
                        .entries
                        .partition_point(|(k, r)| (k.as_slice(), *r) < (key, rid_floor));
                    return (node, pos);
                }
            }
        }
    }

    /// Row ids with exactly the given key, in rid order.
    pub fn lookup<'a>(&'a self, key: &'a [Value]) -> LookupIter<'a> {
        debug_assert_eq!(key.len(), self.key_arity, "key arity mismatch");
        let (leaf, pos) = self.seek(key, 0);
        LookupIter {
            tree: self,
            key,
            leaf,
            pos,
        }
    }

    /// Entries in `[lo, hi]` (bounds on the full composite key), in key
    /// order. `Bound::Unbounded` on either side scans to the edge.
    pub fn range(&self, lo: Bound<&[Value]>, hi: Bound<Key>) -> RangeIter<'_> {
        let (leaf, pos) = match lo {
            Bound::Unbounded => (self.leftmost_leaf(), 0),
            Bound::Included(k) => self.seek(k, 0),
            Bound::Excluded(k) => self.seek(k, RowId::MAX),
        };
        RangeIter {
            tree: self,
            leaf,
            pos,
            hi,
        }
    }

    /// All entries in key order (full index scan).
    pub fn scan(&self) -> RangeIter<'_> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    fn leftmost_leaf(&self) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal(internal) => node = internal.children[0],
                Node::Leaf(_) => return node,
            }
        }
    }

    /// Depth of the tree (1 for a lone leaf). Exposed for tests and for the
    /// cost model (an index seek costs `depth` page touches).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal(internal) => {
                    d += 1;
                    node = internal.children[0];
                }
                Node::Leaf(_) => return d,
            }
        }
    }

    /// Validates structural invariants; used by tests and property tests.
    /// Returns the total number of entries found.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> usize {
        let count = self.check_node(self.root, None, None);
        assert_eq!(count, self.len, "entry count mismatch");
        // Leaf chain must visit every entry in non-decreasing order.
        let mut chained = 0;
        let mut prev: Option<(Key, RowId)> = None;
        let mut leaf = Some(self.leftmost_leaf());
        while let Some(l) = leaf {
            if let Node::Leaf(n) = &self.nodes[l] {
                for e in &n.entries {
                    if let Some(p) = &prev {
                        assert!(
                            (p.0.as_slice(), p.1) <= (e.0.as_slice(), e.1),
                            "leaf chain out of order"
                        );
                    }
                    prev = Some(e.clone());
                    chained += 1;
                }
                leaf = n.next;
            } else {
                panic!("leaf chain points at internal node");
            }
        }
        assert_eq!(chained, self.len, "leaf chain misses entries");
        count
    }

    fn check_node(
        &self,
        node: usize,
        lo: Option<&(Key, RowId)>,
        hi: Option<&(Key, RowId)>,
    ) -> usize {
        let in_bounds = |e: &(Key, RowId)| {
            if let Some(l) = lo {
                assert!(
                    (l.0.as_slice(), l.1) <= (e.0.as_slice(), e.1),
                    "entry below subtree lower bound"
                );
            }
            if let Some(h) = hi {
                assert!(
                    (e.0.as_slice(), e.1) < (h.0.as_slice(), h.1),
                    "entry above subtree upper bound"
                );
            }
        };
        match &self.nodes[node] {
            Node::Leaf(leaf) => {
                for w in leaf.entries.windows(2) {
                    assert!(
                        (w[0].0.as_slice(), w[0].1) < (w[1].0.as_slice(), w[1].1),
                        "leaf entries out of order"
                    );
                }
                for e in &leaf.entries {
                    in_bounds(e);
                }
                leaf.entries.len()
            }
            Node::Internal(internal) => {
                assert_eq!(
                    internal.children.len(),
                    internal.keys.len() + 1,
                    "fanout mismatch"
                );
                let mut total = 0;
                for i in 0..internal.children.len() {
                    let child_lo = if i == 0 {
                        lo
                    } else {
                        Some(&internal.keys[i - 1])
                    };
                    let child_hi = if i == internal.keys.len() {
                        hi
                    } else {
                        Some(&internal.keys[i])
                    };
                    total += self.check_node(internal.children[i], child_lo, child_hi);
                }
                total
            }
        }
    }
}

/// Iterator over row ids matching an exact key.
pub struct LookupIter<'a> {
    tree: &'a BTreeIndex,
    key: &'a [Value],
    leaf: usize,
    pos: usize,
}

impl Iterator for LookupIter<'_> {
    type Item = RowId;

    fn next(&mut self) -> Option<RowId> {
        loop {
            let Node::Leaf(leaf) = &self.tree.nodes[self.leaf] else {
                return None;
            };
            if self.pos < leaf.entries.len() {
                let (k, rid) = &leaf.entries[self.pos];
                if k.as_slice() == self.key {
                    self.pos += 1;
                    return Some(*rid);
                }
                return None; // past all duplicates of `key`
            }
            self.leaf = leaf.next?;
            self.pos = 0;
        }
    }
}

/// Iterator over `(key, rid)` entries within a range.
pub struct RangeIter<'a> {
    tree: &'a BTreeIndex,
    leaf: usize,
    pos: usize,
    hi: Bound<Key>,
}

impl<'a> Iterator for RangeIter<'a> {
    type Item = (&'a [Value], RowId);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let Node::Leaf(leaf) = &self.tree.nodes[self.leaf] else {
                return None;
            };
            if self.pos < leaf.entries.len() {
                let (k, rid) = &leaf.entries[self.pos];
                let past_end = match &self.hi {
                    Bound::Unbounded => false,
                    Bound::Included(h) => k.as_slice() > h.as_slice(),
                    Bound::Excluded(h) => k.as_slice() >= h.as_slice(),
                };
                if past_end {
                    return None;
                }
                self.pos += 1;
                return Some((k.as_slice(), *rid));
            }
            self.leaf = leaf.next?;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ik(v: i64) -> Key {
        vec![Value::Int(v)]
    }

    #[test]
    fn empty_lookup_is_empty() {
        let t = BTreeIndex::new(1);
        assert_eq!(t.lookup(&ik(5)).count(), 0);
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn insert_and_lookup_unique_keys() {
        let mut t = BTreeIndex::new(1);
        for i in 0..1000 {
            t.insert(ik(i), i as RowId);
        }
        t.check_invariants();
        assert_eq!(t.len(), 1000);
        assert!(t.depth() > 1, "tree should have split");
        for i in 0..1000 {
            let rids: Vec<_> = t.lookup(&ik(i)).collect();
            assert_eq!(rids, vec![i as RowId], "key {i}");
        }
        assert_eq!(t.lookup(&ik(10_000)).count(), 0);
    }

    #[test]
    fn duplicate_keys_return_all_rids_in_order() {
        let mut t = BTreeIndex::new(1);
        // 500 duplicates of key 7 interleaved with other keys.
        for i in 0..500u64 {
            t.insert(ik(7), i * 2 + 1);
            t.insert(ik(i as i64 + 100), i * 2);
        }
        t.check_invariants();
        let rids: Vec<_> = t.lookup(&ik(7)).collect();
        assert_eq!(rids.len(), 500);
        assert!(rids.windows(2).all(|w| w[0] < w[1]), "rids must be sorted");
    }

    #[test]
    fn reverse_insert_order_stays_sorted() {
        let mut t = BTreeIndex::new(1);
        for i in (0..2000).rev() {
            t.insert(ik(i), i as RowId);
        }
        t.check_invariants();
        let keys: Vec<i64> = t.scan().map(|(k, _)| k[0].as_i64().unwrap()).collect();
        assert_eq!(keys.len(), 2000);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn range_scan_honors_bounds() {
        let mut t = BTreeIndex::new(1);
        for i in 0..100 {
            t.insert(ik(i), i as RowId);
        }
        let got: Vec<i64> = t
            .range(Bound::Included(&ik(10)), Bound::Excluded(ik(20)))
            .map(|(k, _)| k[0].as_i64().unwrap())
            .collect();
        assert_eq!(got, (10..20).collect::<Vec<_>>());

        let got: Vec<i64> = t
            .range(Bound::Excluded(&ik(95)), Bound::Unbounded)
            .map(|(k, _)| k[0].as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![96, 97, 98, 99]);

        let got: Vec<i64> = t
            .range(Bound::Unbounded, Bound::Included(ik(3)))
            .map(|(k, _)| k[0].as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        let mut t = BTreeIndex::new(2);
        t.insert(vec![Value::Int(1), Value::str("b")], 0);
        t.insert(vec![Value::Int(1), Value::str("a")], 1);
        t.insert(vec![Value::Int(0), Value::str("z")], 2);
        t.check_invariants();
        let rids: Vec<RowId> = t.scan().map(|(_, r)| r).collect();
        assert_eq!(rids, vec![2, 1, 0]);
        assert_eq!(
            t.lookup(&[Value::Int(1), Value::str("a")])
                .collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn scan_visits_everything_once() {
        let mut t = BTreeIndex::new(1);
        for i in 0..5000 {
            t.insert(ik((i * 37) % 1000), i as RowId);
        }
        t.check_invariants();
        assert_eq!(t.scan().count(), 5000);
    }
}
