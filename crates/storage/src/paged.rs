//! Persistence: saving databases to page files and opening them back
//! through the buffer pool.
//!
//! One page file + one WAL per table, plus a `MANIFEST` naming the
//! tables and index definitions, all inside a database directory:
//!
//! ```text
//! <dir>/MANIFEST          table lineitem / index li_ok lineitem 0 0 ...
//! <dir>/lineitem.qpt      page 0 pager header · page 1 table meta ·
//! <dir>/lineitem.wal      pages 2.. data (fixed rows-per-page stride)
//! ```
//!
//! Every mutation of a page file — the initial bulk load and any later
//! [`append_rows`] — is **one WAL transaction**: page images (header
//! and meta pages included) are staged in the log, the commit record is
//! fsynced, and only then does the data file change. A crash anywhere
//! leaves the file either exactly pre- or exactly post-transaction;
//! [`open_table`] replays the WAL before first read. The data file is
//! *never* written outside a committed transaction, which is what makes
//! the crash-recovery matrix's byte-identical comparison possible.
//!
//! The row layout is a fixed stride: `rows_per_page` is computed from
//! the widest encoded row at save time, so `rid → (page, slot)` is pure
//! arithmetic and scans need no page directory. Appended rows must fit
//! the established stride (they come from the same generators, so they
//! do; a wider row is a loud error, not silent corruption).

use crate::catalog::Database;
use crate::codec::{encode_row, encoded_len};
use crate::error::{StorageError, StorageResult};
use crate::row::Row;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::{PagedRows, Table};
use qp_pager::{
    read_cell, BufferPool, CrashPoint, PageId, Pager, PagerError, SlottedPage, Wal, PAGE_SIZE,
};
use std::path::Path;
use std::sync::Arc;

/// Page 1 of every table file: name, schema, row count, stride.
const META_PAGE: PageId = 1;
const FIRST_DATA_PAGE: PageId = 2;

fn io_err(e: PagerError) -> StorageError {
    StorageError::ReadFailed(e.to_string())
}

fn ty_code(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Bool => 0,
        ColumnType::Int => 1,
        ColumnType::Float => 2,
        ColumnType::Str => 3,
        ColumnType::Date => 4,
    }
}

fn ty_from_code(code: u8) -> StorageResult<ColumnType> {
    Ok(match code {
        0 => ColumnType::Bool,
        1 => ColumnType::Int,
        2 => ColumnType::Float,
        3 => ColumnType::Str,
        4 => ColumnType::Date,
        other => {
            return Err(StorageError::ReadFailed(format!(
                "meta page: unknown column type code {other}"
            )))
        }
    })
}

struct TableMeta {
    name: String,
    schema: Schema,
    row_count: u64,
    rows_per_page: u64,
}

fn encode_meta(meta: &TableMeta) -> [u8; PAGE_SIZE] {
    let mut blob = Vec::new();
    blob.extend_from_slice(&(meta.name.len() as u16).to_le_bytes());
    blob.extend_from_slice(meta.name.as_bytes());
    blob.extend_from_slice(&meta.row_count.to_le_bytes());
    blob.extend_from_slice(&meta.rows_per_page.to_le_bytes());
    blob.extend_from_slice(&(meta.schema.arity() as u16).to_le_bytes());
    for col in meta.schema.columns() {
        blob.push(ty_code(col.ty));
        blob.extend_from_slice(&(col.name.len() as u16).to_le_bytes());
        blob.extend_from_slice(col.name.as_bytes());
    }
    let mut page = SlottedPage::new();
    page.push(&blob).expect("table meta exceeds one page");
    *page.bytes()
}

fn decode_meta(image: &[u8; PAGE_SIZE]) -> StorageResult<TableMeta> {
    let corrupt = |what: &str| StorageError::ReadFailed(format!("meta page corrupt: {what}"));
    let blob = read_cell(image, 0).ok_or_else(|| corrupt("no meta cell"))?;
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> StorageResult<&[u8]> {
        let end = *pos + n;
        let s = blob.get(*pos..end).ok_or_else(|| corrupt("truncated"))?;
        *pos = end;
        Ok(s)
    };
    let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
    let name = std::str::from_utf8(take(&mut pos, name_len)?)
        .map_err(|_| corrupt("non-utf8 name"))?
        .to_string();
    let row_count = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
    let rows_per_page = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
    if rows_per_page == 0 {
        return Err(corrupt("zero rows per page"));
    }
    let arity = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let ty = ty_from_code(take(&mut pos, 1)?[0])?;
        let len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let cname = std::str::from_utf8(take(&mut pos, len)?)
            .map_err(|_| corrupt("non-utf8 column name"))?
            .to_string();
        cols.push(Column::new(cname, ty));
    }
    Ok(TableMeta {
        name,
        schema: Schema::new(cols),
        row_count,
        rows_per_page,
    })
}

fn data_path(dir: &Path, table: &str) -> std::path::PathBuf {
    dir.join(format!("{table}.qpt"))
}

fn wal_path(dir: &Path, table: &str) -> std::path::PathBuf {
    dir.join(format!("{table}.wal"))
}

/// Rows-per-page stride for rows whose widest encoding is `max_len`.
fn stride_for(max_len: usize) -> StorageResult<u64> {
    // SlottedPage: 4-byte header + 4 bytes of slot directory per cell;
    // cells stop at PAGE_PAYLOAD_END (the checksum trailer is reserved).
    let usable = qp_pager::PAGE_PAYLOAD_END - 4;
    if max_len + 4 > usable {
        return Err(StorageError::SchemaMismatch(format!(
            "row encodes to {max_len} bytes; the page format fits at most {} ",
            usable - 4
        )));
    }
    Ok((usable / (max_len + 4)).max(1) as u64)
}

/// Packs `rows[start..]` into data-page images at the fixed stride,
/// appending `(page_id, image)` pairs to `out`.
fn pack_pages(
    rows: &[Row],
    rows_per_page: u64,
    first_free_slot_page: Option<(PageId, SlottedPage)>,
    next_new_page: PageId,
    out: &mut Vec<(PageId, [u8; PAGE_SIZE])>,
) -> StorageResult<()> {
    let mut current: (PageId, SlottedPage) = match first_free_slot_page {
        Some((id, page)) => (id, page),
        None => (next_new_page, SlottedPage::new()),
    };
    let mut next_page = next_new_page.max(current.0 + 1);
    let mut buf = Vec::new();
    for row in rows {
        if current.1.slot_count() as u64 == rows_per_page {
            out.push((current.0, *current.1.bytes()));
            current = (next_page, SlottedPage::new());
            next_page += 1;
        }
        buf.clear();
        encode_row(row, &mut buf);
        if current.1.push(&buf).is_none() {
            return Err(StorageError::SchemaMismatch(format!(
                "row of {} bytes does not fit the table's page stride ({rows_per_page}/page)",
                buf.len()
            )));
        }
    }
    out.push((current.0, *current.1.bytes()));
    Ok(())
}

/// Writes `table` into `dir` as one committed WAL transaction,
/// replacing any previous file. `crash` injects a simulated power cut
/// for the recovery tests.
pub fn save_table(table: &Table, dir: &Path, crash: Option<CrashPoint>) -> StorageResult<()> {
    std::fs::create_dir_all(dir).map_err(|e| StorageError::ReadFailed(e.to_string()))?;
    let rows: Vec<Row> = table.scan().map(|(_, r)| r).collect();
    let max_len = rows.iter().map(encoded_len).max().unwrap_or(1);
    let rows_per_page = stride_for(max_len)?;
    let data_pages = rows.len().div_ceil(rows_per_page as usize).max(1) as u64;
    let page_count = FIRST_DATA_PAGE + data_pages;

    let mut pages: Vec<(PageId, [u8; PAGE_SIZE])> = Vec::with_capacity(page_count as usize);
    pages.push((0, Pager::header_image(page_count, 0)));
    pages.push((
        META_PAGE,
        encode_meta(&TableMeta {
            name: table.name().to_string(),
            schema: table.schema().clone(),
            row_count: rows.len() as u64,
            rows_per_page,
        }),
    ));
    pack_pages(&rows, rows_per_page, None, FIRST_DATA_PAGE, &mut pages)?;

    let data = data_path(dir, table.name());
    // A fresh save replaces the file wholesale; a stale longer file
    // would otherwise keep tail pages the new image does not cover.
    let _ = std::fs::remove_file(&data);
    let wal = Wal::new(&wal_path(dir, table.name()));
    let mut txn = wal.begin();
    for (id, image) in &pages {
        txn.log_page(*id, image);
    }
    txn.commit(&data, crash).map_err(io_err)
}

/// Appends rows to an existing table file as one committed WAL
/// transaction (the update path the crash matrix exercises). The rows
/// must fit the stride established at save time.
pub fn append_rows(
    dir: &Path,
    table: &str,
    rows: &[Row],
    crash: Option<CrashPoint>,
) -> StorageResult<()> {
    if rows.is_empty() {
        return Ok(());
    }
    let data = data_path(dir, table);
    let wal = Wal::new(&wal_path(dir, table));
    wal.recover(&data).map_err(io_err)?;
    let pager = Pager::open(&data).map_err(io_err)?;
    let mut meta_img = [0u8; PAGE_SIZE];
    pager.read_page(META_PAGE, &mut meta_img).map_err(io_err)?;
    let mut meta = decode_meta(&meta_img)?;

    // Resume packing at the last (possibly partial) data page.
    let last = if meta.row_count == 0 {
        None
    } else {
        let id = FIRST_DATA_PAGE + (meta.row_count - 1) / meta.rows_per_page;
        let mut img = [0u8; PAGE_SIZE];
        pager.read_page(id, &mut img).map_err(io_err)?;
        Some((id, SlottedPage::from_bytes(img)))
    };
    let old_page_count = pager.page_count();
    drop(pager);

    let mut pages: Vec<(PageId, [u8; PAGE_SIZE])> = Vec::new();
    pack_pages(rows, meta.rows_per_page, last, old_page_count, &mut pages)?;
    let new_page_count = pages
        .iter()
        .map(|(id, _)| id + 1)
        .max()
        .unwrap_or(old_page_count)
        .max(old_page_count);
    meta.row_count += rows.len() as u64;
    pages.push((META_PAGE, encode_meta(&meta)));
    pages.push((0, Pager::header_image(new_page_count, 0)));

    let mut txn = wal.begin();
    for (id, image) in &pages {
        txn.log_page(*id, image);
    }
    txn.commit(&data, crash).map_err(io_err)
}

/// Opens one table from `dir`, replaying its WAL first, reading rows
/// through `pool`.
pub fn open_table(dir: &Path, table: &str, pool: &Arc<BufferPool>) -> StorageResult<Table> {
    let data = data_path(dir, table);
    let wal = Wal::new(&wal_path(dir, table));
    let replayed = wal.recover(&data).map_err(io_err)?;
    let pager = Arc::new(Pager::open(&data).map_err(io_err)?);
    if replayed {
        // The file changed underneath any frames a previous open cached.
        pool.invalidate(pager.tag()).map_err(io_err)?;
    }
    let mut meta_img = [0u8; PAGE_SIZE];
    pager.read_page(META_PAGE, &mut meta_img).map_err(io_err)?;
    let meta = decode_meta(&meta_img)?;
    if meta.name != table {
        return Err(StorageError::ReadFailed(format!(
            "{}: file says table {:?}, expected {:?}",
            data.display(),
            meta.name,
            table
        )));
    }
    Ok(Table::paged(
        meta.name,
        meta.schema,
        PagedRows {
            pager,
            pool: Arc::clone(pool),
            first_data_page: FIRST_DATA_PAGE,
            rows_per_page: meta.rows_per_page,
            len: meta.row_count,
        },
    ))
}

/// Saves every table of `db` into `dir` (each its own WAL transaction)
/// plus a `MANIFEST` recording tables and index definitions.
pub fn save_database(db: &Database, dir: &Path) -> StorageResult<()> {
    std::fs::create_dir_all(dir).map_err(|e| StorageError::ReadFailed(e.to_string()))?;
    let mut manifest = String::new();
    for name in db.table_names() {
        save_table(db.table(name)?.as_ref(), dir, None)?;
        manifest.push_str(&format!("table {name}\n"));
    }
    for ix in db.index_metas() {
        let cols: Vec<String> = ix.key_columns.iter().map(|c| c.to_string()).collect();
        manifest.push_str(&format!(
            "index {} {} {} {}\n",
            ix.name,
            ix.table,
            u8::from(ix.unique),
            cols.join(",")
        ));
    }
    std::fs::write(dir.join("MANIFEST"), manifest)
        .map_err(|e| StorageError::ReadFailed(e.to_string()))
}

/// Opens a database directory: replays every table's WAL, wires all
/// tables to one shared buffer pool of `frames` frames, and rebuilds
/// the indexes named in the `MANIFEST` (index trees live in memory;
/// only rows are paged).
pub fn open_database(dir: &Path, frames: usize) -> StorageResult<Database> {
    let manifest = std::fs::read_to_string(dir.join("MANIFEST")).map_err(|e| {
        StorageError::ReadFailed(format!("{}: {e}", dir.join("MANIFEST").display()))
    })?;
    let pool = Arc::new(BufferPool::new(frames));
    let mut db = Database::new();
    db.set_buffer_pool(Arc::clone(&pool));
    for line in manifest.lines() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("table") => {
                let name = parts
                    .next()
                    .ok_or_else(|| StorageError::ReadFailed("MANIFEST: bare table line".into()))?;
                db.add_table(open_table(dir, name, &pool)?)?;
            }
            Some("index") => {
                let bad = || StorageError::ReadFailed(format!("MANIFEST: bad index line {line:?}"));
                let name = parts.next().ok_or_else(bad)?;
                let table = parts.next().ok_or_else(bad)?;
                let unique = parts.next().ok_or_else(bad)? == "1";
                let schema = db.table(table)?.schema().clone();
                let col_names: Vec<&str> = parts
                    .next()
                    .ok_or_else(bad)?
                    .split(',')
                    .map(|c| {
                        c.parse::<usize>()
                            .map(|i| schema.column(i).name.as_str())
                            .map_err(|_| bad())
                    })
                    .collect::<StorageResult<_>>()?;
                db.create_index(name, table, &col_names, unique)?;
            }
            Some(other) => {
                return Err(StorageError::ReadFailed(format!(
                    "MANIFEST: unknown entry {other:?}"
                )))
            }
            None => {}
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qp-paged-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_db(rows: i64) -> Database {
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[
                ("k", ColumnType::Int),
                ("s", ColumnType::Str),
                ("f", ColumnType::Float),
            ]),
            (0..rows).map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("row-{i}-{}", "x".repeat((i % 17) as usize))),
                    Value::Float(i as f64 * 0.25),
                ]
            }),
        )
        .unwrap();
        db.create_index("t_k", "t", &["k"], false).unwrap();
        db
    }

    #[test]
    fn save_open_round_trips_rows_and_indexes() {
        let dir = tmp("roundtrip");
        let db = sample_db(1000);
        save_database(&db, &dir).unwrap();
        let paged = open_database(&dir, 8).unwrap();
        let heap = db.table("t").unwrap();
        let disk = paged.table("t").unwrap();
        assert!(disk.is_paged());
        assert!(disk.page_rows().unwrap() > 1);
        assert_eq!(disk.len(), heap.len());
        assert_eq!(disk.schema(), heap.schema());
        for rid in 0..heap.len() as u64 {
            assert_eq!(disk.row(rid), heap.row(rid), "row {rid}");
        }
        // Index was rebuilt and finds the same row ids.
        let ix = paged.index("t_k").unwrap();
        assert_eq!(ix.tree.len(), 1000);
        // Pool really was exercised.
        let stats = paged.buffer_pool().unwrap().stats();
        assert!(stats.misses > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_extends_the_file_and_survives_reopen() {
        let dir = tmp("append");
        let db = sample_db(100);
        save_database(&db, &dir).unwrap();
        let extra: Vec<Row> = (100..140)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::str(format!("row-{i}-")),
                    Value::Float(i as f64 * 0.25),
                ])
            })
            .collect();
        append_rows(&dir, "t", &extra, None).unwrap();
        let pool = Arc::new(BufferPool::new(8));
        let t = open_table(&dir, "t", &pool).unwrap();
        assert_eq!(t.len(), 140);
        assert_eq!(t.row(139).get(0), &Value::Int(139));
        assert_eq!(t.row(99), db.table("t").unwrap().row(99));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_order_matches_heap_order() {
        let dir = tmp("order");
        let db = sample_db(257);
        save_database(&db, &dir).unwrap();
        let paged = open_database(&dir, 4).unwrap();
        let heap: Vec<Row> = db.table("t").unwrap().scan().map(|(_, r)| r).collect();
        let disk: Vec<Row> = paged.table("t").unwrap().scan().map(|(_, r)| r).collect();
        assert_eq!(heap, disk);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_pool_thrashes_but_stays_correct() {
        let dir = tmp("thrash");
        let db = sample_db(500);
        save_database(&db, &dir).unwrap();
        let paged = open_database(&dir, 1).unwrap();
        let t = paged.table("t").unwrap();
        // Read backwards then forwards: every page access misses.
        for rid in (0..500u64).rev() {
            assert_eq!(t.row(rid).get(0), &Value::Int(rid as i64));
        }
        let s = paged.buffer_pool().unwrap().stats();
        assert!(s.evictions > 0, "capacity 1 must evict: {s:?}");
        assert!(s.hit_rate() < 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
