//! # qp-storage — relational storage substrate
//!
//! This crate provides the storage layer underneath the instrumented query
//! executor used by the `queryprogress` reproduction of *"When Can We Trust
//! Progress Estimators for SQL Queries?"* (Chaudhuri, Kaushik, Ramamurthy;
//! SIGMOD 2005).
//!
//! It deliberately models the parts of a database storage engine that the
//! paper's framework depends on:
//!
//! * typed [`Value`]s with a total order (needed by sort / merge-join /
//!   B+Tree keys),
//! * [`Schema`]s and cheaply-cloneable [`Row`]s,
//! * heap [`Table`]s whose *exact* cardinality is available from the catalog
//!   (Section 5.1 of the paper: "a table scan has lower and upper bounds
//!   equal to the cardinality of the base relation, which is accurately
//!   available from the database catalogs"),
//! * a hand-written [`btree::BTreeIndex`] supporting point and range lookups
//!   (the substrate for `index-seek` and index-nested-loops join, the
//!   operator at the heart of the paper's lower-bound argument), and
//! * a [`Database`] catalog tying tables, indexes and their metadata
//!   together, and
//! * a [`sharedscan::ScanShare`] registry letting concurrent full-table
//!   scans attach to one in-flight producer (N identical scans ≈ 1
//!   physical pass) while each attacher still observes the exact solo
//!   row sequence — the paper's per-session getnext accounting intact.
//!
//! Tables come in two backends behind one interface: in-memory heaps
//! (the default) and **paged** tables whose rows live in slotted page
//! files read through a shared `qp-pager` buffer pool (see [`paged`]).
//! Query results are byte-identical across backends; only the *cost* of
//! a row read differs — which is the paper's Section 7 "uniformity of
//! work per GetNext" caveat, finally measurable.

pub mod btree;
pub mod catalog;
pub mod codec;
pub mod error;
pub mod morsel;
pub mod paged;
pub mod row;
pub mod schema;
pub mod sharedscan;
pub mod table;
pub mod value;

pub use btree::BTreeIndex;
pub use catalog::{Database, IndexMeta};
pub use error::{StorageError, StorageResult};
pub use morsel::{Morsel, MorselDispenser};
pub use qp_pager::{wal_stats, BufferPool, CrashPoint, PoolStats};
pub use row::Row;
pub use schema::{Column, ColumnType, Schema};
pub use sharedscan::{ScanShare, ScanShareStats, SharedCursor};
pub use table::{RowId, Table};
pub use value::Value;
