//! # qp-storage — relational storage substrate
//!
//! This crate provides the storage layer underneath the instrumented query
//! executor used by the `queryprogress` reproduction of *"When Can We Trust
//! Progress Estimators for SQL Queries?"* (Chaudhuri, Kaushik, Ramamurthy;
//! SIGMOD 2005).
//!
//! It deliberately models the parts of a database storage engine that the
//! paper's framework depends on:
//!
//! * typed [`Value`]s with a total order (needed by sort / merge-join /
//!   B+Tree keys),
//! * [`Schema`]s and cheaply-cloneable [`Row`]s,
//! * heap [`Table`]s whose *exact* cardinality is available from the catalog
//!   (Section 5.1 of the paper: "a table scan has lower and upper bounds
//!   equal to the cardinality of the base relation, which is accurately
//!   available from the database catalogs"),
//! * a hand-written [`btree::BTreeIndex`] supporting point and range lookups
//!   (the substrate for `index-seek` and index-nested-loops join, the
//!   operator at the heart of the paper's lower-bound argument), and
//! * a [`Database`] catalog tying tables, indexes and their metadata
//!   together.
//!
//! Everything is in-memory and single-threaded: the paper's *GetNext* model
//! of work treats query execution as a **serial** sequence of `getnext`
//! calls (Section 2.2), so a serial engine reproduces the model exactly.

pub mod btree;
pub mod catalog;
pub mod error;
pub mod morsel;
pub mod row;
pub mod schema;
pub mod table;
pub mod value;

pub use btree::BTreeIndex;
pub use catalog::{Database, IndexMeta};
pub use error::{StorageError, StorageResult};
pub use morsel::{Morsel, MorselDispenser};
pub use row::Row;
pub use schema::{Column, ColumnType, Schema};
pub use table::{RowId, Table};
pub use value::Value;
