//! Golden test: the paper's worst-case guarantees, checked on a fixed
//! seeded TPC-H-style join at every monitor checkpoint.
//!
//! The pipeline is customer ⋈ orders ⋈ lineitem (hash join feeding an
//! index nested-loops join) over `TpchDb::generate` with a pinned config,
//! so the trace is bit-reproducible. At *every* snapshot we check:
//!
//!  * Property 4 — `pmax` never underestimates true progress;
//!  * Theorem 6 — the `safe` estimator's ratio error (the larger of
//!    est/true and true/est) is at most `√(UB/LB)` at that instant.
//!
//! A final golden assertion pins the total work of the query, so any
//! change to the data generator, the executor's GetNext accounting, or
//! the PRNG stream is caught loudly rather than silently shifting every
//! figure in the reproduction.

use qp_datagen::{TpchConfig, TpchDb};
use qp_exec::plan::{JoinType, Plan, PlanBuilder};
use qp_progress::estimators::{Dne, Pmax, ProgressEstimator, Safe};
use qp_progress::monitor::run_with_progress;
use qp_stats::DbStats;

fn fixture() -> TpchDb {
    TpchDb::generate(TpchConfig {
        scale: 0.002,
        z: 1.0,
        seed: 7,
    })
}

/// customer ⋈ orders ⋈ lineitem: hash join (customer is the build side)
/// feeding an index nested-loops join into lineitem.
fn three_way_join(t: &TpchDb) -> Plan {
    // customer columns 0..6, so after the hash join o_orderkey sits at 6.
    PlanBuilder::scan(&t.db, "customer")
        .unwrap()
        .hash_join(
            PlanBuilder::scan(&t.db, "orders").unwrap(),
            vec![0], // c_custkey
            vec![1], // o_custkey
            JoinType::Inner,
            true,
        )
        .unwrap()
        .inl_join(
            &t.db,
            "lineitem",
            "lineitem_orderkey",
            vec![6], // o_orderkey in the joined row
            JoinType::Inner,
            true,
            None,
        )
        .unwrap()
        .build()
}

#[test]
fn pmax_and_safe_guarantees_hold_at_every_checkpoint() {
    let t = fixture();
    let mut plan = three_way_join(&t);
    let stats = DbStats::build(&t.db);
    qp_exec::estimate::annotate(&mut plan, &stats);
    let estimators: Vec<Box<dyn ProgressEstimator>> =
        vec![Box::new(Dne), Box::new(Pmax), Box::new(Safe)];
    let (out, trace) = run_with_progress(&plan, &t.db, Some(&stats), estimators, Some(16)).unwrap();
    assert_eq!(trace.names(), &["dne", "pmax", "safe"]);
    let total = out.total_getnext;
    assert!(total > 0, "query did no work");
    assert!(
        trace.snapshots().len() > 10,
        "too few checkpoints ({}) to be meaningful",
        trace.snapshots().len()
    );

    for (i, snap) in trace.snapshots().iter().enumerate() {
        let prog = snap.curr as f64 / total as f64;
        // The bounds must bracket the final total throughout.
        assert!(
            snap.lb <= total && total <= snap.ub,
            "snapshot {i}: bounds [{}, {}] exclude total {total}",
            snap.lb,
            snap.ub
        );

        // Property 4: pmax never underestimates.
        let pmax = snap.estimates[1];
        assert!(
            pmax + 1e-9 >= prog.min(1.0),
            "snapshot {i}: pmax {pmax} < true progress {prog}"
        );

        // Theorem 6: safe's ratio error is bounded by √(UB/LB).
        if snap.curr > 0 {
            let safe = snap.estimates[2];
            let ratio = (safe / prog).max(prog / safe);
            let bound = (snap.ub as f64 / snap.lb.max(1) as f64).sqrt();
            assert!(
                ratio <= bound + 1e-9,
                "snapshot {i}: safe ratio {ratio} exceeds √(UB/LB) = {bound}"
            );
        }

        // All three estimates stay inside [0, 1].
        for (&name, &e) in trace.names().iter().zip(&snap.estimates) {
            assert!(
                (0.0..=1.0).contains(&e),
                "snapshot {i}: {name} = {e} escapes [0, 1]"
            );
        }
    }

    // At completion the bounds collapse and every estimator reads 100%.
    let last = trace.snapshots().last().unwrap();
    assert_eq!(last.curr, total);
    assert_eq!(last.lb, total);
    assert_eq!(last.ub, total);
    for &e in &last.estimates {
        assert!((e - 1.0).abs() < 1e-6, "final estimate {e} != 1");
    }
}

#[test]
fn total_work_is_pinned() {
    // Golden value: the GetNext total of the three-way join on the seeded
    // fixture. If this moves, the PRNG stream, the data generator, or the
    // executor's work accounting changed — all of which invalidate the
    // reproduction's recorded traces and must be deliberate.
    let t = fixture();
    let plan = three_way_join(&t);
    let (out, _) = qp_exec::run_query(&plan, &t.db, None).unwrap();
    let expected: u64 = include!("golden_total.in");
    assert_eq!(
        out.total_getnext, expected,
        "golden total moved; regenerate crates/core/tests/golden_total.in deliberately"
    );
}
