//! Footnote 2 of the paper: "for a leaf operator that is a range scan on
//! a clustered index, lower bounds can be obtained by looking at
//! appropriate bucket boundaries in histograms." This test runs a range-
//! scan query with and without statistics and verifies that histograms
//! tighten the bounds — and therefore the `safe` estimator — while both
//! configurations stay sound.

use qp_exec::estimate::annotate;
use qp_exec::plan::PlanBuilder;
use qp_progress::bounds::BoundsTracker;
use qp_progress::estimators::Safe;
use qp_progress::metrics::error_stats;
use qp_progress::monitor::run_with_progress;
use qp_stats::DbStats;
use qp_storage::{ColumnType, Database, Schema, Value};
use std::ops::Bound;

fn db() -> Database {
    let mut db = Database::new();
    db.create_table_with_rows(
        "events",
        Schema::of(&[("ts", ColumnType::Int), ("kind", ColumnType::Int)]),
        (0..10_000).map(|i| vec![Value::Int(i), Value::Int(i % 7)]),
    )
    .unwrap();
    db.create_index("events_ts", "events", &["ts"], true)
        .unwrap();
    db
}

fn range_plan(db: &Database) -> qp_exec::Plan {
    // Scan ts in [2000, 6000): 4000 of 10000 rows.
    PlanBuilder::index_range_scan(
        db,
        "events",
        "events_ts",
        Bound::Included(vec![Value::Int(2_000)]),
        Bound::Excluded(vec![Value::Int(6_000)]),
    )
    .unwrap()
    .filter(qp_exec::Expr::col_eq(1, 3i64))
    .build()
}

#[test]
fn histograms_tighten_range_scan_bounds() {
    let db = db();
    let stats = DbStats::build(&db);
    let plan = range_plan(&db);

    let without = BoundsTracker::new(&plan, None);
    let with = BoundsTracker::new(&plan, Some(&stats));

    // Without stats: the range leaf promises nothing a priori.
    assert_eq!(without.node(0).lb, 0);
    assert_eq!(without.node(0).ub, 10_000);
    // With stats: bucket boundaries bracket the true 4000 tightly.
    let nb = with.node(0);
    assert!(nb.lb > 3_000, "stats lb {} too loose", nb.lb);
    assert!(nb.ub < 5_000, "stats ub {} too loose", nb.ub);
    assert!(nb.lb <= 4_000 && nb.ub >= 4_000, "bounds must stay sound");
}

#[test]
fn stats_improve_safe_on_range_scans() {
    let db = db();
    let stats = DbStats::build(&db);
    let mut plan = range_plan(&db);
    annotate(&mut plan, &stats);

    let (_, trace_with) =
        run_with_progress(&plan, &db, Some(&stats), vec![Box::new(Safe)], Some(25)).unwrap();
    let (_, trace_without) =
        run_with_progress(&plan, &db, None, vec![Box::new(Safe)], Some(25)).unwrap();

    let with_err = error_stats(&trace_with, "safe").unwrap();
    let without_err = error_stats(&trace_without, "safe").unwrap();
    assert!(
        with_err.max_abs < without_err.max_abs,
        "stats should tighten safe: {:.4} vs {:.4}",
        with_err.max_abs,
        without_err.max_abs
    );
    // The residual error comes from the filter's unknown selectivity
    // (its ub stays at the child's ub until exhaustion), not the range
    // leaf — the leaf's bounds are within ±10% of truth per the test
    // above.
    assert!(
        with_err.max_abs < 0.30,
        "histogram-backed safe too loose: {:.4}",
        with_err.max_abs
    );
}

#[test]
fn range_scan_bounds_finalize_exactly() {
    let db = db();
    let stats = DbStats::build(&db);
    let plan = range_plan(&db);
    let (out, _) = qp_exec::run_query(&plan, &db, None).unwrap();
    let mut tracker = BoundsTracker::new(&plan, Some(&stats));
    let done = vec![true; plan.len()];
    tracker.recompute(&out.node_counts, &done);
    assert_eq!(tracker.total_lb(), out.total_getnext);
    assert_eq!(tracker.total_ub(), out.total_getnext);
    // Sanity: the range really was 4000 rows, filtered to ~1/7th.
    assert_eq!(out.node_counts[0], 4_000);
}
