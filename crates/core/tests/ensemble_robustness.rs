//! Seeded robustness properties for the ensemble estimator.
//!
//! Three guarantees the ensemble ships with, checked across many random
//! workloads (seeded join queries with varying skew and input order)
//! rather than one hand-picked trace:
//!
//! 1. **Trust is monotone within a run.** Once a fault episode degrades
//!    the stream, later calm checkpoints never un-degrade it
//!    (`Ok → Degraded → Fallback`, never backwards).
//! 2. **Fallback is byte-identical to bare `safe`.** From the first
//!    `fallback` checkpoint on, the ensemble column equals the safe
//!    column bitwise — both against the safe member riding in the same
//!    run and against a separate run of bare `safe` over the same query
//!    and fault plan. The fallback is a delegation, not an imitation.
//! 3. **Property 4 clamping holds at every checkpoint.** The ensemble's
//!    estimate always lies inside the feasible envelope
//!    `[Curr/UB, min(1, Curr/LB)]`, faulted or not — a combination of
//!    sound members must not escape the bounds its members honour.
//!
//! Every property drives full queries through the regime-probed monitor
//! entry point — the same path the service and the `repro -- ensemble`
//! matrix use — with `qp-testkit` fault plans and seeded data.

use qp_exec::estimate::annotate;
use qp_exec::expr::{AggExpr, Expr};
use qp_exec::plan::{JoinType, Plan, PlanBuilder};
use qp_exec::{FaultKind, FaultPlan, RunControls};
use qp_obs::QueryObs;
use qp_progress::estimators::{Ensemble, EnsembleStats, Safe};
use qp_progress::monitor::{run_with_progress_probed, ProgressTrace};
use qp_progress::{ProgressEstimator, RegimeFlags, Trust};
use qp_stats::DbStats;
use qp_storage::{ColumnType, Database, Schema, Value};
use qp_testkit::rng::TestRng;
use qp_testkit::{prop_assert, prop_assert_eq, prop_check};
use std::sync::Arc;
use std::time::Duration;

const DIM_ROWS: u64 = 60;
const FACT_ROWS: u64 = 1_200;

/// Builds a two-table join workload whose foreign-key distribution and
/// input order are decided by `(seed, skew, order)` — the same axes the
/// `repro -- ensemble` matrix sweeps, shrunk to proptest size.
fn seeded_db(seed: u64, skew: u8, order: u8) -> Database {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut fks: Vec<i64> = (0..FACT_ROWS)
        .map(|_| match skew {
            // Uniform probes.
            0 => rng.u64_below(DIM_ROWS) as i64,
            // Mild skew: min of two uniform draws leans low.
            1 => rng.u64_below(DIM_ROWS).min(rng.u64_below(DIM_ROWS)) as i64,
            // Heavy skew: ~80% of probes hit key 0.
            _ => {
                if rng.random_bool(0.8) {
                    0
                } else {
                    rng.u64_below(DIM_ROWS) as i64
                }
            }
        })
        .collect();
    match order {
        0 => rng.shuffle(&mut fks),
        1 => fks.sort_unstable(),                   // skewed keys first
        _ => fks.sort_unstable_by(|a, b| b.cmp(a)), // skewed keys last
    }

    let mut db = Database::new();
    db.create_table_with_rows(
        "dim",
        Schema::of(&[("k", ColumnType::Int), ("w", ColumnType::Int)]),
        (0..DIM_ROWS as i64).map(|k| vec![Value::Int(k), Value::Int(k * 7)]),
    )
    .unwrap();
    db.create_index("dim_pk", "dim", &["k"], true).unwrap();
    db.create_table_with_rows(
        "fact",
        Schema::of(&[("fk", ColumnType::Int), ("v", ColumnType::Int)]),
        fks.into_iter()
            .enumerate()
            .map(|(i, fk)| vec![Value::Int(fk), Value::Int(i as i64)]),
    )
    .unwrap();
    db
}

/// `fact ⋈INL dim_pk`, aggregated and sorted — a multi-operator plan so
/// the clamp property sees bounds from more than one node class.
fn join_plan(db: &Database) -> Plan {
    let fact = PlanBuilder::scan(db, "fact").expect("fact");
    let fk = fact.col("fk").expect("fk");
    let j = fact
        .inl_join(db, "dim", "dim_pk", vec![fk], JoinType::Inner, true, None)
        .expect("dim_pk");
    let (k, v) = (j.col("k").expect("k"), j.col("v").expect("v"));
    j.hash_aggregate(vec![k], vec![(AggExpr::sum(Expr::Col(v)), "s")])
        .sort(vec![(1, false)])
        .build()
}

/// Runs `plan` under the given estimator suite, with an optional seeded
/// fault plan wired to the same FAULT regime probe the service installs.
fn run_suite(
    plan: &Plan,
    db: &Database,
    stats: &DbStats,
    estimators: Vec<Box<dyn ProgressEstimator>>,
    fault_at: Option<u64>,
) -> ProgressTrace {
    let faults =
        fault_at.map(|at| FaultPlan::single(at, FaultKind::Delay(Duration::from_micros(10))));
    let obs = faults
        .as_ref()
        .map(|_| QueryObs::new(0, plan.op_labels(), false, None));
    let controls = RunControls {
        faults,
        obs: obs.clone(),
        ..RunControls::default()
    };
    let probe: Option<Box<dyn Fn() -> u8 + Send>> = obs.map(|obs| {
        Box::new(move || {
            if obs.snapshot().iter().any(|n| n.faults > 0) {
                RegimeFlags::FAULT
            } else {
                0
            }
        }) as Box<dyn Fn() -> u8 + Send>
    });
    let (_, trace) =
        run_with_progress_probed(plan, db, Some(stats), estimators, Some(8), controls, probe)
            .expect("property query runs to completion");
    trace
}

/// The suite under test: the ensemble (fed by `shared`) next to its
/// `safe` member, so every snapshot carries both columns.
fn ensemble_suite(shared: &Arc<EnsembleStats>) -> Vec<Box<dyn ProgressEstimator>> {
    vec![
        Box::new(Ensemble::with_stats(Arc::clone(shared))),
        Box::new(Safe),
    ]
}

prop_check! {
    cases = 24,
    /// Guarantee 1: trust never moves backwards, and a fault episode
    /// actually lands (the monotonicity claim must not pass vacuously).
    fn trust_is_monotone_within_a_fault_episode(
        seed in 0u64..1_000_000,
        skew in 0u8..3,
        order in 0u8..3,
        fault_at in 5u64..1_000,
    ) {
        let db = seeded_db(seed, skew, order);
        let stats = DbStats::build(&db);
        let mut plan = join_plan(&db);
        annotate(&mut plan, &stats);

        let shared = Arc::new(EnsembleStats::new());
        // A clean run first: its trace seeds the online error stats, and
        // its trust must be monotone too (spread can degrade it, nothing
        // may un-degrade it).
        let clean = run_suite(&plan, &db, &stats, ensemble_suite(&shared), None);
        shared.record_trace(&clean);
        let faulted = run_suite(&plan, &db, &stats, ensemble_suite(&shared), Some(fault_at));

        for (label, trace) in [("clean", &clean), ("faulted", &faulted)] {
            let trusts: Vec<Trust> = trace.snapshots().iter().map(|s| s.trust).collect();
            for w in trusts.windows(2) {
                prop_assert!(
                    w[0] <= w[1],
                    "{label} run: trust regressed {} -> {}", w[0], w[1]
                );
            }
        }
        prop_assert!(
            clean.snapshots().iter().all(|s| s.trust != Trust::Fallback),
            "clean run must never reach fallback"
        );
        prop_assert_eq!(
            faulted.snapshots().last().map(|s| s.trust),
            Some(Trust::Fallback),
            "seeded fault at getnext {} never tripped the probe", fault_at
        );
    }

    /// Guarantee 2: from fallback onset the ensemble column is bitwise
    /// equal to safe — both the in-run member and a separate bare run.
    fn fallback_is_byte_identical_to_bare_safe(
        seed in 0u64..1_000_000,
        skew in 0u8..3,
        order in 0u8..3,
        fault_at in 5u64..1_000,
    ) {
        let db = seeded_db(seed, skew, order);
        let stats = DbStats::build(&db);
        let mut plan = join_plan(&db);
        annotate(&mut plan, &stats);

        let shared = Arc::new(EnsembleStats::new());
        let trace = run_suite(&plan, &db, &stats, ensemble_suite(&shared), Some(fault_at));
        let bare = run_suite(&plan, &db, &stats, vec![Box::new(Safe)], Some(fault_at));

        let snaps = trace.snapshots();
        let onset = snaps.iter().position(|s| s.trust == Trust::Fallback);
        let Some(onset) = onset else {
            return Err(format!("fault at getnext {fault_at} never caused fallback"));
        };
        // Identical plan, stride, and (delay-only) fault plan ⇒ the bare
        // run checkpoints at the same counter states.
        prop_assert_eq!(snaps.len(), bare.snapshots().len());
        for (i, (snap, bare_snap)) in snaps.iter().zip(bare.snapshots()).enumerate().skip(onset) {
            prop_assert_eq!(snap.curr, bare_snap.curr, "checkpoint {} diverged", i);
            let (ens, safe) = (snap.estimates[0], snap.estimates[1]);
            prop_assert!(
                ens.to_bits() == safe.to_bits(),
                "checkpoint {}: ensemble {} != in-run safe {}", i, ens, safe
            );
            prop_assert!(
                ens.to_bits() == bare_snap.estimates[0].to_bits(),
                "checkpoint {}: ensemble {} != bare safe {}", i, ens, bare_snap.estimates[0]
            );
        }
    }

    /// Guarantee 3: every checkpoint's ensemble estimate sits inside the
    /// Property 4 feasible envelope `[Curr/UB, min(1, Curr/LB)]`.
    fn ensemble_respects_property4_envelope_at_every_checkpoint(
        seed in 0u64..1_000_000,
        skew in 0u8..3,
        order in 0u8..3,
        fault_at in 5u64..1_000,
    ) {
        let db = seeded_db(seed, skew, order);
        let stats = DbStats::build(&db);
        let mut plan = join_plan(&db);
        annotate(&mut plan, &stats);

        let shared = Arc::new(EnsembleStats::new());
        let clean = run_suite(&plan, &db, &stats, ensemble_suite(&shared), None);
        shared.record_trace(&clean);
        let faulted = run_suite(&plan, &db, &stats, ensemble_suite(&shared), Some(fault_at));

        for (label, trace) in [("clean", &clean), ("faulted", &faulted)] {
            for (i, snap) in trace.snapshots().iter().enumerate() {
                let lo = snap.curr as f64 / snap.ub.max(1) as f64;
                let hi = (snap.curr as f64 / snap.lb.max(1) as f64).min(1.0);
                let ens = snap.estimates[0];
                prop_assert!(
                    ens >= lo.min(hi) - 1e-9 && ens <= hi + 1e-9,
                    "{label} checkpoint {}: ensemble {} outside [{}, {}] (curr {}, lb {}, ub {})",
                    i, ens, lo.min(hi), hi, snap.curr, snap.lb, snap.ub
                );
            }
        }
    }
}
