//! Edge-case coverage for [`qp_progress::clamp_snapshot`], the single
//! definition of "valid progress envelope" shared by the monitor and
//! the cross-thread [`ProgressCell`].
//!
//! A fault mid-query can hand the clamp almost anything: NaN or infinite
//! estimates, bounds that contradict each other (`LB > UB`), a `Curr`
//! past the upper bound, or a degenerate zero-total query. The contract
//! exercised here: after one pass the snapshot is always a valid
//! envelope (`LB ≤ UB`, `Curr ≤ UB`, every estimate finite in `[0, 1]`),
//! the pass reports whether it changed anything, and a second pass is a
//! no-op — clamping is idempotent, so "was clamped" is a property of the
//! input, not of how often it was inspected.

use qp_progress::{clamp_snapshot, Health, ProgressCell};

/// Runs the clamp and returns `(changed, lb, ub, estimates)`.
fn clamp(curr: u64, lb: u64, ub: u64, estimates: &[f64]) -> (bool, u64, u64, Vec<f64>) {
    let (mut lb, mut ub) = (lb, ub);
    let mut est = estimates.to_vec();
    let changed = clamp_snapshot(curr, &mut lb, &mut ub, &mut est);
    (changed, lb, ub, est)
}

fn assert_valid(curr: u64, lb: u64, ub: u64, estimates: &[f64]) {
    assert!(lb <= ub, "LB {lb} > UB {ub}");
    assert!(curr <= ub, "Curr {curr} > UB {ub}");
    for e in estimates {
        assert!(e.is_finite() && (0.0..=1.0).contains(e), "estimate {e}");
    }
}

#[test]
fn valid_snapshots_pass_through_untouched() {
    let (changed, lb, ub, est) = clamp(50, 80, 200, &[0.0, 0.25, 1.0]);
    assert!(!changed, "a valid snapshot must not be flagged");
    assert_eq!((lb, ub), (80, 200));
    assert_eq!(est, vec![0.0, 0.25, 1.0]);
}

#[test]
fn nan_estimates_become_the_conservative_ratio() {
    // UB is finite and nonzero, so the fallback is Curr/UB.
    let (changed, lb, ub, est) = clamp(50, 80, 200, &[f64::NAN, 0.5]);
    assert!(changed);
    assert_eq!(est[0], 50.0 / 200.0);
    assert_eq!(est[1], 0.5, "finite estimates ride along unchanged");
    assert_valid(50, lb, ub, &est);
}

#[test]
fn infinities_are_clamped_like_nan() {
    for bad in [f64::INFINITY, f64::NEG_INFINITY] {
        let (changed, lb, ub, est) = clamp(10, 20, 40, &[bad]);
        assert!(changed, "{bad} must be flagged");
        assert_eq!(est[0], 0.25);
        assert_valid(10, lb, ub, &est);
    }
}

#[test]
fn unbounded_ub_falls_back_to_lb_ratio() {
    // UB = u64::MAX means "unknown"; the fallback grounds itself in LB.
    let (changed, _, _, est) = clamp(30, 60, u64::MAX, &[f64::NAN]);
    assert!(changed);
    assert_eq!(est[0], 0.5);
}

#[test]
fn inverted_bounds_trust_the_lower_bound() {
    // LB counts rows actually seen, so a contradiction pulls UB up.
    let (changed, lb, ub, est) = clamp(10, 100, 40, &[0.5]);
    assert!(changed);
    assert_eq!((lb, ub), (100, 100));
    assert_valid(10, lb, ub, &est);
}

#[test]
fn curr_past_the_upper_bound_extends_it() {
    let (changed, lb, ub, _) = clamp(500, 100, 400, &[0.5]);
    assert!(changed);
    assert_eq!(ub, 500);
    assert_valid(500, lb, ub, &[0.5]);
}

#[test]
fn zero_total_queries_clamp_to_zero_progress() {
    // A query whose plan promises no work at all: every ratio is 0/0.
    let (changed, lb, ub, est) = clamp(0, 0, 0, &[f64::NAN, f64::INFINITY]);
    assert!(changed);
    assert_eq!((lb, ub), (0, 0));
    assert_eq!(est, vec![0.0, 0.0], "no grounded ratio exists; report 0");
}

#[test]
fn out_of_range_estimates_are_clamped_not_replaced() {
    let (changed, _, _, est) = clamp(50, 80, 200, &[1.5, -0.25]);
    assert!(changed);
    assert_eq!(est, vec![1.0, 0.0]);
}

#[test]
fn clamping_is_idempotent() {
    // Throw every pathology at once; the second pass must be a no-op.
    let cases: &[(u64, u64, u64, Vec<f64>)] = &[
        (10, 100, 40, vec![f64::NAN, 2.0]),
        (500, 100, 400, vec![f64::NEG_INFINITY]),
        (0, 0, 0, vec![f64::NAN]),
        (30, 60, u64::MAX, vec![-1.0, f64::INFINITY]),
    ];
    for (curr, lb0, ub0, est0) in cases {
        let (_, mut lb, mut ub, mut est) = clamp(*curr, *lb0, *ub0, est0);
        assert_valid(*curr, lb, ub, &est);
        let again = clamp_snapshot(*curr, &mut lb, &mut ub, &mut est);
        assert!(!again, "second clamp of {curr}/{lb0}/{ub0} changed values");
    }
}

#[test]
fn publishing_a_corrupt_snapshot_degrades_the_cell() {
    let cell = ProgressCell::new(vec!["dne", "pmax"]);
    cell.publish(10, 20, 100, &[0.1, 0.2]);
    assert_eq!(cell.health(), Health::Ok);

    // A corrupted snapshot (inverted bounds, NaN) reaches pollers only
    // in clamped form, and the cell owns up to it via health.
    cell.publish(30, 90, 50, &[f64::NAN, 0.4]);
    assert_eq!(cell.health(), Health::Degraded);
    let r = cell.read().expect("cell has been written");
    assert_eq!((r.curr, r.lb, r.ub), (30, 90, 90));
    assert!(r.estimates.iter().all(|e| e.is_finite()));

    // Health is monotone: a later clean snapshot does not un-degrade.
    cell.publish(40, 90, 120, &[0.3, 0.5]);
    assert_eq!(cell.health(), Health::Degraded);
}
