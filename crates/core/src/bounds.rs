//! Run-time cardinality bounds (Section 5.1).
//!
//! For every plan node the tracker maintains a hard interval
//! `[lb, ub]` on the number of getnext calls that node will have issued by
//! the end of the execution (= rows it will produce, under the model). The
//! estimators use the *sums* `LB = Σ lb` and `UB = Σ ub`:
//!
//! * `pmax = Curr / LB` (Definition 3) — since `LB ≤ total(Q)`, pmax never
//!   underestimates progress (Property 4);
//! * `safe = Curr / √(LB·UB)` (Definition 5) — worst-case-optimal ratio
//!   error `√(UB/LB)` (Theorem 6).
//!
//! Rules (refined as execution proceeds, per the paper):
//!
//! * scan leaf: `lb = ub = |R|` — exact from the catalog;
//! * clustered/index range scan: histogram bucket boundaries give hard
//!   `[lb, ub]` (footnote 2), refined by rows seen;
//! * σ, π, sort, γ (linear operators): `ub ≤ child.ub`; `lb` = rows
//!   produced so far, or the child's bound for row-preserving operators;
//! * **linear joins** (output ≤ larger input, e.g. key–FK): `ub =
//!   max(children ub)`;
//! * non-linear joins: `ub = product of children ub` (saturating);
//! * any node whose parent chain has exhausted, or that has itself
//!   exhausted, is final: `lb = ub = produced`.
//!
//! `Limit` needs care: descendants of a limit may stop early, so their
//! a-priori lower bounds are **not** valid for "rows produced during this
//! execution"; for such nodes only `produced` is a safe lower bound.

use qp_exec::plan::{JoinType, Plan, PlanNode};
use qp_exec::{Counters, NodeId};
use qp_stats::DbStats;
use std::ops::Bound;

/// Per-node bound pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeBounds {
    pub lb: u64,
    pub ub: u64,
}

/// Static per-node facts the rules need (extracted from the plan once).
#[derive(Debug, Clone)]
enum NodeRule {
    ScanExact {
        card: u64,
    },
    RangeScan {
        hist_lb: u64,
        hist_ub: u64,
    },
    /// σ: output ≤ child output.
    Filter,
    /// Row-preserving unary operators (π, sort).
    RowPreserving,
    Limit {
        n: u64,
    },
    Join {
        join_type: JoinType,
        linear: bool,
        /// For INLJ: the inner table's cardinality (the "virtual" second
        /// input); `None` for two-child joins.
        inner_card: Option<u64>,
        /// INLJ over a unique index: at most one match per outer row.
        inner_unique: bool,
    },
    Aggregate {
        scalar: bool,
    },
    /// Exchange: transparent plumbing — its wrapper never counts a
    /// getnext call, so it contributes `[0, 0]` and the sums `LB`/`UB`
    /// are byte-identical to the serial plan's.
    Exchange,
}

/// Tracks `[lb, ub]` per node and the totals `LB`, `UB`.
#[derive(Debug)]
pub struct BoundsTracker {
    rules: Vec<NodeRule>,
    children: Vec<Vec<NodeId>>,
    parent: Vec<Option<NodeId>>,
    /// Nodes with a `Limit` strictly above them.
    under_limit: Vec<bool>,
    bounds: Vec<NodeBounds>,
}

impl BoundsTracker {
    /// Builds the tracker from a plan, optionally using statistics to
    /// tighten range-scan bounds via histogram bucket boundaries.
    pub fn new(plan: &Plan, stats: Option<&DbStats>) -> BoundsTracker {
        let n = plan.len();
        let mut rules = Vec::with_capacity(n);
        let mut children = Vec::with_capacity(n);
        let mut parent = vec![None; n];
        // An Exchange is transparent to the bounds rules: consumers read
        // their grandchild's bounds through it, and the finalization /
        // limit walks follow the serial tree shape. Resolve every child
        // edge through any interposed exchanges.
        let resolve = |mut c: NodeId| -> NodeId {
            while let PlanNode::Exchange { .. } = &plan.node(c).kind {
                c = plan.node(c).children[0];
            }
            c
        };
        for (id, node) in plan.nodes().iter().enumerate() {
            if matches!(node.kind, PlanNode::Exchange { .. }) {
                // Spliced out: no edges, so it is never an ancestor in the
                // finalization walk and never visited by the limit DFS.
                children.push(Vec::new());
                rules.push(NodeRule::Exchange);
                continue;
            }
            let kids: Vec<NodeId> = node.children.iter().map(|&c| resolve(c)).collect();
            for &c in &kids {
                parent[c] = Some(id);
            }
            children.push(kids);
            rules.push(match &node.kind {
                PlanNode::SeqScan { card, .. } => NodeRule::ScanExact { card: *card },
                PlanNode::IndexRangeScan {
                    table,
                    lo,
                    hi,
                    table_card,
                    key_columns,
                    ..
                } => {
                    let (hist_lb, hist_ub) =
                        range_bounds_from_stats(stats, table, key_columns, lo, hi)
                            .unwrap_or((0, *table_card));
                    NodeRule::RangeScan { hist_lb, hist_ub }
                }
                PlanNode::Filter { .. } => NodeRule::Filter,
                PlanNode::Project { .. } | PlanNode::Sort { .. } => NodeRule::RowPreserving,
                PlanNode::Limit { n } => NodeRule::Limit { n: *n },
                PlanNode::HashJoin {
                    join_type, linear, ..
                }
                | PlanNode::MergeJoin {
                    join_type, linear, ..
                }
                | PlanNode::NestedLoopsJoin {
                    join_type, linear, ..
                } => NodeRule::Join {
                    join_type: *join_type,
                    linear: *linear,
                    inner_card: None,
                    inner_unique: false,
                },
                PlanNode::IndexNestedLoopsJoin {
                    join_type,
                    linear,
                    inner_card,
                    inner_unique,
                    ..
                } => NodeRule::Join {
                    join_type: *join_type,
                    linear: *linear,
                    inner_card: Some(*inner_card),
                    inner_unique: *inner_unique,
                },
                PlanNode::HashAggregate { group_by, .. }
                | PlanNode::StreamAggregate { group_by, .. } => NodeRule::Aggregate {
                    scalar: group_by.is_empty(),
                },
                PlanNode::Exchange { .. } => unreachable!("spliced out above"),
            });
        }
        // Mark nodes that can stop early because of a Limit above them.
        // Early termination does NOT propagate through blocking inputs: a
        // sort / hash aggregate consumes its entire input at open no
        // matter how few rows its parent pulls, and likewise a hash
        // join's build side and a nested-loops join's materialized inner
        // side run to completion. Only streaming paths under a Limit can
        // be cut short.
        let mut under_limit = vec![false; n];
        let root = (0..n).find(|&i| parent[i].is_none()).unwrap_or(0);
        let mut stack = vec![(root, false)];
        while let Some((id, flag)) = stack.pop() {
            under_limit[id] = flag;
            let kids = &children[id];
            match &plan.node(id).kind {
                PlanNode::Limit { .. } => {
                    for &c in kids {
                        stack.push((c, true));
                    }
                }
                PlanNode::Sort { .. } | PlanNode::HashAggregate { .. } => {
                    for &c in kids {
                        stack.push((c, false));
                    }
                }
                PlanNode::HashJoin { .. } => {
                    // child 0 = build (blocking), child 1 = probe (streams).
                    stack.push((kids[0], false));
                    stack.push((kids[1], flag));
                }
                PlanNode::NestedLoopsJoin { .. } => {
                    // child 1 = inner (materialized at open).
                    stack.push((kids[0], flag));
                    stack.push((kids[1], false));
                }
                _ => {
                    for &c in kids {
                        stack.push((c, flag));
                    }
                }
            }
        }
        let mut tracker = BoundsTracker {
            rules,
            children,
            parent,
            under_limit,
            bounds: vec![
                NodeBounds {
                    lb: 0,
                    ub: u64::MAX
                };
                n
            ],
        };
        // Initial bounds with zero production.
        let zeros = vec![0u64; n];
        let not_done = vec![false; n];
        tracker.recompute(&zeros, &not_done);
        tracker
    }

    /// Convenience: recompute from executor counters.
    pub fn update_from_counters(&mut self, counters: &Counters) {
        let produced: Vec<u64> = (0..self.rules.len()).map(|i| counters.node(i)).collect();
        let exhausted: Vec<bool> = (0..self.rules.len())
            .map(|i| counters.is_exhausted(i))
            .collect();
        self.recompute(&produced, &exhausted);
    }

    /// Recomputes all bounds bottom-up from production counts and
    /// exhaustion flags.
    pub fn recompute(&mut self, produced: &[u64], exhausted: &[bool]) {
        let n = self.rules.len();
        // A node is *final* when it or any ancestor has exhausted — it
        // will never be pulled again.
        let mut finalized = vec![false; n];
        #[allow(clippy::needless_range_loop)] // id is also the walk start
        for id in 0..n {
            let mut cur = Some(id);
            while let Some(c) = cur {
                if exhausted[c] {
                    finalized[id] = true;
                    break;
                }
                cur = self.parent[c];
            }
        }
        // Node ids are topological (children before parents), so a single
        // forward pass suffices.
        for id in 0..n {
            self.bounds[id] = if finalized[id] {
                NodeBounds {
                    lb: produced[id],
                    ub: produced[id],
                }
            } else {
                self.node_bounds(id, produced)
            };
        }
    }

    fn child_bounds(&self, id: NodeId, idx: usize) -> NodeBounds {
        self.bounds[self.children[id][idx]]
    }

    fn node_bounds(&self, id: NodeId, produced: &[u64]) -> NodeBounds {
        let p = produced[id];
        let raw = match &self.rules[id] {
            NodeRule::ScanExact { card } => NodeBounds {
                lb: *card,
                ub: *card,
            },
            NodeRule::RangeScan { hist_lb, hist_ub } => NodeBounds {
                lb: (*hist_lb).max(p),
                ub: (*hist_ub).max(p),
            },
            NodeRule::Filter => NodeBounds {
                lb: p,
                ub: self.child_bounds(id, 0).ub,
            },
            NodeRule::RowPreserving => {
                let c = self.child_bounds(id, 0);
                NodeBounds {
                    lb: c.lb.max(p),
                    ub: c.ub,
                }
            }
            NodeRule::Limit { n } => {
                let c = self.child_bounds(id, 0);
                NodeBounds {
                    lb: c.lb.min(*n).max(p),
                    ub: c.ub.min(*n),
                }
            }
            NodeRule::Join {
                join_type,
                linear,
                inner_card,
                inner_unique,
            } => {
                let outer = self.child_bounds(id, 0);
                let inner_ub = match inner_card {
                    Some(card) => *card,
                    None => self.child_bounds(id, 1).ub,
                };
                let ub = match join_type {
                    JoinType::LeftSemi | JoinType::LeftAnti => outer.ub,
                    JoinType::Inner | JoinType::LeftOuter => {
                        let matched = if *inner_unique {
                            outer.ub
                        } else if *linear {
                            outer.ub.max(inner_ub)
                        } else {
                            outer.ub.saturating_mul(inner_ub)
                        };
                        if matches!(join_type, JoinType::LeftOuter) {
                            matched.saturating_add(outer.ub)
                        } else {
                            matched
                        }
                    }
                };
                let lb = match join_type {
                    // Every preserved-side row appears at least once.
                    JoinType::LeftOuter => outer.lb.max(p),
                    _ => p,
                };
                NodeBounds { lb, ub: ub.max(p) }
            }
            NodeRule::Aggregate { scalar } => {
                if *scalar {
                    NodeBounds { lb: 1, ub: 1 }
                } else {
                    let c = self.child_bounds(id, 0);
                    NodeBounds {
                        lb: p.max(u64::from(c.lb > 0)),
                        ub: c.ub.max(p),
                    }
                }
            }
            // Transparent: never produces a counted row.
            NodeRule::Exchange => NodeBounds { lb: 0, ub: 0 },
        };
        // Under a Limit, only rows already produced are guaranteed.
        if self.under_limit[id] {
            NodeBounds { lb: p, ub: raw.ub }
        } else {
            raw
        }
    }

    /// Per-node bounds.
    pub fn node(&self, id: NodeId) -> NodeBounds {
        self.bounds[id]
    }

    /// All per-node bounds (index = node id).
    pub fn all(&self) -> &[NodeBounds] {
        &self.bounds
    }

    /// `LB` — the lower bound on `total(Q)` (Σ per-node lower bounds),
    /// never less than 1 so quotients are defined.
    pub fn total_lb(&self) -> u64 {
        self.bounds.iter().map(|b| b.lb).sum::<u64>().max(1)
    }

    /// `UB` — the upper bound on `total(Q)` (saturating sum).
    pub fn total_ub(&self) -> u64 {
        let mut acc: u64 = 0;
        for b in &self.bounds {
            acc = acc.saturating_add(b.ub);
        }
        acc.max(self.total_lb())
    }

    /// Validates the invariant `lb ≤ ub` on every node (used in tests).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        for (i, b) in self.bounds.iter().enumerate() {
            assert!(b.lb <= b.ub, "node {i}: lb {} > ub {}", b.lb, b.ub);
        }
    }

    /// Checks that bounds bracket the known-final counts — call after a
    /// completed run (used in tests and as a runtime self-check).
    #[doc(hidden)]
    pub fn check_final(&self, final_counts: &[u64]) {
        for (i, b) in self.bounds.iter().enumerate() {
            assert!(
                b.lb <= final_counts[i] && final_counts[i] <= b.ub,
                "node {i}: final count {} outside [{}, {}]",
                final_counts[i],
                b.lb,
                b.ub
            );
        }
    }
}

/// Histogram-based `[lb, ub]` for a range scan (footnote 2 of the paper).
fn range_bounds_from_stats(
    stats: Option<&DbStats>,
    table: &str,
    key_columns: &[usize],
    lo: &Bound<Vec<qp_storage::Value>>,
    hi: &Bound<Vec<qp_storage::Value>>,
) -> Option<(u64, u64)> {
    let ts = stats?.table(table)?;
    let &col = key_columns.first()?;
    let hist = &ts.column(col).histogram;
    let lo1 = first_bound(lo);
    let hi1 = first_bound(hi);
    // With a composite key, the first-column range over-covers the true
    // range: its count upper-bounds the result, but rows matching on the
    // first column may still fall outside the full composite range — so
    // the histogram lower bound is only safe for single-column keys.
    let lb = if key_columns.len() == 1 {
        hist.lower_bound_range(lo1.as_ref(), hi1.as_ref())
    } else {
        0
    };
    let ub = hist.upper_bound_range(lo1.as_ref(), hi1.as_ref());
    Some((lb, ub))
}

fn first_bound(b: &Bound<Vec<qp_storage::Value>>) -> Bound<qp_storage::Value> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(k) => k
            .first()
            .cloned()
            .map(Bound::Included)
            .unwrap_or(Bound::Unbounded),
        Bound::Excluded(k) => k
            .first()
            .cloned()
            .map(Bound::Excluded)
            .unwrap_or(Bound::Unbounded),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_exec::plan::{JoinType, PlanBuilder};
    use qp_exec::Expr;
    use qp_storage::{ColumnType, Database, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("a", ColumnType::Int)]),
            (0..100).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        db.create_table_with_rows(
            "u",
            Schema::of(&[("x", ColumnType::Int)]),
            (0..50).map(|i| vec![Value::Int(i % 10)]),
        )
        .unwrap();
        db.create_index("u_x", "u", &["x"], false).unwrap();
        db
    }

    #[test]
    fn scan_bounds_are_exact_from_catalog() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t").unwrap().build();
        let tracker = BoundsTracker::new(&plan, None);
        assert_eq!(tracker.node(0), NodeBounds { lb: 100, ub: 100 });
        assert_eq!(tracker.total_lb(), 100);
        assert_eq!(tracker.total_ub(), 100);
    }

    #[test]
    fn filter_bounds_refine_with_production() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .filter(Expr::col_eq(0, 1i64))
            .build();
        let mut tracker = BoundsTracker::new(&plan, None);
        // Before execution: filter in [0, 100].
        assert_eq!(tracker.node(1), NodeBounds { lb: 0, ub: 100 });
        // Mid-execution: 40 scanned, 7 passed.
        tracker.recompute(&[40, 7], &[false, false]);
        assert_eq!(tracker.node(1), NodeBounds { lb: 7, ub: 100 });
        // Finished: exact.
        tracker.recompute(&[100, 12], &[true, true]);
        assert_eq!(tracker.node(1), NodeBounds { lb: 12, ub: 12 });
        tracker.check_invariants();
    }

    #[test]
    fn linear_join_ub_is_max_of_children() {
        let db = db();
        let probe = PlanBuilder::scan(&db, "u").unwrap();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .hash_join(probe, vec![0], vec![0], JoinType::Inner, true)
            .unwrap()
            .build();
        let tracker = BoundsTracker::new(&plan, None);
        // Join ub = max(100, 50) = 100; total UB = 100 + 50 + 100.
        assert_eq!(tracker.node(2).ub, 100);
        assert_eq!(tracker.total_ub(), 250);
        assert_eq!(tracker.total_lb(), 150);
    }

    #[test]
    fn nonlinear_inl_join_ub_is_product() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .inl_join(&db, "u", "u_x", vec![0], JoinType::Inner, false, None)
            .unwrap()
            .build();
        let tracker = BoundsTracker::new(&plan, None);
        assert_eq!(tracker.node(1).ub, 100 * 50);
    }

    #[test]
    fn semi_join_ub_is_outer() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .inl_join(&db, "u", "u_x", vec![0], JoinType::LeftSemi, false, None)
            .unwrap()
            .build();
        let tracker = BoundsTracker::new(&plan, None);
        assert_eq!(tracker.node(1).ub, 100);
    }

    #[test]
    fn scalar_aggregate_is_exactly_one() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .hash_aggregate(vec![], vec![])
            .build();
        let tracker = BoundsTracker::new(&plan, None);
        assert_eq!(tracker.node(1), NodeBounds { lb: 1, ub: 1 });
    }

    #[test]
    fn limit_caps_descendant_lower_bounds() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t").unwrap().limit(5).build();
        let mut tracker = BoundsTracker::new(&plan, None);
        // The scan under the limit cannot promise its full 100 rows.
        assert_eq!(tracker.node(0).lb, 0);
        assert_eq!(tracker.node(0).ub, 100);
        assert_eq!(tracker.node(1), NodeBounds { lb: 0, ub: 5 });
        // After the limit exhausts, everything freezes at produced.
        tracker.recompute(&[5, 5], &[false, true]);
        assert_eq!(tracker.node(0), NodeBounds { lb: 5, ub: 5 });
        assert_eq!(tracker.node(1), NodeBounds { lb: 5, ub: 5 });
    }

    #[test]
    fn exhausted_parent_finalizes_subtree() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .filter(Expr::col_eq(0, 1i64))
            .build();
        let mut tracker = BoundsTracker::new(&plan, None);
        // Filter exhausted implies the scan is final even if its own
        // exhausted flag lagged.
        tracker.recompute(&[100, 1], &[false, true]);
        assert_eq!(tracker.node(0), NodeBounds { lb: 100, ub: 100 });
        assert_eq!(tracker.node(1), NodeBounds { lb: 1, ub: 1 });
    }

    #[test]
    fn totals_bracket_true_total() {
        // Run a real query and verify LB ≤ total ≤ UB at every refinement.
        let db = db();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .filter(Expr::cmp(
                qp_exec::CmpOp::Lt,
                Expr::Col(0),
                Expr::Lit(Value::Int(10)),
            ))
            .inl_join(&db, "u", "u_x", vec![0], JoinType::Inner, false, None)
            .unwrap()
            .build();
        let (out, _) = qp_exec::run_query(&plan, &db, None).unwrap();
        let mut tracker = BoundsTracker::new(&plan, None);
        assert!(tracker.total_lb() <= out.total_getnext);
        assert!(tracker.total_ub() >= out.total_getnext);
        // Final state.
        let done = vec![true; plan.len()];
        tracker.recompute(&out.node_counts, &done);
        assert_eq!(tracker.total_lb(), out.total_getnext);
        assert_eq!(tracker.total_ub(), out.total_getnext);
        tracker.check_final(&out.node_counts);
    }
}
