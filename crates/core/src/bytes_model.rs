//! The bytes-processed model of work (Luo, Naughton, Ellmann, Watzke —
//! the paper's reference \[13\]).
//!
//! The paper presents all results under the *getnext* model but notes
//! (Section 2.2) that \[13\]'s model — work = bytes processed across the
//! query tree — "is very similar and the results in this paper would be
//! equally applicable to the other model". This module makes that claim
//! checkable: it re-weights every per-node quantity by the node's row
//! width, giving byte-denominated `Curr`, `LB` and `UB`, and byte-model
//! variants of `pmax` and `safe` with the *same* formal guarantees
//! (Property 4 and Theorem 6 are invariant under positive per-node
//! weights, since `LB_bytes = Σ wᵢ·lbᵢ ≤ Σ wᵢ·totalᵢ = total_bytes`).
//!
//! Row widths are derived statically from each node's output schema
//! (fixed-width scalars at their machine size, strings at a nominal
//! average) — matching \[13\], which uses schema-declared widths rather
//! than measuring each tuple.

use crate::estimators::{EstimatorContext, ProgressEstimator};
use qp_exec::plan::Plan;
use qp_storage::ColumnType;

/// Nominal width (bytes) assumed for string columns, in lieu of measuring
/// every tuple (matches the declared-width convention of \[13\]).
pub const NOMINAL_STRING_WIDTH: f64 = 24.0;

/// Per-node output row widths in bytes.
#[derive(Debug, Clone)]
pub struct RowWidths(Vec<f64>);

impl RowWidths {
    /// Computes widths from each plan node's output schema.
    pub fn from_plan(plan: &Plan) -> RowWidths {
        let widths = plan
            .nodes()
            .iter()
            .map(|n| {
                n.schema
                    .columns()
                    .iter()
                    .map(|c| match c.ty {
                        ColumnType::Bool => 1.0,
                        ColumnType::Int | ColumnType::Float => 8.0,
                        ColumnType::Date => 4.0,
                        ColumnType::Str => NOMINAL_STRING_WIDTH,
                    })
                    .sum::<f64>()
                    .max(1.0)
            })
            .collect();
        RowWidths(widths)
    }

    /// Width of node `i`'s rows.
    pub fn node(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// Byte-weighted `Curr`: Σ widthᵢ · producedᵢ.
    pub fn curr_bytes(&self, produced: &[u64]) -> f64 {
        self.0
            .iter()
            .zip(produced)
            .map(|(w, &p)| w * p as f64)
            .sum()
    }

    /// Byte-weighted totals over per-node bounds: `(LB_bytes, UB_bytes)`.
    pub fn bound_bytes(&self, bounds: &[crate::bounds::NodeBounds]) -> (f64, f64) {
        let mut lb = 0.0;
        let mut ub = 0.0;
        for (w, b) in self.0.iter().zip(bounds) {
            lb += w * b.lb as f64;
            ub += w * b.ub as f64;
        }
        (lb.max(1.0), ub.max(1.0))
    }
}

/// `pmax` under the bytes model: `Curr_bytes / LB_bytes`. Carries
/// Property 4 unchanged (never underestimates byte-progress).
#[derive(Debug, Clone)]
pub struct BytesPmax {
    widths: RowWidths,
}

impl BytesPmax {
    pub fn new(plan: &Plan) -> BytesPmax {
        BytesPmax {
            widths: RowWidths::from_plan(plan),
        }
    }
}

impl ProgressEstimator for BytesPmax {
    fn name(&self) -> &'static str {
        "pmax-bytes"
    }
    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        if cx.node_bounds.is_empty() {
            // No per-node bounds available (bare context): degrade to the
            // getnext-model formula.
            return (cx.curr as f64 / cx.lb_total.max(1) as f64).clamp(0.0, 1.0);
        }
        let curr = self.widths.curr_bytes(cx.produced);
        let (lb, _) = self.widths.bound_bytes(cx.node_bounds);
        (curr / lb).clamp(0.0, 1.0)
    }
}

/// `safe` under the bytes model: `Curr_bytes / √(LB_bytes · UB_bytes)`,
/// worst-case optimal for byte-progress by the same argument as
/// Theorem 6.
#[derive(Debug, Clone)]
pub struct BytesSafe {
    widths: RowWidths,
}

impl BytesSafe {
    pub fn new(plan: &Plan) -> BytesSafe {
        BytesSafe {
            widths: RowWidths::from_plan(plan),
        }
    }
}

impl ProgressEstimator for BytesSafe {
    fn name(&self) -> &'static str {
        "safe-bytes"
    }
    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        if cx.node_bounds.is_empty() {
            let denom = (cx.lb_total.max(1) as f64 * cx.ub_total.max(1) as f64).sqrt();
            return (cx.curr as f64 / denom).clamp(0.0, 1.0);
        }
        let curr = self.widths.curr_bytes(cx.produced);
        let (lb, ub) = self.widths.bound_bytes(cx.node_bounds);
        (curr / (lb * ub).sqrt()).clamp(0.0, 1.0)
    }
}

/// True byte-progress of a completed run at a snapshot: byte-weighted
/// `Curr` over byte-weighted `total(Q)` (for scoring byte-model traces).
pub fn byte_progress(widths: &RowWidths, produced: &[u64], final_counts: &[u64]) -> f64 {
    let total = widths.curr_bytes(final_counts);
    if total <= 0.0 {
        return 0.0;
    }
    (widths.curr_bytes(produced) / total).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::BoundsTracker;
    use crate::metrics::ratio_error;
    use crate::monitor::run_with_progress;
    use qp_exec::plan::{JoinType, PlanBuilder};
    use qp_storage::{ColumnType, Database, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("a", ColumnType::Int), ("s", ColumnType::Str)]),
            (0..1_000).map(|i| vec![Value::Int(i), Value::str(format!("row{i}"))]),
        )
        .unwrap();
        db.create_table_with_rows(
            "u",
            Schema::of(&[("x", ColumnType::Int)]),
            (0..500).map(|i| vec![Value::Int(i % 100)]),
        )
        .unwrap();
        db.create_index("u_x", "u", &["x"], false).unwrap();
        db
    }

    #[test]
    fn widths_follow_schema() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t").unwrap().build();
        let w = RowWidths::from_plan(&plan);
        assert_eq!(w.node(0), 8.0 + NOMINAL_STRING_WIDTH);
    }

    #[test]
    fn byte_weighted_totals_are_consistent() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .inl_join(&db, "u", "u_x", vec![0], JoinType::Inner, false, None)
            .unwrap()
            .build();
        let w = RowWidths::from_plan(&plan);
        let (out, _) = qp_exec::run_query(&plan, &db, None).unwrap();
        let mut tracker = BoundsTracker::new(&plan, None);
        let done = vec![true; plan.len()];
        tracker.recompute(&out.node_counts, &done);
        let (lb, ub) = w.bound_bytes(tracker.all());
        let total = w.curr_bytes(&out.node_counts);
        assert!((lb - total).abs() < 1e-6);
        assert!((ub - total).abs() < 1e-6);
    }

    /// Property 4 under the bytes model: pmax-bytes never underestimates
    /// byte-progress on a live run.
    #[test]
    fn bytes_pmax_never_underestimates() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .inl_join(&db, "u", "u_x", vec![0], JoinType::Inner, false, None)
            .unwrap()
            .build();
        let (out, trace) = run_with_progress(
            &plan,
            &db,
            None,
            vec![Box::new(BytesPmax::new(&plan))],
            Some(7),
        )
        .unwrap();
        // Score against byte-progress: reconstruct per-snapshot produced is
        // not stored, so use the getnext-progress as a proxy lower check —
        // byte and row progress coincide at the endpoints and the
        // guarantee must hold within tolerance across the monotone path.
        let series = trace.series("pmax-bytes").unwrap();
        let last = series.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9, "ends at {}", last.1);
        assert!(out.total_getnext > 0);
        for (_, est) in series {
            assert!((0.0..=1.0).contains(&est));
        }
    }

    /// The paper's Section 2.2 claim, checked: conclusions transfer
    /// between models — on the worst-case-style join, safe-bytes tracks
    /// byte progress with a modest ratio error, comparable to safe's
    /// getnext-model error.
    #[test]
    fn models_agree_qualitatively() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .inl_join(&db, "u", "u_x", vec![0], JoinType::Inner, false, None)
            .unwrap()
            .build();
        let (_, trace) = run_with_progress(
            &plan,
            &db,
            None,
            vec![
                Box::new(crate::estimators::Safe),
                Box::new(BytesSafe::new(&plan)),
            ],
            Some(11),
        )
        .unwrap();
        let score = |name: &str| -> f64 {
            trace
                .series(name)
                .unwrap()
                .into_iter()
                .filter(|(p, _)| *p > 0.0)
                .map(|(p, e)| ratio_error(e, p))
                .fold(1.0, f64::max)
        };
        let rows_err = score("safe");
        let bytes_err = score("safe-bytes");
        // Same regime: within a small factor of each other (byte progress
        // is measured against row progress here, adding a bounded model
        // mismatch — strings widen join output rows).
        assert!(
            bytes_err < 3.0 * rows_err + 1.0,
            "models diverged: rows {rows_err}, bytes {bytes_err}"
        );
    }
}
