//! The progress monitor: an executor [`Observer`] that maintains bounds
//! and snapshots every estimator at a fixed getnext stride.
//!
//! This is the complete "Progress Estimator" box of the paper's Figure 1:
//! it receives the execution feedback (getnext events), holds the plan
//! and the statistics-derived state, and produces estimates. After the
//! run completes, [`ProgressMonitor::into_trace`] pairs every snapshot
//! with the now-known true progress, yielding the series plotted in the
//! paper's figures.

use crate::bounds::BoundsTracker;
use crate::estimators::{EstimatorContext, ProgressEstimator};
use crate::model::PlanMeta;
use crate::shared::{clamp_snapshot, Health, ProgressCell, RegimeFlags, Trust};
use qp_exec::{Counters, ExecEvent, Observer};
use qp_obs::{EventKind, FlightRecorder, TraceBuffer};
use std::sync::Arc;

/// One recorded instant.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Wall-clock nanoseconds since the monitor was created. The paged
    /// experiments use this to compute *time-fraction* true progress —
    /// when GetNexts stop costing uniform time (buffer-pool misses), the
    /// getnext fraction and the time fraction diverge, and this field is
    /// what exposes the gap.
    pub at_ns: u64,
    /// `Curr` at the instant.
    pub curr: u64,
    /// `LB` at the instant.
    pub lb: u64,
    /// `UB` at the instant.
    pub ub: u64,
    /// One estimate per registered estimator, in registration order.
    pub estimates: Vec<f64>,
    /// Trust level of the estimate stream at this instant (monotone
    /// within a run: once degraded or fallen back, it stays so).
    pub trust: Trust,
}

/// Observer that drives the estimator suite during execution.
pub struct ProgressMonitor {
    meta: PlanMeta,
    bounds: BoundsTracker,
    estimators: Vec<Box<dyn ProgressEstimator>>,
    names: Vec<&'static str>,
    stride: u64,
    produced: Vec<u64>,
    exhausted: Vec<bool>,
    curr: u64,
    snapshots: Vec<Snapshot>,
    publisher: Option<Arc<ProgressCell>>,
    degraded: bool,
    /// Flight recorder (+ the session id to stamp events with) that
    /// snapshot publishes and clamp degradations are reported into.
    recorder: Option<(Arc<FlightRecorder>, u64)>,
    /// Live checkpoint ring the `TRACE` endpoint reads while the query
    /// still runs.
    trace_sink: Option<Arc<TraceBuffer>>,
    /// Monitor creation time; every snapshot stamps its offset from it.
    started: std::time::Instant,
    /// Shared regime-shift flags: handed to every estimator at
    /// construction (via `attach_regime`), raised by the monitor itself
    /// on contradicted bounds, and by the outside world (the service's
    /// fault/thrash probe) at any time.
    regime: Arc<RegimeFlags>,
    /// Optional external probe polled before every snapshot; returns
    /// [`RegimeFlags`] bits to OR in (e.g. the service layer checking
    /// the flight recorder for fired faults and the buffer pool for
    /// thrash).
    regime_probe: Option<Box<dyn Fn() -> u8 + Send>>,
    /// Monotone trust level folded from regime flags, clamps, and the
    /// estimators' own self-reports.
    trust: Trust,
}

impl ProgressMonitor {
    /// Creates a monitor snapshotting every `stride` getnext calls.
    ///
    /// `meta` should come from a plan annotated with optimizer estimates;
    /// `bounds` from the same plan (with or without statistics).
    pub fn new(
        meta: PlanMeta,
        bounds: BoundsTracker,
        mut estimators: Vec<Box<dyn ProgressEstimator>>,
        stride: u64,
    ) -> ProgressMonitor {
        assert!(stride > 0, "stride must be positive");
        let regime = Arc::new(RegimeFlags::new());
        for e in &mut estimators {
            e.attach_regime(Arc::clone(&regime));
        }
        let names = estimators.iter().map(|e| e.name()).collect();
        let n = meta.n_nodes;
        ProgressMonitor {
            meta,
            bounds,
            estimators,
            names,
            stride,
            produced: vec![0; n],
            exhausted: vec![false; n],
            curr: 0,
            snapshots: Vec::new(),
            publisher: None,
            degraded: false,
            recorder: None,
            trace_sink: None,
            started: std::time::Instant::now(),
            regime,
            regime_probe: None,
            trust: Trust::Ok,
        }
    }

    /// The run's shared regime-shift flags. Cloning the `Arc` lets any
    /// other thread (the service's session bookkeeping, a test) raise a
    /// regime bit that the estimators and the trust fold will observe at
    /// the next snapshot.
    pub fn regime(&self) -> Arc<RegimeFlags> {
        Arc::clone(&self.regime)
    }

    /// Installs a probe polled immediately before every snapshot; the
    /// returned bits are OR'd into the regime flags. The service layer
    /// uses this to watch its flight recorder (fired faults) and buffer
    /// pool (thrash) without the monitor depending on either.
    pub fn set_regime_probe(&mut self, probe: Box<dyn Fn() -> u8 + Send>) {
        self.regime_probe = Some(probe);
    }

    /// The current (monotone) trust level of the estimate stream.
    pub fn trust(&self) -> Trust {
        self.trust
    }

    /// Attaches a [`ProgressCell`] that every snapshot is also published
    /// into, making the monitor's view pollable from other threads while
    /// the query runs (the service layer's `STATUS` path).
    ///
    /// The cell must have been created with this monitor's [`names`].
    ///
    /// [`names`]: ProgressMonitor::names
    pub fn set_publisher(&mut self, cell: Arc<ProgressCell>) {
        assert_eq!(
            cell.names(),
            &self.names[..],
            "publisher cell names must match the monitor's estimators"
        );
        self.publisher = Some(cell);
    }

    /// Attaches a flight recorder; every snapshot publish (and every
    /// clamp degradation) is recorded as an event stamped with `query`.
    pub fn set_recorder(&mut self, recorder: Arc<FlightRecorder>, query: u64) {
        self.recorder = Some((recorder, query));
    }

    /// Attaches a live checkpoint ring that every snapshot is pushed
    /// into — the data source of the service's `TRACE <id>` verb. The
    /// buffer's arity must match the estimator count.
    pub fn set_trace_sink(&mut self, sink: Arc<TraceBuffer>) {
        assert_eq!(
            sink.arity(),
            self.names.len(),
            "trace sink arity must match the monitor's estimators"
        );
        self.trace_sink = Some(sink);
    }

    /// Estimator names, in snapshot order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// `true` if any snapshot so far needed clamping into the valid
    /// envelope (contradicted bounds or a non-finite estimate) — the
    /// trace-side mirror of [`Health::Degraded`] on the published cell.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    fn snapshot(&mut self) {
        // Poll the external regime probe *before* estimating, so the
        // estimators (and the trust fold below) see a fault or thrash
        // signal at the same checkpoint it was detected.
        if let Some(probe) = &self.regime_probe {
            self.regime.set(probe());
        }
        self.bounds.recompute(&self.produced, &self.exhausted);
        let cx = EstimatorContext {
            produced: &self.produced,
            exhausted: &self.exhausted,
            curr: self.curr,
            lb_total: self.bounds.total_lb(),
            ub_total: self.bounds.total_ub(),
            meta: &self.meta,
            node_bounds: self.bounds.all(),
        };
        let mut estimates: Vec<f64> = self
            .estimators
            .iter_mut()
            .map(|e| e.estimate(&cx))
            .collect();
        let (mut lb, mut ub) = (cx.lb_total, cx.ub_total);
        // Clamp *before* recording so the trace and the live cell agree:
        // a contradicted envelope or NaN estimate degrades the stream but
        // never reaches a reader (or a CSV export) unclamped.
        if clamp_snapshot(self.curr, &mut lb, &mut ub, &mut estimates) {
            self.degraded = true;
            self.regime.set(RegimeFlags::CONTRADICTED);
            if let Some(cell) = &self.publisher {
                cell.raise_health(Health::Degraded);
            }
            if let Some((rec, query)) = &self.recorder {
                rec.record(*query, EventKind::SnapshotClamped, self.curr, 0);
            }
        }
        // Fold trust, monotonically: any regime bit degrades the stream,
        // and a self-diagnosing estimator (the ensemble) can raise it
        // further — all the way to Fallback once it delegates to safe.
        let mut trust = self.trust;
        if self.regime.any() {
            trust = trust.max(Trust::Degraded);
        }
        for e in &self.estimators {
            trust = trust.max(e.trust());
        }
        self.trust = trust;
        let snap = Snapshot {
            at_ns: self.started.elapsed().as_nanos() as u64,
            curr: self.curr,
            lb,
            ub,
            estimates,
            trust,
        };
        if let Some(cell) = &self.publisher {
            cell.publish_snapshot(&snap);
        }
        if let Some((rec, query)) = &self.recorder {
            rec.record(*query, EventKind::SnapshotPublished, snap.curr, snap.lb);
        }
        if let Some(sink) = &self.trace_sink {
            sink.push(snap.curr, snap.lb, snap.ub, &snap.estimates);
        }
        // Dedupe: consecutive snapshots at an unchanged `curr` (e.g. a
        // stride point immediately followed by `Exhausted` events, or
        // several nodes exhausting on the same getnext call) would emit
        // repeated rows in traces and CSV exports. Keep only the latest —
        // it carries the freshest bound refinements.
        match self.snapshots.last_mut() {
            Some(last) if last.curr == snap.curr => *last = snap,
            _ => self.snapshots.push(snap),
        }
    }

    /// Finalizes into a trace once `total(Q)` is known (from the completed
    /// run's counters).
    pub fn into_trace(self, total: u64) -> ProgressTrace {
        ProgressTrace {
            names: self.names,
            snapshots: self.snapshots,
            total,
        }
    }
}

impl Observer for ProgressMonitor {
    fn on_event(&mut self, event: ExecEvent, _counters: &Counters) {
        match event {
            ExecEvent::Open(_) => {}
            ExecEvent::RowProduced(node) => {
                self.produced[node] += 1;
                self.curr += 1;
                if self.curr.is_multiple_of(self.stride) {
                    self.snapshot();
                }
            }
            ExecEvent::Exhausted(node) => {
                self.exhausted[node] = true;
                // Exhaustion is a phase transition (a pipeline boundary
                // draining): snapshot immediately so traces capture the
                // bound refinements these events trigger, regardless of
                // where the stride falls.
                self.snapshot();
            }
        }
    }
}

/// A completed run's estimate series, paired with true progress.
#[derive(Debug, Clone)]
pub struct ProgressTrace {
    names: Vec<&'static str>,
    snapshots: Vec<Snapshot>,
    total: u64,
}

impl ProgressTrace {
    /// Assembles a trace from raw parts — for tests and tools that score
    /// hand-built checkpoint series through the same metrics pipeline as
    /// live runs. Every snapshot's estimate vector must match `names`.
    pub fn from_parts(
        names: Vec<&'static str>,
        snapshots: Vec<Snapshot>,
        total: u64,
    ) -> ProgressTrace {
        for s in &snapshots {
            assert_eq!(s.estimates.len(), names.len(), "estimate arity mismatch");
        }
        ProgressTrace {
            names,
            snapshots,
            total,
        }
    }

    /// Estimator names (column order of [`Snapshot::estimates`]).
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// All snapshots.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// `total(Q)` of the completed run.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Index of an estimator by name.
    pub fn estimator_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| *n == name)
    }

    /// True progress at each snapshot.
    pub fn true_progress(&self) -> Vec<f64> {
        self.snapshots
            .iter()
            .map(|s| crate::model::progress(s.curr, self.total))
            .collect()
    }

    /// Renders the whole trace as CSV (`curr,progress,lb,ub,<estimators…>`)
    /// for external plotting — the paper's figures are exactly these
    /// columns.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("curr,progress,lb,ub");
        for n in &self.names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for s in &self.snapshots {
            out.push_str(&format!(
                "{},{:.6},{},{}",
                s.curr,
                crate::model::progress(s.curr, self.total),
                s.lb,
                s.ub
            ));
            for e in &s.estimates {
                out.push_str(&format!(",{e:.6}"));
            }
            out.push('\n');
        }
        out
    }

    /// `(true_progress, estimate)` series for one estimator.
    pub fn series(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        let idx = self.estimator_index(name)?;
        Some(
            self.snapshots
                .iter()
                .map(|s| (crate::model::progress(s.curr, self.total), s.estimates[idx]))
                .collect(),
        )
    }
}

/// Convenience wrapper: run `plan` with the given estimators, returning
/// the query output and the finished trace. Snapshot stride defaults to
/// `total_rows_hint / 200` capped to at least 1 — roughly 200 points per
/// run, like the paper's plots.
pub fn run_with_progress(
    plan: &qp_exec::Plan,
    db: &qp_storage::Database,
    stats: Option<&qp_stats::DbStats>,
    estimators: Vec<Box<dyn ProgressEstimator>>,
    stride: Option<u64>,
) -> qp_exec::ExecResult<(qp_exec::executor::QueryOutput, ProgressTrace)> {
    run_with_progress_controls(
        plan,
        db,
        stats,
        estimators,
        stride,
        qp_exec::RunControls::default(),
    )
}

/// Like [`run_with_progress`], but under caller-supplied
/// [`qp_exec::RunControls`] — the entry point for checkpoint-level
/// equivalence tests that need to vary the (results-neutral) morsel and
/// batch sizing while watching every estimator reading.
pub fn run_with_progress_controls(
    plan: &qp_exec::Plan,
    db: &qp_storage::Database,
    stats: Option<&qp_stats::DbStats>,
    estimators: Vec<Box<dyn ProgressEstimator>>,
    stride: Option<u64>,
    controls: qp_exec::RunControls,
) -> qp_exec::ExecResult<(qp_exec::executor::QueryOutput, ProgressTrace)> {
    run_with_progress_probed(plan, db, stats, estimators, stride, controls, None)
}

/// Like [`run_with_progress_controls`], but with an optional regime
/// probe (see [`ProgressMonitor::set_regime_probe`]) installed before
/// the run — the standalone mirror of the service's fault/thrash
/// wiring, for benches and tests that drive hostile conditions without
/// a `qp-service` session around them.
pub fn run_with_progress_probed(
    plan: &qp_exec::Plan,
    db: &qp_storage::Database,
    stats: Option<&qp_stats::DbStats>,
    estimators: Vec<Box<dyn ProgressEstimator>>,
    stride: Option<u64>,
    controls: qp_exec::RunControls,
    probe: Option<Box<dyn Fn() -> u8 + Send>>,
) -> qp_exec::ExecResult<(qp_exec::executor::QueryOutput, ProgressTrace)> {
    let meta = PlanMeta::from_plan(plan);
    let bounds = BoundsTracker::new(plan, stats);
    let stride = stride.unwrap_or_else(|| {
        let hint: u64 = meta
            .scanned_leaves
            .iter()
            .filter_map(|&(_, c)| c)
            .sum::<u64>()
            .max(200);
        (hint / 200).max(1)
    });
    let mut inner = ProgressMonitor::new(meta, bounds, estimators, stride);
    if let Some(probe) = probe {
        inner.set_regime_probe(probe);
    }
    let monitor = Arc::new(std::sync::Mutex::new(inner));

    let mut run = qp_exec::executor::QueryRun::with_controls(plan, db, controls)?;
    run.set_observer(Box::new(SharedMonitor(Arc::clone(&monitor))));
    let rows = run.run()?;
    let out = qp_exec::executor::QueryOutput {
        node_counts: run.context().counters().snapshot(),
        total_getnext: run.context().counters().total(),
        rows,
    };
    drop(run.take_observer());
    let monitor = Arc::try_unwrap(monitor)
        .ok()
        .expect("executor dropped its observer handle")
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    Ok((out, monitor.into_trace_with_final()))
}

/// Observer shim sharing a [`ProgressMonitor`] between the executor (which
/// owns its observer) and an outside party that wants the monitor back
/// after — or a live view during — the run. Used by `run_with_progress`
/// here and by the session workers in `qp-service`.
pub struct SharedMonitor(pub Arc<std::sync::Mutex<ProgressMonitor>>);

impl Observer for SharedMonitor {
    fn on_event(&mut self, event: ExecEvent, counters: &Counters) {
        // Recover from poisoning: an injected panic that unwound through a
        // previous event must not take down later queries sharing the
        // monitor handle — the monitor's counters are updated before any
        // code that can panic, so the state is usable.
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .on_event(event, counters);
    }
}

impl ProgressMonitor {
    /// Takes one final snapshot (so the trace always ends at 100%) and
    /// finalizes using the monitor's own `curr` as `total(Q)`.
    pub fn into_trace_with_final(mut self) -> ProgressTrace {
        self.snapshot();
        let total = self.curr;
        self.into_trace(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::{Dne, Pmax, Safe};
    use qp_exec::plan::PlanBuilder;
    use qp_exec::Expr;
    use qp_storage::{ColumnType, Database, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("a", ColumnType::Int)]),
            (0..1000).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        db
    }

    fn scan_filter_plan(db: &Database) -> qp_exec::Plan {
        PlanBuilder::scan(db, "t")
            .unwrap()
            .filter(Expr::cmp(
                qp_exec::CmpOp::Lt,
                Expr::Col(0),
                Expr::Lit(Value::Int(500)),
            ))
            .build()
    }

    #[test]
    fn monitor_produces_monotone_trace() {
        let db = db();
        let plan = scan_filter_plan(&db);
        let (out, trace) = run_with_progress(
            &plan,
            &db,
            None,
            vec![Box::new(Dne), Box::new(Pmax), Box::new(Safe)],
            Some(10),
        )
        .unwrap();
        assert_eq!(out.total_getnext, 1500);
        assert_eq!(trace.total(), 1500);
        assert!(trace.snapshots().len() > 100);
        let prog = trace.true_progress();
        assert!(prog.windows(2).all(|w| w[0] <= w[1]));
        // The final snapshot is at 100%.
        assert!((prog.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmax_never_underestimates_along_whole_trace() {
        let db = db();
        let plan = scan_filter_plan(&db);
        let (_, trace) =
            run_with_progress(&plan, &db, None, vec![Box::new(Pmax)], Some(7)).unwrap();
        for (prog, est) in trace.series("pmax").unwrap() {
            assert!(
                est >= prog - 1e-9,
                "pmax {est} underestimates progress {prog}"
            );
        }
    }

    #[test]
    fn estimates_stay_in_unit_interval() {
        let db = db();
        let plan = scan_filter_plan(&db);
        let (_, trace) = run_with_progress(
            &plan,
            &db,
            None,
            crate::estimators::standard_suite(),
            Some(13),
        )
        .unwrap();
        for s in trace.snapshots() {
            for &e in &s.estimates {
                assert!((0.0..=1.0).contains(&e), "estimate {e} out of range");
            }
        }
    }

    #[test]
    fn trace_has_no_duplicate_curr_rows() {
        // The filter exhausts on the same getnext call that hits a stride
        // boundary, and the final snapshot lands on the last stride point:
        // both used to push duplicate rows at an unchanged `curr`.
        let db = db();
        let plan = scan_filter_plan(&db);
        let (_, trace) = run_with_progress(
            &plan,
            &db,
            None,
            vec![Box::new(Dne), Box::new(Pmax)],
            Some(10),
        )
        .unwrap();
        let currs: Vec<u64> = trace.snapshots().iter().map(|s| s.curr).collect();
        assert!(
            currs.windows(2).all(|w| w[0] < w[1]),
            "duplicate or out-of-order curr rows: {currs:?}"
        );
        // And the CSV therefore has no repeated rows either.
        let csv = trace.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        let unique: std::collections::BTreeSet<&str> = rows.iter().copied().collect();
        assert_eq!(rows.len(), unique.len(), "CSV export has repeated rows");
    }

    #[test]
    fn publisher_cell_sees_live_snapshots() {
        use crate::shared::ProgressCell;
        let db = db();
        let plan = scan_filter_plan(&db);
        let meta = PlanMeta::from_plan(&plan);
        let bounds = crate::bounds::BoundsTracker::new(&plan, None);
        let mut monitor = ProgressMonitor::new(meta, bounds, vec![Box::new(Pmax)], 10);
        let cell = Arc::new(ProgressCell::new(vec!["pmax"]));
        monitor.set_publisher(Arc::clone(&cell));
        assert!(cell.read().is_none());
        let monitor = Arc::new(std::sync::Mutex::new(monitor));
        let (out, _) = qp_exec::run_query(
            &plan,
            &db,
            Some(Box::new(SharedMonitor(Arc::clone(&monitor)))),
        )
        .unwrap();
        // The cell holds the last published snapshot; finalization pushes
        // the 100% point.
        Arc::try_unwrap(monitor)
            .ok()
            .unwrap()
            .into_inner()
            .unwrap()
            .into_trace_with_final();
        let last = cell.read().unwrap();
        assert_eq!(last.curr, out.total_getnext);
        assert_eq!(last.lb, out.total_getnext);
        assert!((cell.estimate("pmax").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn csv_export_is_well_formed() {
        let db = db();
        let plan = scan_filter_plan(&db);
        let (_, trace) =
            run_with_progress(&plan, &db, None, vec![Box::new(Pmax)], Some(100)).unwrap();
        let csv = trace.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "curr,progress,lb,ub,pmax");
        let n_rows = lines.clone().count();
        assert_eq!(n_rows, trace.snapshots().len());
        for line in lines {
            assert_eq!(line.split(',').count(), 5, "bad row: {line}");
        }
    }

    #[test]
    fn recorder_and_trace_sink_see_live_checkpoints() {
        let db = db();
        let plan = scan_filter_plan(&db);
        let meta = PlanMeta::from_plan(&plan);
        let bounds = crate::bounds::BoundsTracker::new(&plan, None);
        let mut monitor = ProgressMonitor::new(meta, bounds, vec![Box::new(Pmax)], 100);
        let recorder = Arc::new(FlightRecorder::new(64));
        let sink = Arc::new(TraceBuffer::new(4096, 1));
        monitor.set_recorder(Arc::clone(&recorder), 42);
        monitor.set_trace_sink(Arc::clone(&sink));
        let monitor = Arc::new(std::sync::Mutex::new(monitor));
        let (out, _) = qp_exec::run_query(
            &plan,
            &db,
            Some(Box::new(SharedMonitor(Arc::clone(&monitor)))),
        )
        .unwrap();
        let published = recorder.recorded_of(EventKind::SnapshotPublished);
        assert!(
            published > 10,
            "expected many publish events, got {published}"
        );
        assert!(recorder.tail().iter().all(|e| e.query == 42));
        let points = sink.tail();
        assert_eq!(points.len() as u64, sink.pushed(), "nothing should drop");
        // The ring is append-only (no dedupe), so curr is non-decreasing,
        // and every point respects the envelope.
        assert!(points.windows(2).all(|w| w[0].curr <= w[1].curr));
        for p in &points {
            assert!(p.lb <= p.ub);
            assert!(p.curr <= p.ub);
            assert!(p.estimates[0].is_finite());
        }
        assert_eq!(points.last().unwrap().lb, out.total_getnext);
    }

    #[test]
    #[should_panic(expected = "trace sink arity")]
    fn trace_sink_arity_mismatch_panics() {
        let db = db();
        let plan = scan_filter_plan(&db);
        let meta = PlanMeta::from_plan(&plan);
        let bounds = crate::bounds::BoundsTracker::new(&plan, None);
        let mut monitor = ProgressMonitor::new(meta, bounds, vec![Box::new(Pmax)], 100);
        monitor.set_trace_sink(Arc::new(TraceBuffer::new(8, 3)));
    }

    #[test]
    fn clean_runs_keep_trust_ok() {
        let db = db();
        let plan = scan_filter_plan(&db);
        let (_, trace) = run_with_progress(
            &plan,
            &db,
            None,
            vec![Box::new(Dne), Box::new(Pmax), Box::new(Safe)],
            Some(10),
        )
        .unwrap();
        assert!(trace
            .snapshots()
            .iter()
            .all(|s| s.trust == crate::shared::Trust::Ok));
    }

    #[test]
    fn regime_flag_degrades_trust_and_ensemble_tracks_safe() {
        use crate::estimators::{Ensemble, EnsembleStats};
        use crate::shared::{RegimeFlags, Trust};
        let db = db();
        let plan = scan_filter_plan(&db);
        let meta = PlanMeta::from_plan(&plan);
        let bounds = crate::bounds::BoundsTracker::new(&plan, None);
        let ensemble = Ensemble::with_stats(Arc::new(EnsembleStats::new()));
        let monitor =
            ProgressMonitor::new(meta, bounds, vec![Box::new(ensemble), Box::new(Safe)], 10);
        let regime = monitor.regime();
        // A fault fires before the first checkpoint (e.g. the service's
        // probe saw the flight recorder) — raised from outside.
        regime.set(RegimeFlags::FAULT);
        let monitor = Arc::new(std::sync::Mutex::new(monitor));
        qp_exec::run_query(
            &plan,
            &db,
            Some(Box::new(SharedMonitor(Arc::clone(&monitor)))),
        )
        .unwrap();
        let trace = Arc::try_unwrap(monitor)
            .ok()
            .unwrap()
            .into_inner()
            .unwrap()
            .into_trace_with_final();
        for s in trace.snapshots() {
            // Trust never drops below Fallback (the ensemble delegated
            // on the very first checkpoint) …
            assert_eq!(s.trust, Trust::Fallback, "at curr {}", s.curr);
            // … and the ensemble column is bitwise the safe column.
            assert_eq!(
                s.estimates[0].to_bits(),
                s.estimates[1].to_bits(),
                "ensemble diverged from safe at curr {}",
                s.curr
            );
        }
    }

    #[test]
    fn regime_probe_is_polled_at_snapshots() {
        use crate::shared::{RegimeFlags, Trust};
        let db = db();
        let plan = scan_filter_plan(&db);
        let meta = PlanMeta::from_plan(&plan);
        let bounds = crate::bounds::BoundsTracker::new(&plan, None);
        let mut monitor = ProgressMonitor::new(meta, bounds, vec![Box::new(Pmax)], 10);
        monitor.set_regime_probe(Box::new(|| RegimeFlags::THRASH));
        let regime = monitor.regime();
        let monitor = Arc::new(std::sync::Mutex::new(monitor));
        qp_exec::run_query(
            &plan,
            &db,
            Some(Box::new(SharedMonitor(Arc::clone(&monitor)))),
        )
        .unwrap();
        let mon = Arc::try_unwrap(monitor).ok().unwrap().into_inner().unwrap();
        assert_eq!(mon.trust(), Trust::Degraded);
        assert_eq!(regime.bits() & RegimeFlags::THRASH, RegimeFlags::THRASH);
        let trace = mon.into_trace_with_final();
        assert!(trace.snapshots().iter().all(|s| s.trust == Trust::Degraded));
    }

    #[test]
    fn dne_is_exact_for_uniform_single_pipeline() {
        // A pure scan: per-tuple work is constant, dne should be exact.
        let db = db();
        let plan = PlanBuilder::scan(&db, "t").unwrap().build();
        let (_, trace) =
            run_with_progress(&plan, &db, None, vec![Box::new(Dne)], Some(10)).unwrap();
        for (prog, est) in trace.series("dne").unwrap() {
            assert!((est - prog).abs() < 0.01, "dne {est} vs progress {prog}");
        }
    }
}
