//! Cross-thread progress publication: a lock-free, single-writer slot.
//!
//! The paper's Figure 1 scenario is *online*: a DBA polls the progress of
//! a running query from outside the query thread. [`ProgressCell`] is the
//! channel that makes this possible without perturbing execution: the
//! in-thread [`crate::monitor::ProgressMonitor`] publishes a fixed-size
//! snapshot — `(curr, LB, UB, one estimate per estimator)` — at every
//! snapshot stride, and any number of reader threads can poll the latest
//! value at any time.
//!
//! The implementation is a classic **seqlock**: a version counter is
//! bumped to an odd value before the writer stores the fields and to an
//! even value after. Readers retry when they observe an odd version or a
//! version change across their field loads. The writer never blocks (no
//! mutex on the hot path — one uncontended atomic add per field per
//! publish), and readers never block the writer, which is exactly the
//! property a progress probe must have: *observing a query must not slow
//! it down*.

use crate::monitor::Snapshot;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// A published progress point, as read back from a [`ProgressCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressReading {
    /// `Curr` at publication time.
    pub curr: u64,
    /// Lower bound on `total(Q)` at publication time.
    pub lb: u64,
    /// Upper bound on `total(Q)` at publication time (`u64::MAX` = ∞).
    pub ub: u64,
    /// One estimate per estimator, in the cell's name order.
    pub estimates: Vec<f64>,
}

/// Single-writer, many-reader slot holding the latest progress snapshot.
///
/// Created with the estimator names the publishing monitor will report;
/// the estimate vector of every publication must have that arity.
#[derive(Debug)]
pub struct ProgressCell {
    /// Seqlock version: 0 = never written, odd = write in progress.
    seq: AtomicU64,
    curr: AtomicU64,
    lb: AtomicU64,
    ub: AtomicU64,
    /// `f64::to_bits` of each estimate.
    estimates: Vec<AtomicU64>,
    names: Vec<&'static str>,
}

impl ProgressCell {
    /// An empty cell for a monitor reporting the named estimators.
    pub fn new(names: Vec<&'static str>) -> ProgressCell {
        ProgressCell {
            seq: AtomicU64::new(0),
            curr: AtomicU64::new(0),
            lb: AtomicU64::new(0),
            ub: AtomicU64::new(u64::MAX),
            estimates: names.iter().map(|_| AtomicU64::new(0)).collect(),
            names,
        }
    }

    /// Estimator names, in the order of [`ProgressReading::estimates`].
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Publishes one snapshot. Called by the single writer (the query
    /// thread's monitor); never blocks.
    ///
    /// # Panics
    /// Panics if `estimates.len()` differs from the cell's arity.
    pub fn publish(&self, curr: u64, lb: u64, ub: u64, estimates: &[f64]) {
        assert_eq!(
            estimates.len(),
            self.estimates.len(),
            "estimate arity mismatch"
        );
        let v = self.seq.load(Ordering::Relaxed);
        self.seq.store(v.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        self.curr.store(curr, Ordering::Relaxed);
        self.lb.store(lb, Ordering::Relaxed);
        self.ub.store(ub, Ordering::Relaxed);
        for (slot, &e) in self.estimates.iter().zip(estimates) {
            slot.store(e.to_bits(), Ordering::Relaxed);
        }
        self.seq.store(v.wrapping_add(2), Ordering::Release);
    }

    /// Convenience: publish a monitor snapshot.
    pub fn publish_snapshot(&self, snap: &Snapshot) {
        self.publish(snap.curr, snap.lb, snap.ub, &snap.estimates);
    }

    /// The latest published snapshot, or `None` if nothing has been
    /// published yet. Lock-free; spins only across an in-flight write
    /// (a few dozen instructions on the writer side).
    pub fn read(&self) -> Option<ProgressReading> {
        loop {
            let v1 = self.seq.load(Ordering::Acquire);
            if v1 == 0 {
                return None;
            }
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let reading = ProgressReading {
                curr: self.curr.load(Ordering::Relaxed),
                lb: self.lb.load(Ordering::Relaxed),
                ub: self.ub.load(Ordering::Relaxed),
                estimates: self
                    .estimates
                    .iter()
                    .map(|b| f64::from_bits(b.load(Ordering::Relaxed)))
                    .collect(),
            };
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == v1 {
                return Some(reading);
            }
            std::hint::spin_loop();
        }
    }

    /// The estimate of the estimator called `name` in the latest reading.
    pub fn estimate(&self, name: &str) -> Option<f64> {
        let idx = self.names.iter().position(|n| *n == name)?;
        self.read().map(|r| r.estimates[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unwritten_cell_reads_none() {
        let cell = ProgressCell::new(vec!["pmax"]);
        assert_eq!(cell.read(), None);
        assert_eq!(cell.estimate("pmax"), None);
    }

    #[test]
    fn publish_then_read_round_trips() {
        let cell = ProgressCell::new(vec!["dne", "pmax"]);
        cell.publish(42, 100, 400, &[0.25, 0.5]);
        let r = cell.read().unwrap();
        assert_eq!(r.curr, 42);
        assert_eq!(r.lb, 100);
        assert_eq!(r.ub, 400);
        assert_eq!(r.estimates, vec![0.25, 0.5]);
        assert_eq!(cell.estimate("pmax"), Some(0.5));
        assert_eq!(cell.estimate("nope"), None);
    }

    #[test]
    fn last_write_wins() {
        let cell = ProgressCell::new(vec!["pmax"]);
        for i in 1..=10u64 {
            cell.publish(i, i, 2 * i, &[i as f64 / 10.0]);
        }
        let r = cell.read().unwrap();
        assert_eq!(r.curr, 10);
        assert_eq!(r.estimates, vec![1.0]);
    }

    /// Readers racing a fast writer must only ever observe *coherent*
    /// snapshots: every field from the same publication.
    #[test]
    fn concurrent_reads_are_coherent() {
        let cell = Arc::new(ProgressCell::new(vec!["a", "b"]));
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 1..=100_000u64 {
                    // All fields encode the same i, so a torn read is
                    // detectable.
                    cell.publish(i, i * 2, i * 3, &[i as f64, i as f64 + 0.5]);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    while seen < 100_000 {
                        if let Some(r) = cell.read() {
                            assert_eq!(r.lb, r.curr * 2, "torn read: {r:?}");
                            assert_eq!(r.ub, r.curr * 3, "torn read: {r:?}");
                            assert_eq!(r.estimates[0], r.curr as f64, "torn read: {r:?}");
                            assert_eq!(r.estimates[1], r.curr as f64 + 0.5, "torn read: {r:?}");
                            seen = seen.max(r.curr);
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
