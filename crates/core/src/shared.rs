//! Cross-thread progress publication: a lock-free, single-writer slot.
//!
//! The paper's Figure 1 scenario is *online*: a DBA polls the progress of
//! a running query from outside the query thread. [`ProgressCell`] is the
//! channel that makes this possible without perturbing execution: the
//! in-thread [`crate::monitor::ProgressMonitor`] publishes a fixed-size
//! snapshot — `(curr, LB, UB, one estimate per estimator)` — at every
//! snapshot stride, and any number of reader threads can poll the latest
//! value at any time.
//!
//! The implementation is a classic **seqlock**: a version counter is
//! bumped to an odd value before the writer stores the fields and to an
//! even value after. Readers retry when they observe an odd version or a
//! version change across their field loads. The writer never blocks (no
//! mutex on the hot path — one uncontended atomic add per field per
//! publish), and readers never block the writer, which is exactly the
//! property a progress probe must have: *observing a query must not slow
//! it down*.

use crate::monitor::Snapshot;
use std::sync::atomic::{fence, AtomicU64, AtomicU8, Ordering};

/// Trustworthiness of the published progress stream.
///
/// Progress must degrade *gracefully*: a fault mid-query may contradict
/// the bounds (LB > UB, zero totals, NaN estimates), and the paper's
/// guarantees (Property 4, Theorem 6) are stated over valid envelopes.
/// Rather than surfacing an inverted or non-finite reading to pollers,
/// the cell clamps the snapshot into the valid envelope and raises this
/// flag. Health is **monotone**: it only ever worsens (`Ok → Degraded →
/// Failed`), so a poller that has once seen `Degraded` can trust that no
/// later reading silently pretends full health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Health {
    /// Every published value was within its guaranteed envelope.
    #[default]
    Ok = 0,
    /// At least one published snapshot needed clamping (contradicted
    /// bounds or a non-finite estimate), or the query timed out — the
    /// stream is still bounded and monotone, but the guarantees are
    /// best-effort from here on.
    Degraded = 1,
    /// The query failed (error or panic); the reading is the last state
    /// before death.
    Failed = 2,
}

impl Health {
    /// Wire-protocol token (also used in `Display`).
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
            Health::Failed => "failed",
        }
    }

    fn from_u8(v: u8) -> Health {
        match v {
            0 => Health::Ok,
            1 => Health::Degraded,
            _ => Health::Failed,
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Health {
    type Err = String;
    fn from_str(s: &str) -> Result<Health, String> {
        match s {
            "ok" => Ok(Health::Ok),
            "degraded" => Ok(Health::Degraded),
            "failed" => Ok(Health::Failed),
            other => Err(format!("unknown health {other:?}")),
        }
    }
}

/// How much the *estimates* themselves can currently be trusted —
/// orthogonal to [`Health`], which reports whether the published values
/// were valid. A stream can be perfectly healthy (every snapshot in its
/// envelope) while its estimates are garbage because the regime the
/// estimators assumed no longer holds: bounds were contradicted
/// mid-query, a fault fired, or the buffer pool started thrashing so
/// GetNexts stopped costing uniform time.
///
/// Theorems 7 and 8 of the paper prove no estimator switch can be
/// *provably* correct, so the honest output under a regime shift is not
/// a cleverer number but a **flag**: the ensemble falls back to the
/// worst-case-optimal `safe` estimator and says so. Like health, trust
/// is monotone within a query (`Ok → Degraded → Fallback`): once the
/// regime shifted, later calm does not retroactively certify the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Trust {
    /// Estimates are operating in their assumed regime.
    #[default]
    Ok = 0,
    /// The estimators disagree sharply or a snapshot needed clamping —
    /// estimates are still published but should be read with suspicion.
    Degraded = 1,
    /// A regime shift was detected (fault, thrash, contradicted bounds);
    /// the ensemble now delegates to `safe`, the only estimator with a
    /// worst-case guarantee that survives hostile conditions (Thm 6).
    Fallback = 2,
}

impl Trust {
    /// Wire-protocol token (also used in `Display`).
    pub fn as_str(self) -> &'static str {
        match self {
            Trust::Ok => "ok",
            Trust::Degraded => "degraded",
            Trust::Fallback => "fallback",
        }
    }

    fn from_u8(v: u8) -> Trust {
        match v {
            0 => Trust::Ok,
            1 => Trust::Degraded,
            _ => Trust::Fallback,
        }
    }
}

impl std::fmt::Display for Trust {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Trust {
    type Err = String;
    fn from_str(s: &str) -> Result<Trust, String> {
        match s {
            "ok" => Ok(Trust::Ok),
            "degraded" => Ok(Trust::Degraded),
            "fallback" => Ok(Trust::Fallback),
            other => Err(format!("unknown trust {other:?}")),
        }
    }
}

/// Shared, sticky regime-shift signals, settable from any thread.
///
/// The monitor sets [`RegimeFlags::CONTRADICTED`] when a snapshot needs
/// clamping; the service layer sets [`RegimeFlags::FAULT`] when the
/// flight recorder observes an injected fault and
/// [`RegimeFlags::THRASH`] when buffer-pool misses dominate. Estimators
/// that opted in via [`crate::estimators::ProgressEstimator::attach_regime`]
/// read the bits at every snapshot. Bits are only ever set, never
/// cleared — a regime shift invalidates the estimators' assumptions for
/// the rest of the query, not just for the instant it was observed.
#[derive(Debug, Default)]
pub struct RegimeFlags {
    bits: AtomicU8,
}

impl RegimeFlags {
    /// An injected or real fault fired during execution.
    pub const FAULT: u8 = 1;
    /// The buffer pool is thrashing: GetNext cost is no longer uniform.
    pub const THRASH: u8 = 2;
    /// The bound envelope was contradicted (a snapshot needed clamping).
    pub const CONTRADICTED: u8 = 4;

    /// A fresh set of flags, all clear.
    pub fn new() -> RegimeFlags {
        RegimeFlags::default()
    }

    /// ORs `bits` in (sticky; never clears).
    pub fn set(&self, bits: u8) {
        if bits != 0 {
            self.bits.fetch_or(bits, Ordering::Relaxed);
        }
    }

    /// The current bit set.
    pub fn bits(&self) -> u8 {
        self.bits.load(Ordering::Relaxed)
    }

    /// `true` if any regime-shift signal has fired.
    pub fn any(&self) -> bool {
        self.bits() != 0
    }

    /// Human-readable rendering of a bit set (`"fault+thrash"`, `"-"`
    /// when clear) for logs and experiment tables.
    pub fn describe(bits: u8) -> String {
        let mut parts = Vec::new();
        if bits & Self::FAULT != 0 {
            parts.push("fault");
        }
        if bits & Self::THRASH != 0 {
            parts.push("thrash");
        }
        if bits & Self::CONTRADICTED != 0 {
            parts.push("contradicted");
        }
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// A published progress point, as read back from a [`ProgressCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressReading {
    /// `Curr` at publication time.
    pub curr: u64,
    /// Lower bound on `total(Q)` at publication time.
    pub lb: u64,
    /// Upper bound on `total(Q)` at publication time (`u64::MAX` = ∞).
    pub ub: u64,
    /// One estimate per estimator, in the cell's name order.
    pub estimates: Vec<f64>,
    /// Trustworthiness of this (and, since health is monotone, every
    /// earlier) reading.
    pub health: Health,
    /// Whether the *estimates* are still operating in their assumed
    /// regime (monotone, like health).
    pub trust: Trust,
}

/// Clamps one snapshot into the valid progress envelope, in place:
/// `LB ≤ UB`, `Curr ≤ UB`, every estimate finite and in `[0, 1]`.
/// Non-finite estimates are replaced by the most conservative bounded
/// ratio available (`Curr/UB`, falling back to `Curr/LB`, then 0).
/// Returns `true` iff anything had to change — the signal that the
/// stream should be flagged [`Health::Degraded`].
///
/// This is the single definition of "valid envelope" shared by
/// [`ProgressCell::publish`] and [`crate::monitor::ProgressMonitor`], so
/// live readings and recorded traces can never disagree about what was
/// clamped.
pub fn clamp_snapshot(curr: u64, lb: &mut u64, ub: &mut u64, estimates: &mut [f64]) -> bool {
    let mut changed = false;
    if *lb > *ub {
        // Contradicted bounds: LB is grounded in rows actually seen, so
        // trust it and pull UB up.
        *ub = *lb;
        changed = true;
    }
    if curr > *ub {
        *ub = curr;
        changed = true;
    }
    let fallback = if *ub > 0 && *ub != u64::MAX {
        (curr as f64 / *ub as f64).clamp(0.0, 1.0)
    } else if *lb > 0 {
        (curr as f64 / *lb as f64).clamp(0.0, 1.0)
    } else {
        0.0
    };
    for e in estimates {
        if !e.is_finite() {
            *e = fallback;
            changed = true;
        } else if !(0.0..=1.0).contains(e) {
            *e = e.clamp(0.0, 1.0);
            changed = true;
        }
    }
    changed
}

/// Single-writer, many-reader slot holding the latest progress snapshot.
///
/// Created with the estimator names the publishing monitor will report;
/// the estimate vector of every publication must have that arity.
#[derive(Debug)]
pub struct ProgressCell {
    /// Seqlock version: 0 = never written, odd = write in progress.
    seq: AtomicU64,
    curr: AtomicU64,
    lb: AtomicU64,
    ub: AtomicU64,
    /// `f64::to_bits` of each estimate.
    estimates: Vec<AtomicU64>,
    /// Monotone health flag. Kept *outside* the seqlock on purpose: it is
    /// raised both by the publishing monitor and — after execution has
    /// ended — by the session layer marking a failure, and monotonicity
    /// (fetch_max) makes those writers commute.
    health: AtomicU8,
    /// Monotone trust flag; same outside-the-seqlock rationale as
    /// `health`.
    trust: AtomicU8,
    names: Vec<&'static str>,
}

impl ProgressCell {
    /// An empty cell for a monitor reporting the named estimators.
    pub fn new(names: Vec<&'static str>) -> ProgressCell {
        ProgressCell {
            seq: AtomicU64::new(0),
            curr: AtomicU64::new(0),
            lb: AtomicU64::new(0),
            ub: AtomicU64::new(u64::MAX),
            estimates: names.iter().map(|_| AtomicU64::new(0)).collect(),
            health: AtomicU8::new(Health::Ok as u8),
            trust: AtomicU8::new(Trust::Ok as u8),
            names,
        }
    }

    /// Estimator names, in the order of [`ProgressReading::estimates`].
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Publishes one snapshot. Called by the single writer (the query
    /// thread's monitor); never blocks.
    ///
    /// The cell is the last line of defence for pollers: values that
    /// contradict the valid envelope — `LB > UB`, `Curr > UB`, non-finite
    /// or out-of-range estimates (all reachable when a fault corrupts the
    /// bounds mid-query) — are clamped into it and the cell's [`Health`]
    /// is raised to `Degraded`. A reader therefore always observes
    /// `LB ≤ UB` and estimates in `[0, 1]`, never NaN.
    ///
    /// # Panics
    /// Panics if `estimates.len()` differs from the cell's arity.
    pub fn publish(&self, curr: u64, lb: u64, ub: u64, estimates: &[f64]) {
        assert_eq!(
            estimates.len(),
            self.estimates.len(),
            "estimate arity mismatch"
        );
        let mut lb = lb;
        let mut ub = ub;
        let mut sanitized = estimates.to_vec();
        if clamp_snapshot(curr, &mut lb, &mut ub, &mut sanitized) {
            self.raise_health(Health::Degraded);
        }
        let v = self.seq.load(Ordering::Relaxed);
        self.seq.store(v.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        self.curr.store(curr, Ordering::Relaxed);
        self.lb.store(lb, Ordering::Relaxed);
        self.ub.store(ub, Ordering::Relaxed);
        for (slot, &e) in self.estimates.iter().zip(&sanitized) {
            slot.store(e.to_bits(), Ordering::Relaxed);
        }
        self.seq.store(v.wrapping_add(2), Ordering::Release);
    }

    /// Raises the health flag (monotone: never lowers it). Callable from
    /// any thread at any time — e.g. the session layer marking a query
    /// `Failed` after execution died without a final snapshot.
    pub fn raise_health(&self, h: Health) {
        self.health.fetch_max(h as u8, Ordering::Relaxed);
    }

    /// The current health flag. Meaningful even before the first
    /// publication (a query can fail before its first snapshot).
    pub fn health(&self) -> Health {
        Health::from_u8(self.health.load(Ordering::Relaxed))
    }

    /// Raises the trust flag (monotone: never lowers it). Raised by the
    /// publishing monitor when a regime shift is detected or an
    /// estimator reports degraded trust.
    pub fn raise_trust(&self, t: Trust) {
        self.trust.fetch_max(t as u8, Ordering::Relaxed);
    }

    /// The current trust flag.
    pub fn trust(&self) -> Trust {
        Trust::from_u8(self.trust.load(Ordering::Relaxed))
    }

    /// Convenience: publish a monitor snapshot (including its trust).
    pub fn publish_snapshot(&self, snap: &Snapshot) {
        self.raise_trust(snap.trust);
        self.publish(snap.curr, snap.lb, snap.ub, &snap.estimates);
    }

    /// The latest published snapshot, or `None` if nothing has been
    /// published yet. Lock-free; spins only across an in-flight write
    /// (a few dozen instructions on the writer side).
    pub fn read(&self) -> Option<ProgressReading> {
        loop {
            let v1 = self.seq.load(Ordering::Acquire);
            if v1 == 0 {
                return None;
            }
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let reading = ProgressReading {
                curr: self.curr.load(Ordering::Relaxed),
                lb: self.lb.load(Ordering::Relaxed),
                ub: self.ub.load(Ordering::Relaxed),
                estimates: self
                    .estimates
                    .iter()
                    .map(|b| f64::from_bits(b.load(Ordering::Relaxed)))
                    .collect(),
                health: self.health(),
                trust: self.trust(),
            };
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == v1 {
                return Some(reading);
            }
            std::hint::spin_loop();
        }
    }

    /// The estimate of the estimator called `name` in the latest reading.
    pub fn estimate(&self, name: &str) -> Option<f64> {
        let idx = self.names.iter().position(|n| *n == name)?;
        self.read().map(|r| r.estimates[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unwritten_cell_reads_none() {
        let cell = ProgressCell::new(vec!["pmax"]);
        assert_eq!(cell.read(), None);
        assert_eq!(cell.estimate("pmax"), None);
    }

    #[test]
    fn publish_then_read_round_trips() {
        let cell = ProgressCell::new(vec!["dne", "pmax"]);
        cell.publish(42, 100, 400, &[0.25, 0.5]);
        let r = cell.read().unwrap();
        assert_eq!(r.curr, 42);
        assert_eq!(r.lb, 100);
        assert_eq!(r.ub, 400);
        assert_eq!(r.estimates, vec![0.25, 0.5]);
        assert_eq!(cell.estimate("pmax"), Some(0.5));
        assert_eq!(cell.estimate("nope"), None);
    }

    #[test]
    fn contradicted_bounds_are_clamped_and_flagged() {
        let cell = ProgressCell::new(vec!["pmax"]);
        assert_eq!(cell.health(), Health::Ok);
        // LB > UB (a fault corrupted the envelope): the reading must come
        // back bounded, with health raised.
        cell.publish(10, 100, 50, &[0.5]);
        let r = cell.read().unwrap();
        assert!(r.lb <= r.ub, "clamped reading still inverted: {r:?}");
        assert_eq!((r.lb, r.ub), (100, 100));
        assert_eq!(r.health, Health::Degraded);
        // Health is monotone: a subsequent clean publish stays Degraded.
        cell.publish(20, 100, 200, &[0.5]);
        assert_eq!(cell.read().unwrap().health, Health::Degraded);
    }

    #[test]
    fn nan_and_out_of_range_estimates_never_reach_readers() {
        let cell = ProgressCell::new(vec!["a", "b", "c"]);
        cell.publish(50, 100, 200, &[f64::NAN, f64::INFINITY, 1.7]);
        let r = cell.read().unwrap();
        for e in &r.estimates {
            assert!(e.is_finite(), "non-finite estimate leaked: {r:?}");
            assert!((0.0..=1.0).contains(e), "unbounded estimate leaked: {r:?}");
        }
        // NaN/inf fall back to Curr/UB = 0.25; 1.7 clamps to 1.0.
        assert_eq!(r.estimates, vec![0.25, 0.25, 1.0]);
        assert_eq!(r.health, Health::Degraded);
    }

    #[test]
    fn zero_totals_produce_zero_not_nan() {
        let cell = ProgressCell::new(vec!["pmax"]);
        cell.publish(0, 0, 0, &[f64::NAN]);
        let r = cell.read().unwrap();
        assert_eq!(r.estimates, vec![0.0]);
        assert_eq!(r.health, Health::Degraded);
    }

    #[test]
    fn trust_is_monotone_and_independent_of_health() {
        let cell = ProgressCell::new(vec!["ensemble"]);
        cell.publish(10, 100, 200, &[0.1]);
        assert_eq!(cell.trust(), Trust::Ok);
        assert_eq!(cell.read().unwrap().trust, Trust::Ok);
        cell.raise_trust(Trust::Fallback);
        assert_eq!(cell.trust(), Trust::Fallback);
        // Monotone: a later Degraded does not lower it …
        cell.raise_trust(Trust::Degraded);
        assert_eq!(cell.trust(), Trust::Fallback);
        // … and a clean publish does not reset it.
        cell.publish(20, 100, 200, &[0.2]);
        let r = cell.read().unwrap();
        assert_eq!(r.trust, Trust::Fallback);
        // Health never moved: trust is a separate axis.
        assert_eq!(r.health, Health::Ok);
    }

    #[test]
    fn trust_tokens_round_trip() {
        for t in [Trust::Ok, Trust::Degraded, Trust::Fallback] {
            assert_eq!(t.as_str().parse::<Trust>().unwrap(), t);
        }
        assert!("bogus".parse::<Trust>().is_err());
    }

    #[test]
    fn regime_flags_are_sticky_and_describable() {
        let flags = RegimeFlags::new();
        assert!(!flags.any());
        assert_eq!(RegimeFlags::describe(flags.bits()), "-");
        flags.set(RegimeFlags::FAULT);
        flags.set(RegimeFlags::THRASH);
        flags.set(0); // no-op
        assert!(flags.any());
        assert_eq!(flags.bits(), RegimeFlags::FAULT | RegimeFlags::THRASH);
        assert_eq!(RegimeFlags::describe(flags.bits()), "fault+thrash");
        flags.set(RegimeFlags::CONTRADICTED);
        assert_eq!(
            RegimeFlags::describe(flags.bits()),
            "fault+thrash+contradicted"
        );
    }

    #[test]
    fn failure_health_is_visible_without_a_publication() {
        let cell = ProgressCell::new(vec!["pmax"]);
        cell.raise_health(Health::Failed);
        assert_eq!(cell.read(), None, "no snapshot was ever published");
        assert_eq!(cell.health(), Health::Failed);
        // And failure dominates later degradation.
        cell.raise_health(Health::Degraded);
        assert_eq!(cell.health(), Health::Failed);
    }

    #[test]
    fn last_write_wins() {
        let cell = ProgressCell::new(vec!["pmax"]);
        for i in 1..=10u64 {
            cell.publish(i, i, 2 * i, &[i as f64 / 10.0]);
        }
        let r = cell.read().unwrap();
        assert_eq!(r.curr, 10);
        assert_eq!(r.estimates, vec![1.0]);
    }

    /// Readers racing a fast writer must only ever observe *coherent*
    /// snapshots: every field from the same publication.
    #[test]
    fn concurrent_reads_are_coherent() {
        let cell = Arc::new(ProgressCell::new(vec!["a", "b"]));
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 1..=100_000u64 {
                    // All fields encode the same i (estimates stay inside
                    // [0, 1] so the publish-time clamp leaves them alone),
                    // so a torn read is detectable.
                    let e = i as f64 / 200_000.0;
                    cell.publish(i, i * 2, i * 3, &[e, e + 0.5]);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    while seen < 100_000 {
                        if let Some(r) = cell.read() {
                            assert_eq!(r.lb, r.curr * 2, "torn read: {r:?}");
                            assert_eq!(r.ub, r.curr * 3, "torn read: {r:?}");
                            let e = r.curr as f64 / 200_000.0;
                            assert_eq!(r.estimates[0], e, "torn read: {r:?}");
                            assert_eq!(r.estimates[1], e + 0.5, "torn read: {r:?}");
                            seen = seen.max(r.curr);
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
