//! Inter-query feedback (the paper's Section 6.4, final direction):
//! "use inter-query feedback, either across different runs of the same
//! query, or across runs of similar looking physical plans. This could be
//! used to bound the values of μ, the values of the variance, or even to
//! detect whether the tuple arrival order is predictive."
//!
//! This module implements that proposal:
//!
//! * [`PlanSignature`] — a structural fingerprint of a physical plan
//!   (operator kinds, shape, scanned tables) that matches across runs of
//!   the same or similar plans;
//! * [`FeedbackStore`] — a store of per-signature observations: μ, the
//!   per-driver-tuple work variance, and whether the realized order was
//!   2-predictive;
//! * [`FeedbackEstimator`] — a progress estimator that, when a prior for
//!   the plan's signature exists, predicts
//!   `total(Q) ≈ μ_prior · Σ scanned-leaf cardinalities` and divides
//!   `Curr` by it, clamped into the certain interval `[Curr/UB, Curr/LB]`
//!   so the feedback can never push it outside what the bounds prove.
//!   With no prior it falls back to `safe`.
//!
//! Theorem 7 still applies — no *guarantee* is possible, a prior can be
//! arbitrarily wrong for the next run — but when workloads repeat (the
//! common case the paper gestures at), the estimator converges to the
//! truth after a single observation. The `feedback` experiment in
//! `qp-bench` measures exactly that.

use crate::estimators::{EstimatorContext, ProgressEstimator, Safe};
use crate::model::PlanMeta;
use qp_exec::plan::{Plan, PlanNode};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A structural fingerprint of a plan: stable across runs, insensitive to
/// literal values (so "similar looking physical plans" — same shape,
/// different constants — share feedback, as the paper suggests).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanSignature(String);

impl PlanSignature {
    /// Computes the signature of a plan.
    pub fn of(plan: &Plan) -> PlanSignature {
        fn rec(plan: &Plan, id: usize, out: &mut String) {
            let n = plan.node(id);
            out.push('(');
            out.push_str(n.kind.op_name());
            match &n.kind {
                PlanNode::SeqScan { table, .. } | PlanNode::IndexRangeScan { table, .. } => {
                    out.push(':');
                    out.push_str(table);
                }
                PlanNode::IndexNestedLoopsJoin {
                    inner_table,
                    inner_index,
                    ..
                } => {
                    out.push(':');
                    out.push_str(inner_table);
                    out.push('/');
                    out.push_str(inner_index);
                }
                _ => {}
            }
            for &c in &n.children {
                rec(plan, c, out);
            }
            out.push(')');
        }
        let mut s = String::new();
        rec(plan, plan.root(), &mut s);
        PlanSignature(s)
    }
}

/// One run's recorded observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// μ = total(Q) / Σ scanned-leaf rows, from the completed run.
    pub mu: f64,
    /// `total(Q)` of the run (context for weighting).
    pub total: u64,
}

/// Aggregated prior for one plan signature: an exponentially-weighted
/// mean of observed μ (recent runs dominate, so the prior adapts if the
/// data shifts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prior {
    pub mu: f64,
    pub runs: u64,
}

/// A concurrent store of feedback observations keyed by plan signature.
#[derive(Debug, Clone, Default)]
pub struct FeedbackStore {
    inner: Arc<Mutex<HashMap<PlanSignature, Prior>>>,
}

/// Weight of the newest observation in the exponentially-weighted mean.
const EWMA_ALPHA: f64 = 0.5;

impl FeedbackStore {
    /// Creates an empty store.
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// Records a completed run's observation for `plan`.
    pub fn record(&self, plan: &Plan, obs: Observation) {
        let sig = PlanSignature::of(plan);
        let mut map = self.inner.lock().expect("store poisoned");
        let entry = map.entry(sig).or_insert(Prior {
            mu: obs.mu,
            runs: 0,
        });
        if entry.runs > 0 {
            entry.mu = EWMA_ALPHA * obs.mu + (1.0 - EWMA_ALPHA) * entry.mu;
        } else {
            entry.mu = obs.mu;
        }
        entry.runs += 1;
    }

    /// Convenience: record from a completed run's counters.
    pub fn record_run(&self, plan: &Plan, meta: &PlanMeta, node_counts: &[u64]) {
        let mu = crate::model::mu_from_counts(meta, node_counts);
        if mu.is_finite() {
            self.record(
                plan,
                Observation {
                    mu,
                    total: node_counts.iter().sum(),
                },
            );
        }
    }

    /// The current prior for `plan`, if any run has been recorded.
    pub fn prior(&self, plan: &Plan) -> Option<Prior> {
        self.inner
            .lock()
            .expect("store poisoned")
            .get(&PlanSignature::of(plan))
            .copied()
    }

    /// Prior by precomputed signature.
    pub fn prior_for(&self, sig: &PlanSignature) -> Option<Prior> {
        self.inner.lock().expect("store poisoned").get(sig).copied()
    }

    /// Number of distinct signatures with feedback.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store poisoned").len()
    }

    /// True when no feedback has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A progress estimator driven by inter-query feedback (Section 6.4).
#[derive(Debug, Clone)]
pub struct FeedbackEstimator {
    prior: Option<Prior>,
    fallback: Safe,
}

impl FeedbackEstimator {
    /// Builds the estimator for a specific plan against a store. The
    /// prior is looked up once (the plan doesn't change mid-run).
    pub fn for_plan(store: &FeedbackStore, plan: &Plan) -> FeedbackEstimator {
        FeedbackEstimator {
            prior: store.prior(plan),
            fallback: Safe,
        }
    }

    /// An estimator with an explicit prior (for tests).
    pub fn with_prior(mu: f64) -> FeedbackEstimator {
        FeedbackEstimator {
            prior: Some(Prior { mu, runs: 1 }),
            fallback: Safe,
        }
    }

    /// Whether a prior is loaded.
    pub fn has_prior(&self) -> bool {
        self.prior.is_some()
    }
}

impl ProgressEstimator for FeedbackEstimator {
    fn name(&self) -> &'static str {
        "feedback"
    }

    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        let Some(prior) = self.prior else {
            return self.fallback.estimate(cx);
        };
        // Predicted total: μ_prior × Σ scanned-leaf cardinalities, where
        // unknown (range-scan) leaves contribute their rows-so-far.
        let leaf_sum: f64 = cx
            .meta
            .scanned_leaves
            .iter()
            .map(|&(id, card)| card.unwrap_or(cx.produced[id]) as f64)
            .sum();
        if leaf_sum <= 0.0 {
            return self.fallback.estimate(cx);
        }
        let predicted_total = (prior.mu * leaf_sum).max(1.0);
        let raw = cx.curr as f64 / predicted_total;
        // Clamp into the interval the bounds *prove* — feedback can focus
        // the estimate inside it but never contradict it.
        let lo = cx.curr as f64 / cx.ub_total.max(1) as f64;
        let hi = (cx.curr as f64 / cx.lb_total.max(1) as f64).min(1.0);
        raw.clamp(lo.min(hi), hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_exec::plan::{JoinType, PlanBuilder};
    use qp_exec::Expr;
    use qp_storage::{ColumnType, Database, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("a", ColumnType::Int)]),
            (0..500).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        db.create_table_with_rows(
            "u",
            Schema::of(&[("x", ColumnType::Int)]),
            (0..100).map(|i| vec![Value::Int(i % 10)]),
        )
        .unwrap();
        db.create_index("u_x", "u", &["x"], false).unwrap();
        db
    }

    fn join_plan(db: &Database) -> qp_exec::Plan {
        PlanBuilder::scan(db, "t")
            .unwrap()
            .inl_join(db, "u", "u_x", vec![0], JoinType::Inner, false, None)
            .unwrap()
            .build()
    }

    #[test]
    fn signature_is_stable_and_literal_insensitive() {
        let db = db();
        let p1 = PlanBuilder::scan(&db, "t")
            .unwrap()
            .filter(Expr::col_eq(0, 5i64))
            .build();
        let p2 = PlanBuilder::scan(&db, "t")
            .unwrap()
            .filter(Expr::col_eq(0, 400i64))
            .build();
        assert_eq!(PlanSignature::of(&p1), PlanSignature::of(&p2));
        let p3 = join_plan(&db);
        assert_ne!(PlanSignature::of(&p1), PlanSignature::of(&p3));
    }

    #[test]
    fn store_records_and_averages() {
        let db = db();
        let plan = join_plan(&db);
        let store = FeedbackStore::new();
        assert!(store.prior(&plan).is_none());
        store.record(
            &plan,
            Observation {
                mu: 2.0,
                total: 1000,
            },
        );
        assert_eq!(store.prior(&plan).unwrap().mu, 2.0);
        store.record(
            &plan,
            Observation {
                mu: 4.0,
                total: 1000,
            },
        );
        let p = store.prior(&plan).unwrap();
        assert_eq!(p.runs, 2);
        assert!((p.mu - 3.0).abs() < 1e-12, "ewma mu {}", p.mu);
    }

    #[test]
    fn second_run_with_feedback_is_nearly_exact() {
        let db = db();
        let plan = join_plan(&db);
        let store = FeedbackStore::new();

        // First run: no prior — record the observation.
        let meta = crate::model::PlanMeta::from_plan(&plan);
        let (out, _) = qp_exec::run_query(&plan, &db, None).unwrap();
        store.record_run(&plan, &meta, &out.node_counts);
        assert_eq!(store.len(), 1);

        // Second run: the estimator knows μ and should track progress.
        let est = FeedbackEstimator::for_plan(&store, &plan);
        assert!(est.has_prior());
        let (_, trace) =
            crate::monitor::run_with_progress(&plan, &db, None, vec![Box::new(est)], Some(5))
                .unwrap();
        let stats = crate::metrics::error_stats(&trace, "feedback").unwrap();
        assert!(
            stats.max_abs < 0.02,
            "feedback should be near-exact on a repeated run: {stats:?}"
        );
    }

    #[test]
    fn no_prior_falls_back_to_safe() {
        let db = db();
        let plan = join_plan(&db);
        let store = FeedbackStore::new();
        let mut est = FeedbackEstimator::for_plan(&store, &plan);
        assert!(!est.has_prior());
        let meta = crate::model::PlanMeta::from_plan(&plan);
        let produced = vec![100u64, 50];
        let cx = EstimatorContext {
            produced: &produced,
            exhausted: &[false, false],
            curr: 150,
            lb_total: 650,
            ub_total: 50_500,
            meta: &meta,
            node_bounds: &[],
        };
        let mut safe = Safe;
        assert_eq!(est.estimate(&cx), safe.estimate(&cx));
    }

    #[test]
    fn feedback_never_escapes_the_proven_interval() {
        // A wildly wrong prior is clamped into [Curr/UB, Curr/LB].
        let db = db();
        let plan = join_plan(&db);
        let meta = crate::model::PlanMeta::from_plan(&plan);
        let produced = vec![250u64, 100];
        let cx = EstimatorContext {
            produced: &produced,
            exhausted: &[false, false],
            curr: 350,
            lb_total: 600,
            ub_total: 1_000,
            meta: &meta,
            node_bounds: &[],
        };
        for wild_mu in [1e-6, 1e6] {
            let mut est = FeedbackEstimator::with_prior(wild_mu);
            let e = est.estimate(&cx);
            let lo = 350.0 / 1_000.0;
            let hi = 350.0 / 600.0;
            assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "mu={wild_mu}: {e}");
        }
    }
}
