//! Input-order analysis (Section 4.2): per-tuple work vectors, variance,
//! predictive orders (Property 2, Theorems 3 and 4).
//!
//! The driver-node estimator's accuracy is governed entirely by the
//! relationship between the *order* in which driver tuples arrive and the
//! *work* each tuple causes downstream. This module makes that analysis
//! executable:
//!
//! * [`WorkVector`] summarizes a per-driver-tuple work distribution
//!   (μ, variance);
//! * [`is_c_predictive`] tests the paper's definition: an order is
//!   c-predictive if, once half the tuples have been retrieved, the
//!   average work per tuple so far is within a factor `c` of μ;
//! * [`predictive_fraction`] estimates the fraction of random orders that
//!   are c-predictive (Theorem 4: at least ½ of all orders are
//!   2-predictive);
//! * [`dne_expected_error`] Monte-Carlo-verifies Theorem 3 (E\[err\] = 0
//!   under random order).

use qp_exec::{Counters, ExecEvent, NodeId, Observer};
use qp_testkit::rng::TestRng;

/// A per-driver-tuple work distribution in a fixed order: `work[i]` is the
/// number of getnext calls attributable to driver tuple `i` (its own
/// retrieval plus everything it causes downstream).
#[derive(Debug, Clone)]
pub struct WorkVector {
    work: Vec<u64>,
}

impl WorkVector {
    pub fn new(work: Vec<u64>) -> WorkVector {
        assert!(!work.is_empty(), "work vector must be non-empty");
        WorkVector { work }
    }

    /// The per-tuple work values in driver order.
    pub fn values(&self) -> &[u64] {
        &self.work
    }

    /// Number of driver tuples `N`.
    pub fn len(&self) -> usize {
        self.work.len()
    }

    /// True if empty (never constructed so; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.work.is_empty()
    }

    /// Total work `total(Q)` restricted to this pipeline.
    pub fn total(&self) -> u64 {
        self.work.iter().sum()
    }

    /// μ — mean work per driver tuple.
    pub fn mu(&self) -> f64 {
        self.total() as f64 / self.len() as f64
    }

    /// Population variance of the per-tuple work — the `var` of Theorem 3's
    /// convergence discussion (Var(err) ∝ var/N).
    pub fn variance(&self) -> f64 {
        let mu = self.mu();
        self.work
            .iter()
            .map(|&w| {
                let d = w as f64 - mu;
                d * d
            })
            .sum::<f64>()
            / self.len() as f64
    }

    /// The dne estimate after `k` tuples: `k / N`.
    pub fn dne_at(&self, k: usize) -> f64 {
        k as f64 / self.len() as f64
    }

    /// The true progress (within this pipeline) after `k` tuples:
    /// work-so-far / total-work.
    pub fn progress_at(&self, k: usize) -> f64 {
        let done: u64 = self.work[..k].iter().sum();
        done as f64 / self.total() as f64
    }
}

/// Is the order `c`-predictive? (Section 4.2.) After half the tuples have
/// been retrieved, the average work per tuple seen so far must be within a
/// factor `c` of the overall average μ.
pub fn is_c_predictive(wv: &WorkVector, c: f64) -> bool {
    assert!(c >= 1.0, "predictiveness factor must be >= 1");
    let half = wv.len().div_ceil(2);
    let mu = wv.mu();
    let seen: u64 = wv.values()[..half].iter().sum();
    let avg_so_far = seen as f64 / half as f64;
    // "within a factor c of μ" — both directions.
    avg_so_far <= c * mu && mu <= c * avg_so_far
}

/// Property 2: given a c-predictive order, the dne ratio error after half
/// the driver tuples. Returns the worst ratio error of dne over the second
/// half of the execution.
pub fn dne_ratio_error_after_half(wv: &WorkVector) -> f64 {
    let n = wv.len();
    let mut worst = 1.0f64;
    for k in n.div_ceil(2)..=n {
        let dne = wv.dne_at(k);
        let prog = wv.progress_at(k);
        if prog > 0.0 && dne > 0.0 {
            worst = worst.max((dne / prog).max(prog / dne));
        }
    }
    worst
}

/// Monte-Carlo estimate of the fraction of uniformly random orders of the
/// given work multiset that are `c`-predictive (Theorem 4 claims ≥ ½ for
/// c = 2, for *any* multiset).
pub fn predictive_fraction(work: &[u64], c: f64, trials: usize, seed: u64) -> f64 {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut shuffled: Vec<u64> = work.to_vec();
    let mut hits = 0usize;
    for _ in 0..trials {
        // Fisher–Yates.
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..=i);
            shuffled.swap(i, j);
        }
        if is_c_predictive(&WorkVector::new(shuffled.clone()), c) {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

/// An executor observer that measures the *realized* per-driver-tuple
/// work vector of a single-pipeline query: the number of getnext calls
/// (across the whole plan) that occur between consecutive rows of the
/// driver node. This turns a live execution into the [`WorkVector`] the
/// Section 4.2 analysis operates on — μ, variance, and predictiveness of
/// the actual input order.
///
/// Attribution note: all work between driver row `i` and driver row `i+1`
/// is charged to tuple `i`, matching the paper's "work done for that
/// tuple" notion for pipelined plans.
#[derive(Debug)]
pub struct WorkProfiler {
    driver: NodeId,
    /// Total getnext calls at the time each driver row appeared.
    marks: Vec<u64>,
    total: u64,
}

impl WorkProfiler {
    /// Creates a profiler for the given driver node id.
    pub fn new(driver: NodeId) -> WorkProfiler {
        WorkProfiler {
            driver,
            marks: Vec::new(),
            total: 0,
        }
    }

    /// The per-driver-tuple work vector observed (call after the run).
    /// Returns `None` if the driver never produced a row.
    pub fn work_vector(&self) -> Option<WorkVector> {
        if self.marks.is_empty() {
            return None;
        }
        let mut work = Vec::with_capacity(self.marks.len());
        for (i, &m) in self.marks.iter().enumerate() {
            let end = self.marks.get(i + 1).copied().unwrap_or(self.total + 1);
            // Tuple i owns everything from its own getnext (inclusive) to
            // the next driver tuple's getnext (exclusive).
            work.push(end - m);
        }
        Some(WorkVector::new(work))
    }
}

impl Observer for WorkProfiler {
    fn on_event(&mut self, event: ExecEvent, counters: &Counters) {
        if let ExecEvent::RowProduced(node) = event {
            self.total = counters.total();
            if node == self.driver {
                self.marks.push(self.total);
            }
        }
    }
}

/// Profiles a single-pipeline plan: runs it and returns the realized
/// per-driver-tuple work vector, with the driver taken as the pipeline's
/// single source.
///
/// # Errors
/// Fails if the plan has multiple pipelines/sources (the paper's analysis
/// — and this profiler — targets single pipelines) or if execution fails.
pub fn profile_work(plan: &qp_exec::Plan, db: &qp_storage::Database) -> Result<WorkVector, String> {
    let pipelines = qp_exec::pipeline::decompose(plan);
    if pipelines.len() != 1 || pipelines[0].sources.len() != 1 {
        return Err(format!(
            "work profiling needs a single pipeline with one source; got {} pipelines",
            pipelines.len()
        ));
    }
    let driver = pipelines[0].sources[0].node();
    let profiler = std::sync::Arc::new(std::sync::Mutex::new(WorkProfiler::new(driver)));
    struct Shared(std::sync::Arc<std::sync::Mutex<WorkProfiler>>);
    impl Observer for Shared {
        fn on_event(&mut self, event: ExecEvent, counters: &Counters) {
            self.0
                .lock()
                .expect("profiler lock")
                .on_event(event, counters);
        }
    }
    qp_exec::run_query(
        plan,
        db,
        Some(Box::new(Shared(std::sync::Arc::clone(&profiler)))),
    )
    .map_err(|e| e.to_string())?;
    let wv = profiler
        .lock()
        .expect("profiler lock")
        .work_vector()
        .ok_or_else(|| "driver produced no rows".to_string())?;
    Ok(wv)
}

/// Monte-Carlo estimate of Var(err) of dne at checkpoint `k` over random
/// orders — Theorem 3's convergence discussion says this is proportional
/// to `var / N`.
pub fn dne_error_variance(work: &[u64], k: usize, trials: usize, seed: u64) -> f64 {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut shuffled: Vec<u64> = work.to_vec();
    let mut errs = Vec::with_capacity(trials);
    for _ in 0..trials {
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..=i);
            shuffled.swap(i, j);
        }
        let wv = WorkVector::new(shuffled.clone());
        errs.push(wv.progress_at(k) - wv.dne_at(k));
    }
    let mean = errs.iter().sum::<f64>() / trials as f64;
    errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / trials as f64
}

/// Monte-Carlo check of Theorem 3: the expected dne error at a fixed
/// checkpoint `k`, over uniformly random orders. Returns the mean signed
/// error `E[progress − dne]`, which the theorem says is 0.
pub fn dne_expected_error(work: &[u64], k: usize, trials: usize, seed: u64) -> f64 {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut shuffled: Vec<u64> = work.to_vec();
    let mut sum_err = 0.0;
    for _ in 0..trials {
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..=i);
            shuffled.swap(i, j);
        }
        let wv = WorkVector::new(shuffled.clone());
        sum_err += wv.progress_at(k) - wv.dne_at(k);
    }
    sum_err / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu_and_variance() {
        let wv = WorkVector::new(vec![1, 1, 1, 5]);
        assert!((wv.mu() - 2.0).abs() < 1e-12);
        assert!((wv.variance() - 3.0).abs() < 1e-12); // ((1+1+1+9)·... ) -> (1+1+1+9)/4=3
    }

    #[test]
    fn uniform_work_is_always_1_predictive() {
        let wv = WorkVector::new(vec![3; 100]);
        assert!(is_c_predictive(&wv, 1.0));
        assert!((dne_ratio_error_after_half(&wv) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_last_order_is_not_predictive() {
        // 99 tuples of work 1, then one of work 1000: the first half sees
        // avg 1 while μ ≈ 11 — not 2-predictive.
        let mut work = vec![1u64; 99];
        work.push(1000);
        let wv = WorkVector::new(work);
        assert!(!is_c_predictive(&wv, 2.0));
    }

    #[test]
    fn skew_first_order_sits_at_the_2_predictive_boundary() {
        // One huge element first: the first half carries ~all the work, so
        // the half-point average is ≈ 2μ — just barely 2-predictive and
        // decisively not 1.9-predictive. (This is exactly the Theorem 4
        // boundary case.)
        let mut work = vec![1000u64];
        work.extend(vec![1u64; 99]);
        let wv = WorkVector::new(work);
        assert!(is_c_predictive(&wv, 2.0));
        assert!(!is_c_predictive(&wv, 1.9));
    }

    #[test]
    fn theorem4_at_least_half_orders_are_2_predictive() {
        // Try several adversarial multisets; Theorem 4 says ≥ 1/2 of
        // orders are 2-predictive for any of them.
        let cases: Vec<Vec<u64>> = vec![
            {
                let mut v = vec![1u64; 99];
                v.push(10_000);
                v
            },
            (1..=100u64).collect(),
            vec![1, 1, 1, 1000, 1000, 1000],
            {
                let mut v = vec![0u64; 50];
                v.extend(vec![100u64; 50]);
                v
            },
        ];
        for work in cases {
            let frac = predictive_fraction(&work, 2.0, 2000, 42);
            assert!(
                frac >= 0.45,
                "only {frac} of orders 2-predictive for {work:?}"
            );
        }
    }

    #[test]
    fn theorem3_zero_expected_error_under_random_order() {
        let mut work = vec![1u64; 90];
        work.extend(vec![500u64; 10]);
        for &k in &[10usize, 50, 90] {
            let e = dne_expected_error(&work, k, 4000, 7);
            assert!(e.abs() < 0.02, "E[err] = {e} at k={k}");
        }
    }

    #[test]
    fn variance_shrinks_with_population_size() {
        // Var(err) ∝ var/N (Theorem 3's convergence discussion): growing N
        // with the same per-tuple distribution shrinks the error variance
        // at the midpoint roughly linearly.
        let mk =
            |n: usize| -> Vec<u64> { (0..n).map(|i| if i % 10 == 0 { 50 } else { 1 }).collect() };
        let v_small = dne_error_variance(&mk(50), 25, 3000, 11);
        let v_large = dne_error_variance(&mk(500), 250, 3000, 11);
        assert!(
            v_large < v_small / 4.0,
            "variance didn't shrink: {v_small} -> {v_large}"
        );
    }

    #[test]
    fn work_profiler_recovers_fanout() {
        // Single-pipeline INL join: per-tuple work = 1 + fan-out.
        use qp_exec::plan::{JoinType, PlanBuilder};
        use qp_storage::{ColumnType, Database, Schema, Value};
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("a", ColumnType::Int)]),
            (0..10).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        // u: key 3 appears 5 times, key 7 twice, others absent.
        let u_rows: Vec<Vec<Value>> = std::iter::repeat_n(3i64, 5)
            .chain(std::iter::repeat_n(7i64, 2))
            .map(|v| vec![Value::Int(v)])
            .collect();
        db.create_table_with_rows("u", Schema::of(&[("x", ColumnType::Int)]), u_rows)
            .unwrap();
        db.create_index("u_x", "u", &["x"], false).unwrap();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .inl_join(&db, "u", "u_x", vec![0], JoinType::Inner, false, None)
            .unwrap()
            .build();
        let wv = profile_work(&plan, &db).unwrap();
        let expected: Vec<u64> = (0..10)
            .map(|i| match i {
                3 => 6, // itself + 5 matches
                7 => 3, // itself + 2 matches
                _ => 1,
            })
            .collect();
        assert_eq!(wv.values(), expected.as_slice());
        assert_eq!(wv.total(), 17);
    }

    #[test]
    fn profile_rejects_multi_pipeline_plans() {
        use qp_exec::plan::{JoinType, PlanBuilder};
        use qp_storage::{ColumnType, Database, Schema, Value};
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("a", ColumnType::Int)]),
            (0..5).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        db.create_table_with_rows(
            "u",
            Schema::of(&[("x", ColumnType::Int)]),
            (0..5).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .hash_join(
                PlanBuilder::scan(&db, "u").unwrap(),
                vec![0],
                vec![0],
                JoinType::Inner,
                true,
            )
            .unwrap()
            .build();
        assert!(profile_work(&plan, &db).is_err());
    }

    #[test]
    fn property2_predictive_order_bounds_dne() {
        // A 1.5-predictive order: mild front-loading.
        let mut work = vec![2u64; 50];
        work.extend(vec![1u64; 50]);
        let wv = WorkVector::new(work);
        assert!(is_c_predictive(&wv, 1.5));
        let err = dne_ratio_error_after_half(&wv);
        assert!(err <= 1.5 + 1e-9, "ratio error {err} exceeds c");
    }
}
