//! The lower-bound construction (Section 3, Example 1, Theorem 1).
//!
//! Two *twin* instances of `R1` that differ in a single tuple `t` placed
//! after 90% of the relation:
//!
//! * in the **X twin**, `t.A = x` — a value matching *nothing* in `R2`;
//! * in the **Y twin**, `t.A = y` — a value matching a huge block of `R2`.
//!
//! Both values live inside the same histogram bucket, so every lossy
//! single-relation statistic is identical across the twins; and the first
//! 90% of the execution trace is byte-for-byte identical. Any progress
//! estimator therefore returns the *same* estimate at the decision
//! instant on both twins — yet the true progress is ≈0.9 on one and ≈0.09
//! on the other. Whatever it answers, on one twin its ratio error is at
//! least `√(progress_x / progress_y)`, and the threshold requirement
//! fails for every `(τ, δ)` with `0 < τ−δ` and `τ+δ < 1` (Theorem 1).

use qp_exec::plan::{JoinType, Plan, PlanBuilder};
use qp_exec::{CmpOp, Expr};
use qp_stats::TableStats;
use qp_storage::{ColumnType, Database, Schema, Value};

/// The twin construction. `n` is `|R1|`; `R2` holds `9n` rows of the `y`
/// value (so `|R2| ≈ 9|R1|`, within the paper's `|R2| = 10|R1|` regime).
pub struct AdversarialPair {
    /// Database holding the X twin of `r1` (victim does not join).
    pub db_x: Database,
    /// Database holding the Y twin of `r1` (victim joins all of `r2`).
    pub db_y: Database,
    /// `|R1|`.
    pub n: usize,
    /// Position (0-based) of the victim tuple in `r1`'s heap order.
    pub victim_pos: usize,
    /// The two twin values.
    pub x: i64,
    pub y: i64,
}

/// Number of `R2` rows per `R1` row in the construction.
const FANOUT_FACTOR: usize = 9;

impl AdversarialPair {
    /// Builds the twins. `n` must be at least 10.
    pub fn construct(n: usize) -> AdversarialPair {
        assert!(n >= 10, "need at least 10 rows");
        // Keep the victim strictly inside a histogram bucket (never the
        // bucket's lo/hi element) so twin histograms match exactly: offset
        // it off the round 90% position, which equi-depth bucketing tends
        // to use as a boundary.
        let victim_pos = (n * 9 / 10 + 3).min(n - 1);
        // R1 values are multiples of 10 (in heap order); the twins differ
        // only in the victim's value: x = its natural value, y = x + 1
        // (inside the same equi-depth bucket, absent elsewhere).
        let x = (victim_pos as i64) * 10;
        let y = x + 1;
        let r1_schema = Schema::of(&[("a", ColumnType::Int)]);
        let mk_r1 = |victim_value: i64| {
            (0..n).map(move |i| {
                let v = if i == victim_pos {
                    victim_value
                } else {
                    (i as i64) * 10
                };
                vec![Value::Int(v)]
            })
        };
        let r2_rows = (0..FANOUT_FACTOR * n).map(|_| vec![Value::Int(y)]);

        let mut db_x = Database::new();
        db_x.create_table_with_rows("r1", r1_schema.clone(), mk_r1(x))
            .expect("fresh db");
        db_x.create_table_with_rows("r2", Schema::of(&[("b", ColumnType::Int)]), r2_rows.clone())
            .expect("fresh db");
        db_x.create_index("r2_b", "r2", &["b"], false)
            .expect("index");

        let mut db_y = Database::new();
        db_y.create_table_with_rows("r1", r1_schema, mk_r1(y))
            .expect("fresh db");
        db_y.create_table_with_rows("r2", Schema::of(&[("b", ColumnType::Int)]), r2_rows)
            .expect("fresh db");
        db_y.create_index("r2_b", "r2", &["b"], false)
            .expect("index");

        AdversarialPair {
            db_x,
            db_y,
            n,
            victim_pos,
            x,
            y,
        }
    }

    /// The Figure 2 plan over one of the twins: `σ(A = x ∨ A = y)` over a
    /// scan of `r1`, index-nested-loops joined with `r2`.
    pub fn plan(&self, db: &Database) -> Plan {
        PlanBuilder::scan(db, "r1")
            .expect("r1 exists")
            .filter(Expr::Or(vec![
                Expr::cmp(CmpOp::Eq, Expr::Col(0), Expr::Lit(Value::Int(self.x))),
                Expr::cmp(CmpOp::Eq, Expr::Col(0), Expr::Lit(Value::Int(self.y))),
            ]))
            // Linear: r1.a is unique, so the output is bounded by |r2| —
            // Example 1 is explicitly carried out within the class of
            // linear joins.
            .inl_join(db, "r2", "r2_b", vec![0], JoinType::Inner, true, None)
            .expect("index exists")
            .build()
    }

    /// Verifies the lossiness premise: the per-column equi-depth
    /// histograms of the two `r1` twins are identical.
    pub fn stats_identical(&self, buckets: usize) -> bool {
        let tx = self.db_x.table("r1").expect("r1");
        let ty = self.db_y.table("r1").expect("r1");
        let sx = TableStats::build(&tx, buckets);
        let sy = TableStats::build(&ty, buckets);
        sx.column(0).histogram == sy.column(0).histogram
    }

    /// `Curr` at the decision instant: the victim is the next tuple to be
    /// retrieved, i.e. `victim_pos` scan getnexts have happened and the
    /// filter has passed nothing yet.
    pub fn decision_curr(&self) -> u64 {
        self.victim_pos as u64
    }

    /// True progress at the decision instant on each twin, computed from
    /// actual runs: `(progress_on_x, progress_on_y)`.
    pub fn decision_progress(&self) -> (f64, f64) {
        let plan_x = self.plan(&self.db_x);
        let plan_y = self.plan(&self.db_y);
        let (out_x, _) = qp_exec::run_query(&plan_x, &self.db_x, None).expect("x runs");
        let (out_y, _) = qp_exec::run_query(&plan_y, &self.db_y, None).expect("y runs");
        let curr = self.decision_curr() as f64;
        (
            curr / out_x.total_getnext as f64,
            curr / out_y.total_getnext as f64,
        )
    }

    /// Given the (necessarily identical) estimate an estimator returns at
    /// the decision instant, the ratio error it is forced to suffer on
    /// the worse twin.
    pub fn forced_ratio_error(&self, estimate: f64) -> f64 {
        let (px, py) = self.decision_progress();
        crate::metrics::ratio_error(estimate, px).max(crate::metrics::ratio_error(estimate, py))
    }

    /// The best ratio error *any* estimator can guarantee on this pair:
    /// `√(px / py)`, achieved by answering the geometric mean — exactly
    /// the `safe` strategy (Theorem 6's optimality).
    pub fn best_achievable_ratio(&self) -> f64 {
        let (px, py) = self.decision_progress();
        (px.max(py) / px.min(py)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twins_have_identical_histograms() {
        let pair = AdversarialPair::construct(1_000);
        assert!(pair.stats_identical(100));
        assert!(pair.stats_identical(10));
    }

    #[test]
    fn twins_diverge_enormously_in_total_work() {
        let pair = AdversarialPair::construct(1_000);
        let plan_x = pair.plan(&pair.db_x);
        let plan_y = pair.plan(&pair.db_y);
        let (out_x, _) = qp_exec::run_query(&plan_x, &pair.db_x, None).unwrap();
        let (out_y, _) = qp_exec::run_query(&plan_y, &pair.db_y, None).unwrap();
        // X: scan 1000 + σ 1 + join 0; Y: scan 1000 + σ 1 + join 9000.
        assert_eq!(out_x.total_getnext, 1_001);
        assert_eq!(out_y.total_getnext, 10_001);
    }

    #[test]
    fn decision_point_progress_gap_matches_paper() {
        let pair = AdversarialPair::construct(1_000);
        let (px, py) = pair.decision_progress();
        assert!((px - 0.9).abs() < 0.01, "px = {px}");
        assert!((py - 0.09).abs() < 0.01, "py = {py}");
    }

    #[test]
    fn every_answer_is_forced_into_large_error() {
        let pair = AdversarialPair::construct(1_000);
        let best = pair.best_achievable_ratio();
        assert!(best > 3.0, "gap too small: {best}");
        // No answer does better than the geometric mean...
        for &e in &[0.05, 0.09, 0.2, 0.5, 0.9, 0.99] {
            assert!(
                pair.forced_ratio_error(e) >= best - 1e-6,
                "estimate {e} beat the bound"
            );
        }
        // ...and the geometric mean achieves it.
        let (px, py) = pair.decision_progress();
        let geo = (px * py).sqrt();
        assert!((pair.forced_ratio_error(geo) - best).abs() < 1e-6);
    }

    #[test]
    fn execution_prefixes_are_identical_before_victim() {
        // The first victim_pos getnext events are the same on both twins
        // (scan rows only; the filter passes nothing).
        let pair = AdversarialPair::construct(500);
        let plan_x = pair.plan(&pair.db_x);
        let plan_y = pair.plan(&pair.db_y);
        let (out_x, _) = qp_exec::run_query(&plan_x, &pair.db_x, None).unwrap();
        let (out_y, _) = qp_exec::run_query(&plan_y, &pair.db_y, None).unwrap();
        // Scan node produced the full relation on both; filter output
        // differs only in rows at/after the victim.
        assert_eq!(out_x.node_counts[0], out_y.node_counts[0]);
        assert_eq!(out_x.node_counts[1], 1);
        assert_eq!(out_y.node_counts[1], 1);
    }
}
