//! # qp-progress — query progress estimation with worst-case analysis
//!
//! The core of the reproduction of *"When Can We Trust Progress Estimators
//! for SQL Queries?"* (Chaudhuri, Kaushik, Ramamurthy; SIGMOD 2005).
//!
//! Progress is defined under the **GetNext model** (Section 2.2): after a
//! prefix `s` of the query's getnext sequence, `progress(s) = |s| /
//! total(Q)`. A progress estimator sees the plan, the database statistics,
//! and the execution feedback so far — nothing else — and must estimate
//! that fraction.
//!
//! ## The tool-kit
//!
//! | Estimator | Definition | Guarantee |
//! |-----------|------------|-----------|
//! | [`estimators::Dne`] | fraction of the driver node consumed, weighted across pipelines | exact in expectation under random input order (Thm 3); ratio ≤ c after 50% under a c-predictive order (Prop 2) |
//! | [`estimators::Pmax`] | `Curr / LB` | never underestimates (Prop 4); ratio ≤ μ (Thm 5) |
//! | [`estimators::Safe`] | `Curr / √(LB·UB)` | ratio ≤ √(UB/LB); **worst-case optimal** (Thm 6) |
//! | [`estimators::EstTotal`] | `Curr / Σ optimizer estimates` | none (the baseline the paper argues against) |
//! | [`estimators::DneClamped`] | `dne` clamped into `[Curr/UB, Curr/LB]` | inherits the scan-based bound of Property 6 |
//! | [`estimators::DneRefined`] | `dne` with reference \[5\]'s runtime estimate refinement | corrects downstream estimates as inputs finish |
//! | [`estimators::Hybrid`] | `safe`, switching to `pmax` when observed μ̂ is small | heuristic (Section 6.4 — Thms 7/8 show no *provable* switch exists) |
//! | [`feedback::FeedbackEstimator`] | `Curr / (μ_prior · Σ leaf cards)`, clamped to the proven interval | §6.4 inter-query feedback, implemented |
//! | [`bytes_model::BytesPmax`] / [`bytes_model::BytesSafe`] | the same formulas under reference \[13\]'s bytes-processed model | same guarantees, byte-weighted |
//!
//! `LB`/`UB` are run-time bounds on `total(Q)` maintained by
//! [`bounds::BoundsTracker`] per Section 5.1: exact cardinalities at scan
//! leaves, rows-produced-so-far as lower bounds everywhere, linearity for
//! σ/π/γ and linear (e.g. key–FK) joins, histogram boundaries for range
//! scans, and finalization as operators exhaust.
//!
//! [`monitor::ProgressMonitor`] plugs all of this into the executor as an
//! observer, snapshotting every estimator at a configurable getnext
//! stride; [`metrics`] scores the recorded traces (ratio error, absolute
//! error, the (τ, δ) threshold requirement of Section 2.5); [`analysis`]
//! contains the order-predictiveness machinery of Section 4.2 (Theorems 3
//! and 4); and [`adversary`] constructs the twin instances of Example 1
//! that defeat *every* estimator (Theorem 1).

pub mod adversary;
pub mod analysis;
pub mod bounds;
pub mod bytes_model;
pub mod estimators;
pub mod feedback;
pub mod metrics;
pub mod model;
pub mod monitor;
pub mod shared;

pub use bounds::BoundsTracker;
pub use bytes_model::{BytesPmax, BytesSafe, RowWidths};
pub use estimators::{
    estimator_by_name, parse_suite, Dne, DneClamped, DneRefined, Ensemble, EnsembleStats, EstTotal,
    EstimatorContext, Hybrid, Pmax, ProgressEstimator, Safe, Trivial, ENSEMBLE_MEMBERS,
    ESTIMATOR_NAMES,
};
pub use feedback::{FeedbackEstimator, FeedbackStore, PlanSignature};
pub use metrics::{score_checkpoints, threshold_requirement_holds, ErrorStats, PointScore};
pub use model::{mu_from_counts, PlanMeta};
pub use monitor::{ProgressMonitor, ProgressTrace, Snapshot};
pub use shared::{clamp_snapshot, Health, ProgressCell, ProgressReading, RegimeFlags, Trust};
