//! The progress estimator tool-kit (Sections 4–6 of the paper).

use crate::model::{mu_observed, PlanMeta};
use crate::shared::{RegimeFlags, Trust};
use qp_exec::pipeline::Source;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Everything an estimator may consult at a snapshot instant — the
/// estimator-visible state of Figure 1: execution feedback (counts,
/// exhaustion), the plan (via [`PlanMeta`]), and statistics-derived bounds.
/// Notably absent: the data itself.
#[derive(Debug, Clone, Copy)]
pub struct EstimatorContext<'a> {
    /// Rows produced (getnext calls) per node so far.
    pub produced: &'a [u64],
    /// Per-node exhaustion flags.
    pub exhausted: &'a [bool],
    /// `Curr` — total getnext calls so far.
    pub curr: u64,
    /// `LB` — current lower bound on `total(Q)` (Section 5.1).
    pub lb_total: u64,
    /// `UB` — current upper bound on `total(Q)`.
    pub ub_total: u64,
    /// Plan metadata (pipelines, estimates, scanned leaves).
    pub meta: &'a PlanMeta,
    /// Per-node `[lb, ub]` bounds (Section 5.1), for estimators that need
    /// finer granularity than the totals (e.g. the bytes-model variants).
    pub node_bounds: &'a [crate::bounds::NodeBounds],
}

/// A progress estimator: maps the visible state to an estimate in `[0,1]`.
///
/// Estimators are `Send`: the monitor carrying them rides the query to
/// whatever worker thread executes it (see `qp-service`).
pub trait ProgressEstimator: Send {
    /// Display name (used in trace outputs and experiment tables).
    fn name(&self) -> &'static str;
    /// The estimate at this instant.
    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64;
    /// How much this estimator currently trusts its own output.
    /// Estimators without self-diagnostics report [`Trust::Ok`]; the
    /// monitor folds the maximum over the suite into every snapshot.
    fn trust(&self) -> Trust {
        Trust::Ok
    }
    /// Hands the estimator the shared regime-shift flags for the run.
    /// The monitor calls this once at construction; estimators that
    /// react to regime shifts (the [`Ensemble`]) keep the handle, the
    /// rest ignore it.
    fn attach_regime(&mut self, _flags: Arc<RegimeFlags>) {}
}

/// The trivial estimator: the midpoint of the trivial interval `(0, 1)`.
/// Exists as the floor every estimator must beat (Section 2.5).
#[derive(Debug, Default, Clone)]
pub struct Trivial;

impl ProgressEstimator for Trivial {
    fn name(&self) -> &'static str {
        "trivial"
    }
    fn estimate(&mut self, _cx: &EstimatorContext<'_>) -> f64 {
        0.5
    }
}

/// The driver-node estimator of prior work ([5, 13]), Section 4.
///
/// Within a pipeline, progress is the fraction of the driver (input) node
/// consumed. Across pipelines, fractions are combined weighted by each
/// pipeline's estimated share of `total(Q)` (the sum of its nodes'
/// optimizer estimates, refined to actual counts once nodes finish). A
/// pipeline with several sources (merge join) weights the sources by
/// their estimated sizes.
#[derive(Debug, Default, Clone)]
pub struct Dne;

impl Dne {
    /// Estimated total rows a source node will produce: exact once
    /// exhausted, otherwise `max(optimizer estimate, produced + 1)` (the
    /// `+1` mirrors the refinement in [5]: a running node will produce at
    /// least one more row than observed — without it, a source that
    /// overruns its estimate would report progress 1 while still running).
    fn source_total(cx: &EstimatorContext<'_>, node: usize) -> f64 {
        if cx.exhausted[node] {
            cx.produced[node] as f64
        } else {
            cx.meta.est_rows[node].max(cx.produced[node] as f64 + 1.0)
        }
    }

    /// Fraction of a pipeline's input consumed.
    fn pipeline_fraction(cx: &EstimatorContext<'_>, sources: &[Source]) -> f64 {
        if sources.is_empty() {
            return 0.0;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for s in sources {
            let node = s.node();
            let total = Self::source_total(cx, node).max(1.0);
            num += cx.produced[node] as f64;
            den += total;
        }
        (num / den).clamp(0.0, 1.0)
    }
}

/// Per-pipeline progress, for UIs that show phase-level detail (the
/// paper's estimators roll pipelines into one number; the decomposition
/// itself is exposed here because real progress bars display it).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineProgress {
    /// Pipeline id (from [`qp_exec::pipeline::decompose`]; 0 holds the
    /// plan root).
    pub pipeline: usize,
    /// Fraction of the pipeline's driver input consumed, in `[0, 1]`.
    pub fraction: f64,
    /// Whether every node of the pipeline has exhausted.
    pub done: bool,
    /// The driver (source) nodes of the pipeline.
    pub drivers: Vec<usize>,
}

impl Dne {
    /// Phase-level progress report: one entry per pipeline, with the
    /// driver fraction dne uses internally.
    pub fn pipeline_report(cx: &EstimatorContext<'_>) -> Vec<PipelineProgress> {
        cx.meta
            .pipelines
            .iter()
            .map(|p| {
                let done = p.nodes.iter().all(|&n| cx.exhausted[n]);
                let fraction = if done {
                    1.0
                } else {
                    Self::pipeline_fraction(cx, &p.sources)
                };
                PipelineProgress {
                    pipeline: p.id,
                    fraction,
                    done,
                    drivers: p.sources.iter().map(|s| s.node()).collect(),
                }
            })
            .collect()
    }
}

impl ProgressEstimator for Dne {
    fn name(&self) -> &'static str {
        "dne"
    }

    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        let mut weighted = 0.0;
        let mut total_weight = 0.0;
        for p in &cx.meta.pipelines {
            // Weight: the pipeline's estimated contribution to total(Q) —
            // actual counts for finished nodes, optimizer estimates for
            // the rest.
            let mut w = 0.0;
            let mut all_done = true;
            for &n in &p.nodes {
                if cx.exhausted[n] {
                    w += cx.produced[n] as f64;
                } else {
                    all_done = false;
                    w += cx.meta.est_rows[n].max(cx.produced[n] as f64);
                }
            }
            let frac = if all_done {
                1.0
            } else {
                Self::pipeline_fraction(cx, &p.sources)
            };
            weighted += w.max(1.0) * frac;
            total_weight += w.max(1.0);
        }
        if total_weight == 0.0 {
            return 0.0;
        }
        (weighted / total_weight).clamp(0.0, 1.0)
    }
}

/// `pmax = Curr / LB` (Definition 3, Section 5.2). Assumes the minimum
/// possible future work; never underestimates progress (Property 4) and
/// is within a factor μ of the truth (Theorem 5).
#[derive(Debug, Default, Clone)]
pub struct Pmax;

impl ProgressEstimator for Pmax {
    fn name(&self) -> &'static str {
        "pmax"
    }
    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        (cx.curr as f64 / cx.lb_total.max(1) as f64).clamp(0.0, 1.0)
    }
}

/// `safe = Curr / √(LB·UB)` (Definition 5, Section 5.3). Worst-case
/// optimal: ratio error at most `√(UB/LB)`, and no estimator can do
/// better on every instance (Theorem 6).
#[derive(Debug, Default, Clone)]
pub struct Safe;

impl ProgressEstimator for Safe {
    fn name(&self) -> &'static str {
        "safe"
    }
    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        let denom = (cx.lb_total.max(1) as f64 * cx.ub_total.max(1) as f64).sqrt();
        (cx.curr as f64 / denom).clamp(0.0, 1.0)
    }
}

/// The refined driver-node estimator of Chaudhuri–Narasayya–Ramamurthy
/// 2004 (the paper's reference \[5\]): like [`Dne`], but optimizer
/// estimates for *running* nodes are rescaled by the observed
/// actual/estimated ratio of their finished inputs, so estimation errors
/// stop propagating once upstream cardinalities become known. This is the
/// "continuous refinement of the estimates" the paper credits for pmax
/// catching up in Figure 6, applied to dne's weights.
#[derive(Debug, Default, Clone)]
pub struct DneRefined;

impl DneRefined {
    /// Refined per-node totals: exact for exhausted nodes; for running
    /// nodes, the optimizer estimate scaled by the correction ratio of
    /// the node's exhausted children (errors downstream of known
    /// cardinalities are corrected one step at a time).
    fn refined_totals(cx: &EstimatorContext<'_>) -> Vec<f64> {
        let n = cx.meta.n_nodes;
        let mut refined = vec![0.0f64; n];
        // Children precede parents in id order (builder invariant).
        #[allow(clippy::needless_range_loop)] // id doubles as the node id
        for id in 0..n {
            if cx.exhausted[id] {
                refined[id] = cx.produced[id] as f64;
                continue;
            }
            let est = cx.meta.est_rows[id].max(1.0);
            let mut correction = 1.0;
            for &c in &cx.meta.children[id] {
                if cx.exhausted[c] {
                    let child_est = cx.meta.est_rows[c].max(1.0);
                    correction *= (cx.produced[c] as f64).max(1.0) / child_est;
                }
            }
            refined[id] = (est * correction).max(cx.produced[id] as f64 + 1.0);
        }
        refined
    }
}

impl ProgressEstimator for DneRefined {
    fn name(&self) -> &'static str {
        "dne-refined"
    }

    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        let refined = Self::refined_totals(cx);
        let mut weighted = 0.0;
        let mut total_weight = 0.0;
        for p in &cx.meta.pipelines {
            let w: f64 = p.nodes.iter().map(|&n| refined[n]).sum::<f64>().max(1.0);
            let all_done = p.nodes.iter().all(|&n| cx.exhausted[n]);
            let frac = if all_done {
                1.0
            } else {
                // Driver fraction against the refined source totals.
                let mut num = 0.0;
                let mut den = 0.0;
                for s in &p.sources {
                    let node = s.node();
                    num += cx.produced[node] as f64;
                    den += refined[node].max(1.0);
                }
                if den > 0.0 {
                    (num / den).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            };
            weighted += w * frac;
            total_weight += w;
        }
        if total_weight == 0.0 {
            return 0.0;
        }
        (weighted / total_weight).clamp(0.0, 1.0)
    }
}

/// Ablation variant of [`Safe`]: `Curr / ((LB + UB) / 2)` — the
/// *arithmetic* mean of the bounds instead of the geometric mean. The
/// geometric mean is what makes `safe` worst-case optimal in *ratio*
/// error (the worst case is symmetric in log-space); the arithmetic mean
/// minimizes worst-case *absolute* error instead and suffers a larger
/// worst-case ratio. The `safe_mean` ablation experiment quantifies this.
#[derive(Debug, Default, Clone)]
pub struct SafeArithmetic;

impl ProgressEstimator for SafeArithmetic {
    fn name(&self) -> &'static str {
        "safe-arith"
    }
    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        let denom = (cx.lb_total.max(1) as f64 + cx.ub_total.max(1) as f64) / 2.0;
        (cx.curr as f64 / denom).clamp(0.0, 1.0)
    }
}

/// The "just trust the optimizer" baseline: `Curr / Σ estimated rows`.
/// Comes with no guarantee — estimate errors compound through joins
/// (Sections 2.5 and 7) — and exists to be compared against.
#[derive(Debug, Default, Clone)]
pub struct EstTotal;

impl ProgressEstimator for EstTotal {
    fn name(&self) -> &'static str {
        "esttotal"
    }
    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        let est = cx.meta.est_total().max(cx.curr as f64).max(1.0);
        (cx.curr as f64 / est).clamp(0.0, 1.0)
    }
}

/// `dne` constrained to the feasible interval `[Curr/UB, Curr/LB]` — the
/// variant the paper mentions when deriving Property 6 ("by constraining
/// dne to be within the upper and lower bounds on the progress").
#[derive(Debug, Default, Clone)]
pub struct DneClamped {
    inner: Dne,
}

impl ProgressEstimator for DneClamped {
    fn name(&self) -> &'static str {
        "dne-clamped"
    }
    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        let raw = self.inner.estimate(cx);
        let lo = cx.curr as f64 / cx.ub_total.max(1) as f64;
        let hi = (cx.curr as f64 / cx.lb_total.max(1) as f64).min(1.0);
        raw.clamp(lo.min(hi), hi)
    }
}

/// The Section 6.4 hybrid heuristic: play `safe` by default, but switch to
/// `pmax` when the *observed* per-input-tuple work μ̂ is small (pmax's
/// favourable regime, Theorem 5). Theorems 7 and 8 prove no such switch
/// can be provably correct — μ̂ can change arbitrarily at the next tuple —
/// so this is exactly the kind of heuristic the paper proposes to study.
#[derive(Debug, Clone)]
pub struct Hybrid {
    /// Switch to pmax when μ̂ ≤ this (paper's small-μ regime; Table 2
    /// suggests most of TPC-H sits below 2).
    pub mu_threshold: f64,
    pmax: Pmax,
    safe: Safe,
}

impl Hybrid {
    /// A hybrid with a custom switching threshold.
    pub fn with_threshold(mu_threshold: f64) -> Hybrid {
        Hybrid {
            mu_threshold,
            pmax: Pmax,
            safe: Safe,
        }
    }
}

impl Default for Hybrid {
    fn default() -> Hybrid {
        Hybrid::with_threshold(2.0)
    }
}

impl ProgressEstimator for Hybrid {
    fn name(&self) -> &'static str {
        "hybrid"
    }
    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        let mu_hat = mu_observed(cx.meta, cx.produced, cx.curr);
        if mu_hat <= self.mu_threshold {
            self.pmax.estimate(cx)
        } else {
            self.safe.estimate(cx)
        }
    }
}

/// The ensemble's member estimators, in weight order. A deliberate
/// spread of failure modes: `dne` (best under predictive orders), `pmax`
/// (never underestimates, wins at small μ), `safe` (worst-case optimal),
/// `esttotal` (best when the optimizer happens to be right).
pub const ENSEMBLE_MEMBERS: [&str; 4] = ["dne", "pmax", "safe", "esttotal"];

/// EWMA smoothing factor for member error statistics: recent queries
/// dominate, so the weighting adapts within a handful of runs.
const EWMA_ALPHA: f64 = 0.3;

/// Prior mean ratio error assumed before any trace has been observed —
/// every member starts equally (un)trusted.
const PRIOR_RATIO: f64 = 1.5;

#[derive(Debug, Clone, Copy)]
struct MemberStat {
    /// EWMA of the member's average ratio error across completed runs.
    ewma_ratio: f64,
    /// Completed traces folded in.
    n: u64,
}

/// Online per-estimator error statistics feeding the [`Ensemble`]'s
/// König-style statistical weighting: after each completed run, the
/// realized progress is known, so every member's checkpoint error can be
/// scored ([`crate::metrics::error_stats`]) and folded into an EWMA. The
/// next query's ensemble weights each member by the inverse of its
/// recent ratio error — the estimator-selection idea of König et al.
/// (the paper's reference for statistical combination), applied online.
///
/// One instance is typically shared process-wide ([`EnsembleStats::global`],
/// fed by the service layer with every finished session's trace); tests
/// and experiments that need isolation construct their own.
#[derive(Debug, Default)]
pub struct EnsembleStats {
    inner: Mutex<HashMap<&'static str, MemberStat>>,
}

impl EnsembleStats {
    /// A fresh, empty statistics registry.
    pub fn new() -> EnsembleStats {
        EnsembleStats::default()
    }

    /// The process-wide registry used by [`Ensemble::default`] — the
    /// channel through which one query's outcome informs the next
    /// query's weighting (the service feeds every completed session's
    /// trace into it).
    pub fn global() -> &'static EnsembleStats {
        static GLOBAL: OnceLock<EnsembleStats> = OnceLock::new();
        GLOBAL.get_or_init(EnsembleStats::new)
    }

    /// Folds a completed run's trace into the statistics: every ensemble
    /// member present in the trace gets its average ratio error EWMA'd
    /// in. Traces missing a member (custom suites) update what they have.
    pub fn record_trace(&self, trace: &crate::monitor::ProgressTrace) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        for &name in &ENSEMBLE_MEMBERS {
            let Some(stats) = crate::metrics::error_stats(trace, name) else {
                continue;
            };
            let stat = inner.entry(name).or_insert(MemberStat {
                ewma_ratio: PRIOR_RATIO,
                n: 0,
            });
            stat.ewma_ratio = (1.0 - EWMA_ALPHA) * stat.ewma_ratio + EWMA_ALPHA * stats.avg_ratio;
            stat.n += 1;
        }
    }

    /// The weight for one member: inverse of its recent excess ratio
    /// error (a member whose EWMA ratio is 1.0 — perfect — gets the
    /// maximum weight; one sitting at 2× gets roughly a twentieth).
    pub fn weight(&self, name: &str) -> f64 {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let ewma = inner.get(name).map_or(PRIOR_RATIO, |s| s.ewma_ratio);
        1.0 / ((ewma - 1.0).max(0.0) + 0.05)
    }

    /// `(name, ewma_ratio, traces_seen)` rows for telemetry and
    /// experiment tables, in [`ENSEMBLE_MEMBERS`] order.
    pub fn snapshot(&self) -> Vec<(&'static str, f64, u64)> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        ENSEMBLE_MEMBERS
            .iter()
            .map(|&name| {
                let s = inner.get(name).copied().unwrap_or(MemberStat {
                    ewma_ratio: PRIOR_RATIO,
                    n: 0,
                });
                (name, s.ewma_ratio, s.n)
            })
            .collect()
    }

    /// Clears all statistics (test isolation on the global registry).
    pub fn reset(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
}

/// The robust ensemble: a König-style statistically weighted combination
/// of [`ENSEMBLE_MEMBERS`] with explicit **graceful degradation**.
///
/// In the benign regime it returns the *weighted median* of its members
/// (weights = inverse recent ratio error from [`EnsembleStats`] — the
/// robust form of the statistical combination, immune to one wildly
/// wrong member), clamped into the proven-feasible interval
/// `[Curr/UB, Curr/LB]` so the
/// combination inherits the envelope guarantee of Property 6. When the
/// members disagree sharply it reports [`Trust::Degraded`]. When a
/// regime shift fires — a fault, buffer-pool thrash, or contradicted
/// bounds (via [`RegimeFlags`] or `Curr > UB` seen directly) — it
/// **falls back to the inner [`Safe`] estimator verbatim** and reports
/// [`Trust::Fallback`]: Theorems 7/8 prove no switch rule can be
/// provably correct, so under hostile conditions the only honest move is
/// the worst-case-optimal estimator plus a visible flag. The fallback is
/// sticky for the rest of the query, and because [`Safe`] is stateless
/// the fallen-back output is byte-identical to running bare `safe`.
#[derive(Debug, Default)]
pub struct Ensemble {
    dne: Dne,
    pmax: Pmax,
    safe: Safe,
    esttotal: EstTotal,
    /// `None` → use [`EnsembleStats::global`].
    stats: Option<Arc<EnsembleStats>>,
    regime: Option<Arc<RegimeFlags>>,
    fallback: bool,
    degraded: bool,
}

/// Member disagreement (max/min estimate ratio) beyond which the
/// ensemble flags itself [`Trust::Degraded`].
const SPREAD_LIMIT: f64 = 4.0;

impl Ensemble {
    /// An ensemble drawing weights from its own statistics registry
    /// instead of the process-wide one (experiments, tests).
    pub fn with_stats(stats: Arc<EnsembleStats>) -> Ensemble {
        Ensemble {
            stats: Some(stats),
            ..Ensemble::default()
        }
    }

    fn stats(&self) -> &EnsembleStats {
        match &self.stats {
            Some(s) => s,
            None => EnsembleStats::global(),
        }
    }

    /// `true` once the ensemble has abandoned weighting and delegates to
    /// `safe` (sticky for the rest of the run).
    pub fn fallen_back(&self) -> bool {
        self.fallback
    }
}

impl ProgressEstimator for Ensemble {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn estimate(&mut self, cx: &EstimatorContext<'_>) -> f64 {
        // Regime-shift detection: shared flags from the monitor/service,
        // plus contradictions visible directly in the context. Sticky.
        let flagged = self.regime.as_ref().is_some_and(|r| r.any());
        if flagged || cx.curr > cx.ub_total || cx.lb_total > cx.ub_total {
            self.fallback = true;
        }
        if self.fallback {
            // Exact delegation: Safe is stateless, so this is the byte-
            // identical output of a bare `safe` run from here on.
            return self.safe.estimate(cx);
        }

        let members = [
            ("dne", self.dne.estimate(cx)),
            ("pmax", self.pmax.estimate(cx)),
            ("safe", self.safe.estimate(cx)),
            ("esttotal", self.esttotal.estimate(cx)),
        ];
        // Disagreement check: if the members span more than SPREAD_LIMIT×
        // the regime is ambiguous — keep combining, but say so.
        let lo_est = members.iter().map(|&(_, e)| e).fold(f64::MAX, f64::min);
        let hi_est = members.iter().map(|&(_, e)| e).fold(0.0, f64::max);
        if cx.curr > 0 && hi_est > SPREAD_LIMIT * lo_est.max(1e-3) {
            self.degraded = true;
        }

        // The combination is the *weighted median* of the members in
        // estimate space — the robust form of the König-style weighting.
        // A weighted mean is poisoned by a single wildly wrong member
        // (pmax legitimately sits near `Curr/LB` when true progress is
        // still tiny, a 100×+ ratio error early in a run); the median
        // ignores that outlier entirely, and as the online error
        // statistics concentrate weight on whichever member has been
        // right historically, it snaps to that member's answer.
        let stats = self.stats();
        let mut weighted: Vec<(f64, f64)> = members
            .iter()
            .map(|&(name, est)| (est, stats.weight(name)))
            .collect();
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total_w: f64 = weighted.iter().map(|&(_, w)| w).sum();
        let mut acc = 0.0;
        let mut combined = lo_est;
        for &(est, w) in &weighted {
            acc += w;
            combined = est;
            if acc + 1e-12 >= total_w / 2.0 {
                break;
            }
        }
        // Clamp into the proven-feasible interval [Curr/UB, Curr/LB]
        // (Property 6's envelope), like DneClamped.
        let lo = cx.curr as f64 / cx.ub_total.max(1) as f64;
        let hi = (cx.curr as f64 / cx.lb_total.max(1) as f64).min(1.0);
        combined.clamp(lo.min(hi), hi)
    }

    fn trust(&self) -> Trust {
        if self.fallback {
            Trust::Fallback
        } else if self.degraded {
            Trust::Degraded
        } else {
            Trust::Ok
        }
    }

    fn attach_regime(&mut self, flags: Arc<RegimeFlags>) {
        self.regime = Some(flags);
    }
}

/// The default estimator suite used by the experiment harness, in the
/// order the paper discusses them.
pub fn standard_suite() -> Vec<Box<dyn ProgressEstimator>> {
    vec![
        Box::new(Dne),
        Box::new(DneRefined),
        Box::new(Pmax),
        Box::new(Safe),
        Box::new(EstTotal),
        Box::new(DneClamped::default()),
        Box::new(Hybrid::default()),
    ]
}

/// Registered estimator names, in the order the paper discusses them.
/// This is the single source of truth for name→constructor resolution:
/// the service's `SUBMIT ESTIMATORS=` field and the repro binary's
/// `--estimators` flag both resolve through [`estimator_by_name`].
pub const ESTIMATOR_NAMES: [&str; 10] = [
    "trivial",
    "dne",
    "dne-refined",
    "pmax",
    "safe",
    "safe-arith",
    "esttotal",
    "dne-clamped",
    "hybrid",
    "ensemble",
];

/// Constructs a fresh estimator by its registered name (the same string
/// its `ProgressEstimator::name` returns). `None` for unknown names.
pub fn estimator_by_name(name: &str) -> Option<Box<dyn ProgressEstimator>> {
    Some(match name {
        "trivial" => Box::new(Trivial),
        "dne" => Box::new(Dne),
        "dne-refined" => Box::new(DneRefined),
        "pmax" => Box::new(Pmax),
        "safe" => Box::new(Safe),
        "safe-arith" => Box::new(SafeArithmetic),
        "esttotal" => Box::new(EstTotal),
        "dne-clamped" => Box::new(DneClamped::default()),
        "hybrid" => Box::new(Hybrid::default()),
        "ensemble" => Box::new(Ensemble::default()),
        _ => return None,
    })
}

/// Parses a comma-separated estimator list (e.g. `"dne,pmax,safe"`) into
/// a suite, rejecting unknown or duplicate names with a message that
/// lists the valid ones. Empty input yields an error (callers wanting a
/// default should use [`standard_suite`]).
pub fn parse_suite(csv: &str) -> Result<Vec<Box<dyn ProgressEstimator>>, String> {
    let mut suite: Vec<Box<dyn ProgressEstimator>> = Vec::new();
    let mut seen = Vec::new();
    for raw in csv.split(',') {
        let name = raw.trim();
        if name.is_empty() {
            continue;
        }
        if seen.contains(&name) {
            return Err(format!("duplicate estimator {name:?}"));
        }
        let est = estimator_by_name(name).ok_or_else(|| {
            format!(
                "unknown estimator {name:?} (valid: {})",
                ESTIMATOR_NAMES.join(", ")
            )
        })?;
        seen.push(name);
        suite.push(est);
    }
    if suite.is_empty() {
        return Err("empty estimator list".to_string());
    }
    Ok(suite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PlanMeta;
    use qp_exec::plan::PlanBuilder;
    use qp_storage::{ColumnType, Database, Schema, Value};

    fn single_scan_meta() -> PlanMeta {
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("a", ColumnType::Int)]),
            (0..100).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        let plan = PlanBuilder::scan(&db, "t").unwrap().build();
        PlanMeta::from_plan(&plan)
    }

    fn cx<'a>(
        meta: &'a PlanMeta,
        produced: &'a [u64],
        exhausted: &'a [bool],
        lb: u64,
        ub: u64,
    ) -> EstimatorContext<'a> {
        EstimatorContext {
            produced,
            exhausted,
            curr: produced.iter().sum(),
            lb_total: lb,
            ub_total: ub,
            meta,
            node_bounds: &[],
        }
    }

    #[test]
    fn pmax_is_curr_over_lb() {
        let meta = single_scan_meta();
        let produced = [40u64];
        let cx = cx(&meta, &produced, &[false], 100, 100);
        assert!((Pmax.estimate(&cx) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn safe_uses_geometric_mean() {
        let meta = single_scan_meta();
        let produced = [30u64];
        let cx = cx(&meta, &produced, &[false], 100, 400);
        // √(100·400) = 200 → 30/200.
        assert!((Safe.estimate(&cx) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn dne_single_pipeline_is_driver_fraction() {
        let meta = single_scan_meta();
        let produced = [25u64];
        let cx = cx(&meta, &produced, &[false], 100, 100);
        assert!((Dne.estimate(&cx) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dne_reports_done_when_all_exhausted() {
        let meta = single_scan_meta();
        let produced = [100u64];
        let cx = cx(&meta, &produced, &[true], 100, 100);
        assert!((Dne.estimate(&cx) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamped_dne_respects_bounds() {
        let meta = single_scan_meta();
        let produced = [10u64];
        // Artificially tight bounds: progress must lie in [10/50, 10/20].
        let cx = cx(&meta, &produced, &[false], 20, 50);
        let est = DneClamped::default().estimate(&cx);
        assert!((0.2..=0.5).contains(&est), "est={est}");
    }

    #[test]
    fn trivial_is_half() {
        let meta = single_scan_meta();
        let produced = [0u64];
        let cx = cx(&meta, &produced, &[false], 1, 1);
        assert_eq!(Trivial.estimate(&cx), 0.5);
    }

    #[test]
    fn hybrid_switches_on_observed_mu() {
        let meta = single_scan_meta();
        // μ̂ = curr / leaf rows = 1.0 (≤ 2.0) → pmax behaviour.
        let produced = [40u64];
        let cx1 = cx(&meta, &produced, &[false], 100, 10_000);
        let mut h = Hybrid::default();
        let est = h.estimate(&cx1);
        assert!((est - 0.4).abs() < 1e-12, "should act like pmax: {est}");
        // Forcing a tiny threshold makes it act like safe.
        let mut h2 = Hybrid {
            mu_threshold: 0.5,
            ..Hybrid::default()
        };
        let est2 = h2.estimate(&cx1);
        assert!(est2 < est, "safe yields a smaller estimate here");
    }

    #[test]
    fn refined_dne_corrects_downstream_estimates() {
        // Pipeline: scan(100) → filter(est 50, actually produced 10 and
        // exhausted) feeding a sort (blocking) whose output pipeline is
        // running. The refined total for the sort should scale by 10/50.
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("a", ColumnType::Int)]),
            (0..100).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        let mut plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .filter(qp_exec::Expr::col_eq(0, 1i64))
            .sort(vec![(0, true)])
            .build();
        // Hand-plant optimizer estimates: scan 100, filter 50, sort 50.
        qp_exec::estimate::annotate(&mut plan, &qp_stats::DbStats::default());
        let mut meta = PlanMeta::from_plan(&plan);
        meta.est_rows = vec![100.0, 50.0, 50.0];
        // State: scan+filter exhausted with 10 rows out; sort emitted 2.
        let produced = vec![100u64, 10, 2];
        let exhausted = vec![true, true, false];
        let cx = EstimatorContext {
            produced: &produced,
            exhausted: &exhausted,
            curr: 112,
            lb_total: 120,
            ub_total: 120,
            meta: &meta,
            node_bounds: &[],
        };
        let refined = DneRefined::refined_totals(&cx);
        assert_eq!(refined[0], 100.0);
        assert_eq!(refined[1], 10.0);
        // Sort: est 50 × (10/50) = 10.
        assert!(
            (refined[2] - 10.0).abs() < 1e-9,
            "sort refined {}",
            refined[2]
        );
        // The refined dne beats the static one, whose sort total stays 50.
        let refined_est = DneRefined.estimate(&cx);
        let static_est = Dne.estimate(&cx);
        let truth = 112.0 / 120.0;
        assert!(
            (refined_est - truth).abs() < (static_est - truth).abs(),
            "refined {refined_est} vs static {static_est} (truth {truth})"
        );
    }

    #[test]
    fn pipeline_report_tracks_phases() {
        // Two-pipeline plan: scan → sort → limit.
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("a", ColumnType::Int)]),
            (0..50).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .sort(vec![(0, true)])
            .limit(10)
            .build();
        let meta = PlanMeta::from_plan(&plan);
        assert_eq!(meta.pipelines.len(), 2);
        // Mid-sort: scan half done, sort not yet emitting.
        let produced = vec![25u64, 0, 0];
        let exhausted = vec![false, false, false];
        let cx = EstimatorContext {
            produced: &produced,
            exhausted: &exhausted,
            curr: 25,
            lb_total: 110,
            ub_total: 110,
            meta: &meta,
            node_bounds: &[],
        };
        let report = Dne::pipeline_report(&cx);
        assert_eq!(report.len(), 2);
        let scan_pipe = report.iter().find(|p| p.drivers == vec![0]).unwrap();
        assert!((scan_pipe.fraction - 0.5).abs() < 1e-9);
        assert!(!scan_pipe.done);
        // After everything finishes, both pipelines read 1.0 / done.
        let produced = vec![50u64, 10, 10];
        let exhausted = vec![true, true, true];
        let cx = EstimatorContext {
            produced: &produced,
            exhausted: &exhausted,
            curr: 70,
            lb_total: 70,
            ub_total: 70,
            meta: &meta,
            node_bounds: &[],
        };
        for p in Dne::pipeline_report(&cx) {
            assert!(p.done);
            assert_eq!(p.fraction, 1.0);
        }
    }

    #[test]
    fn ensemble_stays_in_feasible_interval() {
        let meta = single_scan_meta();
        let produced = [30u64];
        let cx = cx(&meta, &produced, &[false], 50, 200);
        let mut e = Ensemble::with_stats(Arc::new(EnsembleStats::new()));
        let est = e.estimate(&cx);
        // Feasible interval is [30/200, 30/50].
        assert!((0.15..=0.6).contains(&est), "est={est}");
        assert_eq!(e.trust(), Trust::Ok);
    }

    #[test]
    fn ensemble_falls_back_to_safe_on_regime_shift() {
        let meta = single_scan_meta();
        let produced = [30u64];
        let cx1 = cx(&meta, &produced, &[false], 50, 200);
        let flags = Arc::new(RegimeFlags::new());
        // Seed history that trusts pmax heavily, so the benign-regime
        // weighted median picks pmax's answer — visibly different from
        // safe's, making the fallback switch observable below.
        let stats = Arc::new(EnsembleStats::new());
        let produced_m = [50u64];
        let cxm = cx(&meta, &produced_m, &[false], 100, 100);
        let snap = crate::monitor::Snapshot {
            at_ns: 0,
            curr: 50,
            lb: 100,
            ub: 100,
            estimates: vec![Pmax.estimate(&cxm)],
            trust: Trust::Ok,
        };
        let perfect = crate::monitor::ProgressTrace::from_parts(vec!["pmax"], vec![snap], 100);
        for _ in 0..8 {
            stats.record_trace(&perfect);
        }
        let mut e = Ensemble::with_stats(Arc::clone(&stats));
        e.attach_regime(Arc::clone(&flags));
        let before = e.estimate(&cx1);
        assert_eq!(e.trust(), Trust::Ok);

        // Fault fires → fallback, and the output is exactly Safe's.
        flags.set(RegimeFlags::FAULT);
        let after = e.estimate(&cx1);
        assert_eq!(e.trust(), Trust::Fallback);
        assert!(e.fallen_back());
        assert_eq!(after.to_bits(), Safe.estimate(&cx1).to_bits());
        assert_ne!(before.to_bits(), after.to_bits(), "weighted ≠ safe here");

        // Sticky: flags never clear, and fallback persists regardless.
        let produced2 = [40u64];
        let cx2 = cx(&meta, &produced2, &[false], 60, 180);
        assert_eq!(e.estimate(&cx2).to_bits(), Safe.estimate(&cx2).to_bits());
        assert_eq!(e.trust(), Trust::Fallback);
    }

    #[test]
    fn ensemble_detects_contradicted_bounds_without_flags() {
        let meta = single_scan_meta();
        // Curr (70) past UB (60): the envelope is contradicted.
        let produced = [70u64];
        let cx = cx(&meta, &produced, &[false], 40, 60);
        let mut e = Ensemble::with_stats(Arc::new(EnsembleStats::new()));
        let est = e.estimate(&cx);
        assert_eq!(e.trust(), Trust::Fallback);
        assert_eq!(est.to_bits(), Safe.estimate(&cx).to_bits());
    }

    #[test]
    fn ensemble_degrades_on_member_disagreement() {
        // Huge UB/LB gap: pmax (curr/LB) and safe (curr/√(LB·UB)) are
        // far apart, so the members span more than SPREAD_LIMIT×.
        let meta = single_scan_meta();
        let produced = [50u64];
        let cx = cx(&meta, &produced, &[false], 60, 6_000_000);
        let mut e = Ensemble::with_stats(Arc::new(EnsembleStats::new()));
        e.estimate(&cx);
        assert_eq!(e.trust(), Trust::Degraded);
    }

    #[test]
    fn ensemble_weights_follow_recorded_error() {
        let stats = EnsembleStats::new();
        assert!((stats.weight("dne") - stats.weight("pmax")).abs() < 1e-12);
        // Manufacture a trace where pmax is perfect and esttotal is bad.
        let meta = single_scan_meta();
        let produced = [50u64];
        let cxm = cx(&meta, &produced, &[false], 100, 100);
        let snap = crate::monitor::Snapshot {
            at_ns: 0,
            curr: 50,
            lb: 100,
            ub: 100,
            estimates: vec![Pmax.estimate(&cxm), 0.95],
            trust: Trust::Ok,
        };
        let trace =
            crate::monitor::ProgressTrace::from_parts(vec!["pmax", "esttotal"], vec![snap], 100);
        stats.record_trace(&trace);
        assert!(
            stats.weight("pmax") > stats.weight("esttotal"),
            "pmax {} vs esttotal {}",
            stats.weight("pmax"),
            stats.weight("esttotal")
        );
        let rows = stats.snapshot();
        assert_eq!(rows.len(), ENSEMBLE_MEMBERS.len());
        let pmax_row = rows.iter().find(|r| r.0 == "pmax").unwrap();
        assert_eq!(pmax_row.2, 1, "one trace folded in");
        stats.reset();
        assert!((stats.weight("pmax") - stats.weight("esttotal")).abs() < 1e-12);
    }

    #[test]
    fn suite_has_unique_names() {
        let mut names: Vec<&str> = standard_suite().iter().map(|e| e.name()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn registry_round_trips_every_name() {
        for name in ESTIMATOR_NAMES {
            let est =
                estimator_by_name(name).unwrap_or_else(|| panic!("{name} missing from registry"));
            assert_eq!(est.name(), name);
        }
        assert!(estimator_by_name("nope").is_none());
        // Every standard_suite member must be reachable by name.
        for est in standard_suite() {
            assert!(estimator_by_name(est.name()).is_some());
        }
    }

    #[test]
    fn parse_suite_accepts_csv_and_rejects_junk() {
        let suite = parse_suite("dne, pmax,safe").unwrap();
        let names: Vec<&str> = suite.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["dne", "pmax", "safe"]);
        let unknown = parse_suite("dne,bogus").err().unwrap();
        assert!(unknown.contains("bogus"), "{unknown}");
        let duplicate = parse_suite("dne,dne").err().unwrap();
        assert!(duplicate.contains("duplicate"), "{duplicate}");
        assert!(parse_suite("").is_err());
        assert!(parse_suite(",,").is_err());
    }
}
