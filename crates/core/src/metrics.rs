//! Error metrics over progress traces.
//!
//! The paper scores estimators two ways:
//!
//! * **absolute error** `|estimate − progress|` (the percentages of
//!   Table 1: "Max Err" / "Avg Err"), and
//! * **ratio error** `max(estimate/progress, progress/estimate)` (the
//!   guarantee currency of Sections 2.5 and 5, e.g. Figure 6's ratio
//!   error of pmax over execution).
//!
//! It also defines the **threshold requirement** `(τ, δ)` (Section 2.5):
//! whenever the true progress is below `τ − δ` the estimate must lie in
//! `(0, τ)`, and whenever it is above `τ + δ` the estimate must lie in
//! `(τ, 1)`. Theorem 1 shows no estimator can always satisfy it; the
//! checker here is what the lower-bound experiments use to demonstrate
//! that concretely.

use crate::monitor::ProgressTrace;

/// Summary statistics of one estimator's error over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Maximum absolute error, in progress units (0..1).
    pub max_abs: f64,
    /// Average absolute error.
    pub avg_abs: f64,
    /// Maximum ratio error (≥ 1).
    pub max_ratio: f64,
    /// Average ratio error.
    pub avg_ratio: f64,
    /// Absolute error at the final snapshot.
    pub final_abs: f64,
    /// Number of snapshots scored.
    pub n: usize,
}

/// Ratio error between an estimate and the true progress, both in (0, 1].
/// Zero values are floored at a tiny epsilon so the ratio stays finite
/// (an estimator reporting 0 at nonzero progress deserves a huge but
/// finite penalty).
pub fn ratio_error(estimate: f64, progress: f64) -> f64 {
    let e = estimate.max(1e-9);
    let p = progress.max(1e-9);
    (e / p).max(p / e)
}

/// Scores one estimator over a trace. Snapshots at progress 0 are skipped
/// (ratio error is undefined there, and the paper's plots start after the
/// first tuples flow).
pub fn error_stats(trace: &ProgressTrace, estimator: &str) -> Option<ErrorStats> {
    let series = trace.series(estimator)?;
    let scored: Vec<(f64, f64)> = series.into_iter().filter(|(p, _)| *p > 0.0).collect();
    if scored.is_empty() {
        return None;
    }
    let mut max_abs = 0.0f64;
    let mut sum_abs = 0.0f64;
    let mut max_ratio = 1.0f64;
    let mut sum_ratio = 0.0f64;
    for &(p, e) in &scored {
        let abs = (e - p).abs();
        max_abs = max_abs.max(abs);
        sum_abs += abs;
        let r = ratio_error(e, p);
        max_ratio = max_ratio.max(r);
        sum_ratio += r;
    }
    let n = scored.len();
    let (p_last, e_last) = *scored.last().expect("nonempty");
    Some(ErrorStats {
        max_abs,
        avg_abs: sum_abs / n as f64,
        max_ratio,
        avg_ratio: sum_ratio / n as f64,
        final_abs: (e_last - p_last).abs(),
        n,
    })
}

/// Checks the threshold requirement `(τ, δ)` of Section 2.5 over a trace:
/// returns `true` iff every snapshot obeys it.
pub fn threshold_requirement_holds(
    trace: &ProgressTrace,
    estimator: &str,
    tau: f64,
    delta: f64,
) -> bool {
    let Some(series) = trace.series(estimator) else {
        return false;
    };
    series.iter().all(|&(prog, est)| {
        if prog < tau - delta {
            est < tau
        } else if prog > tau + delta {
            est > tau
        } else {
            true // grey area: anything goes
        }
    })
}

/// The worst-case ratio-error guarantee the `safe` estimator carries at an
/// instant with bounds `LB`, `UB` (Section 5.3): `√(UB/LB)`.
pub fn safe_guarantee(lb: u64, ub: u64) -> f64 {
    (ub.max(1) as f64 / lb.max(1) as f64).sqrt()
}

/// One estimator's postmortem score over raw `(curr, estimate)`
/// checkpoints — the scoring kernel behind the service's `AUDIT` verb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointScore {
    /// Checkpoints scored (`curr > 0`).
    pub points: u64,
    /// Maximum ratio error (≥ 1).
    pub max_ratio: f64,
    /// Average ratio error over the scored checkpoints.
    pub avg_ratio: f64,
    /// Checkpoints where the estimate underestimated true progress by
    /// more than epsilon — Property-4 violations for estimators that
    /// claim never to underestimate (`pmax`).
    pub p4_violations: u64,
}

/// Scores one estimator's `(curr, estimate)` checkpoints against the
/// now-known `total(Q)` — the replay a finished session's TraceBuffer
/// goes through for its postmortem. Checkpoints at `curr == 0` are
/// skipped (ratio error is undefined at zero progress); a NaN estimate
/// scores like `0` (floored at epsilon by [`ratio_error`], i.e. a huge
/// but finite penalty). Returns `None` when nothing is scorable.
///
/// Determinism contract: this function is pure f64 arithmetic over its
/// inputs, so scoring the live `TraceBuffer` in-process and re-scoring
/// the same checkpoints parsed back from `TRACE` JSONL produce
/// *bit-identical* results — `repro -- audit` gates on exactly that.
pub fn score_checkpoints(points: &[(u64, f64)], total: u64) -> Option<PointScore> {
    if total == 0 {
        return None;
    }
    let mut n = 0u64;
    let mut max_ratio = 1.0f64;
    let mut sum_ratio = 0.0f64;
    let mut p4 = 0u64;
    for &(curr, est) in points {
        if curr == 0 {
            continue;
        }
        let progress = curr as f64 / total as f64;
        let e = if est.is_nan() { 0.0 } else { est };
        let r = ratio_error(e, progress);
        max_ratio = max_ratio.max(r);
        sum_ratio += r;
        n += 1;
        if e < progress - 1e-9 {
            p4 += 1;
        }
    }
    if n == 0 {
        return None;
    }
    Some(PointScore {
        points: n,
        max_ratio,
        avg_ratio: sum_ratio / n as f64,
        p4_violations: p4,
    })
}

/// Renders error stats as the percentage strings the paper's Table 1 uses.
pub fn percent(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::{Pmax, Trivial};
    use crate::monitor::run_with_progress;
    use qp_exec::plan::PlanBuilder;
    use qp_storage::{ColumnType, Database, Schema, Value};

    fn trace() -> ProgressTrace {
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("a", ColumnType::Int)]),
            (0..500).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        let plan = PlanBuilder::scan(&db, "t").unwrap().build();
        run_with_progress(
            &plan,
            &db,
            None,
            vec![Box::new(Pmax), Box::new(Trivial)],
            Some(5),
        )
        .unwrap()
        .1
    }

    #[test]
    fn ratio_error_is_symmetric_and_at_least_one() {
        assert!((ratio_error(0.5, 0.25) - 2.0).abs() < 1e-9);
        assert!((ratio_error(0.25, 0.5) - 2.0).abs() < 1e-9);
        assert_eq!(ratio_error(0.3, 0.3), 1.0);
        assert!(ratio_error(0.0, 0.5).is_finite());
    }

    #[test]
    fn pmax_on_pure_scan_is_exact() {
        let t = trace();
        let stats = error_stats(&t, "pmax").unwrap();
        assert!(stats.max_abs < 1e-9, "{stats:?}");
        assert!((stats.max_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trivial_has_half_max_error() {
        let t = trace();
        let stats = error_stats(&t, "trivial").unwrap();
        // At progress 1.0 the trivial estimator is off by 0.5.
        assert!((stats.max_abs - 0.5).abs() < 0.02, "{stats:?}");
    }

    #[test]
    fn threshold_requirement_on_exact_estimator() {
        let t = trace();
        assert!(threshold_requirement_holds(&t, "pmax", 0.5, 0.05));
        // The trivial estimator (always 0.5) violates τ=0.5, δ=0.05: when
        // progress > 0.55 it reports 0.5, not in (0.5, 1).
        assert!(!threshold_requirement_holds(&t, "trivial", 0.5, 0.05));
    }

    #[test]
    fn unknown_estimator_yields_none() {
        let t = trace();
        assert!(error_stats(&t, "nope").is_none());
    }

    #[test]
    fn score_checkpoints_matches_hand_arithmetic() {
        // total = 100; points at curr 0 (skipped), 25, 50, 100.
        let pts = [(0u64, 0.9), (25, 0.5), (50, 0.5), (100, 0.5)];
        let s = score_checkpoints(&pts, 100).unwrap();
        assert_eq!(s.points, 3);
        // ratios: 2.0 (0.5 vs 0.25), 1.0, 2.0 (0.5 vs 1.0).
        assert!((s.max_ratio - 2.0).abs() < 1e-12, "{s:?}");
        assert!((s.avg_ratio - 5.0 / 3.0).abs() < 1e-12, "{s:?}");
        // Underestimates: only the last point (0.5 < 1.0).
        assert_eq!(s.p4_violations, 1);
    }

    #[test]
    fn score_checkpoints_degenerate_inputs() {
        assert!(score_checkpoints(&[], 100).is_none());
        assert!(score_checkpoints(&[(5, 0.5)], 0).is_none());
        assert!(score_checkpoints(&[(0, 0.5)], 100).is_none());
        // NaN estimates are penalized like zero, not propagated.
        let s = score_checkpoints(&[(50, f64::NAN)], 100).unwrap();
        assert!(s.max_ratio.is_finite() && s.max_ratio > 1e6, "{s:?}");
        assert_eq!(s.p4_violations, 1);
    }

    #[test]
    fn safe_guarantee_formula() {
        assert!((safe_guarantee(100, 400) - 2.0).abs() < 1e-12);
        assert_eq!(safe_guarantee(0, 0), 1.0);
    }

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0.2474), "24.74%");
    }
}
