//! The GetNext model of work: progress, μ, and plan metadata shared by the
//! estimators.

use qp_exec::pipeline::{self, Pipeline};
use qp_exec::plan::{Plan, PlanNode};
use qp_exec::NodeId;

/// Static, estimator-visible metadata about a plan, precomputed once per
/// query (everything here is derivable from the plan and the catalog —
/// nothing peeks at the data).
#[derive(Debug, Clone)]
pub struct PlanMeta {
    /// Number of plan nodes.
    pub n_nodes: usize,
    /// Root node id.
    pub root: NodeId,
    /// Optimizer estimate per node (NaN-free; missing estimates become the
    /// scan cardinality at leaves or 0 elsewhere).
    pub est_rows: Vec<f64>,
    /// Scanned leaves (`L_s` of Section 5.2) with their catalog
    /// cardinalities (`None` for range scans whose size is a-priori
    /// unknown).
    pub scanned_leaves: Vec<(NodeId, Option<u64>)>,
    /// Pipeline decomposition with sources (driver nodes).
    pub pipelines: Vec<Pipeline>,
    /// `m` of Property 6 — internal node count.
    pub internal_nodes: usize,
    /// Whether the plan is scan-based (no nested iteration; Section 5.4).
    pub scan_based: bool,
    /// Children per node.
    pub children: Vec<Vec<NodeId>>,
    /// Parent per node (root has none).
    pub parent: Vec<Option<NodeId>>,
}

impl PlanMeta {
    /// Extracts metadata from a plan (ideally one annotated with
    /// [`qp_exec::estimate::annotate`] so `est_rows` is meaningful).
    pub fn from_plan(plan: &Plan) -> PlanMeta {
        let n = plan.len();
        let mut est_rows = Vec::with_capacity(n);
        let mut children = Vec::with_capacity(n);
        let mut parent = vec![None; n];
        // Exchange nodes are transparent plumbing: they never count a
        // getnext call, so they contribute nothing to est_total and the
        // child/parent edges estimators walk are resolved *through* them —
        // a parallelized plan yields the same metadata as its serial
        // original (plus inert zero entries for the exchanges themselves).
        let resolve = |mut c: NodeId| -> NodeId {
            while let PlanNode::Exchange { .. } = &plan.node(c).kind {
                c = plan.node(c).children[0];
            }
            c
        };
        for (id, node) in plan.nodes().iter().enumerate() {
            if matches!(node.kind, PlanNode::Exchange { .. }) {
                est_rows.push(0.0);
                children.push(Vec::new());
                continue;
            }
            let fallback = match &node.kind {
                PlanNode::SeqScan { card, .. } => *card as f64,
                _ => 0.0,
            };
            let est = node.est_rows.unwrap_or(fallback);
            est_rows.push(if est.is_finite() { est } else { fallback });
            let kids: Vec<NodeId> = node.children.iter().map(|&c| resolve(c)).collect();
            for &c in &kids {
                parent[c] = Some(id);
            }
            children.push(kids);
        }
        let scanned_leaves = plan
            .scanned_leaves()
            .into_iter()
            .map(|id| {
                let card = match &plan.node(id).kind {
                    PlanNode::SeqScan { card, .. } => Some(*card),
                    _ => None,
                };
                (id, card)
            })
            .collect();
        PlanMeta {
            n_nodes: n,
            root: plan.root(),
            est_rows,
            scanned_leaves,
            pipelines: pipeline::decompose(plan),
            internal_nodes: plan.internal_node_count(),
            scan_based: plan.is_scan_based(),
            children,
            parent,
        }
    }

    /// Sum of optimizer estimates across all nodes — the naive estimate of
    /// `total(Q)`.
    pub fn est_total(&self) -> f64 {
        self.est_rows.iter().sum()
    }
}

/// The progress of a prefix: `curr / total`, clamped into `[0, 1]`.
#[inline]
pub fn progress(curr: u64, total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    (curr as f64 / total as f64).clamp(0.0, 1.0)
}

/// μ from a completed run: `total(Q) / Σ_{i ∈ L_s} L_i` (Section 5.2),
/// using the *actual* rows produced at scanned leaves (exact for full
/// scans; for range scans this is the realized range size). Returns
/// `f64::INFINITY` when the plan scans no leaves.
pub fn mu_from_counts(meta: &PlanMeta, node_counts: &[u64]) -> f64 {
    let total: u64 = node_counts.iter().sum();
    let leaf_sum: u64 = meta
        .scanned_leaves
        .iter()
        .map(|&(id, card)| card.unwrap_or(node_counts[id]))
        .sum();
    if leaf_sum == 0 {
        return f64::INFINITY;
    }
    total as f64 / leaf_sum as f64
}

/// Observed μ̂ during execution: getnext calls so far divided by rows read
/// so far at the scanned leaves. This is the quantity the Section 6.4
/// hybrid heuristic thresholds on — and the quantity Theorem 7 proves
/// cannot be *guaranteed* accurate.
pub fn mu_observed(meta: &PlanMeta, produced: &[u64], curr: u64) -> f64 {
    let leaf_rows: u64 = meta
        .scanned_leaves
        .iter()
        .map(|&(id, _)| produced[id])
        .sum();
    if leaf_rows == 0 {
        return f64::INFINITY;
    }
    curr as f64 / leaf_rows as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_exec::plan::{JoinType, PlanBuilder};
    use qp_storage::{ColumnType, Database, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table_with_rows(
            "t",
            Schema::of(&[("a", ColumnType::Int)]),
            (0..100).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        db.create_table_with_rows(
            "u",
            Schema::of(&[("x", ColumnType::Int)]),
            (0..50).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        db.create_index("u_x", "u", &["x"], true).unwrap();
        db
    }

    #[test]
    fn progress_clamps() {
        assert_eq!(progress(0, 100), 0.0);
        assert_eq!(progress(50, 100), 0.5);
        assert_eq!(progress(200, 100), 1.0);
        assert_eq!(progress(5, 0), 0.0);
    }

    #[test]
    fn meta_captures_structure() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .inl_join(&db, "u", "u_x", vec![0], JoinType::Inner, true, None)
            .unwrap()
            .build();
        let meta = PlanMeta::from_plan(&plan);
        assert_eq!(meta.n_nodes, 2);
        assert_eq!(meta.scanned_leaves, vec![(0, Some(100))]);
        assert!(!meta.scan_based);
        assert_eq!(meta.parent[0], Some(1));
        assert_eq!(meta.parent[1], None);
    }

    #[test]
    fn mu_matches_paper_example() {
        // Example-2 shape: scan(100) → σ(30) → INLJ(30): total 160, leaf
        // sum 100 → μ = 1.6.
        let db = db();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .filter(qp_exec::Expr::col_eq(0, 1i64))
            .inl_join(&db, "u", "u_x", vec![0], JoinType::Inner, true, None)
            .unwrap()
            .build();
        let meta = PlanMeta::from_plan(&plan);
        let mu = mu_from_counts(&meta, &[100, 30, 30]);
        assert!((mu - 1.6).abs() < 1e-12);
    }

    #[test]
    fn mu_observed_tracks_partial_execution() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "t").unwrap().build();
        let meta = PlanMeta::from_plan(&plan);
        assert_eq!(mu_observed(&meta, &[50], 50), 1.0);
        assert!(mu_observed(&meta, &[0], 0).is_infinite());
    }
}
