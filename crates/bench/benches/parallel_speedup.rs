//! The parallelism payoff bench: measure the wall-clock speedup of
//! `qp_exec::parallelize` on TPC-H Q3 and Q5 at 1/2/4 workers, prove the
//! accounting is untouched, and write `BENCH_parallel.json`.
//!
//! The whole point of the `Exchange` design is that parallelism changes
//! *nothing* the paper's math can see: result rows, per-node getnext
//! counters, and `total(Q)` are byte-identical to the serial run — only
//! wall-clock compresses. Every sample here re-asserts that equivalence
//! (a speedup bought by miscounting would be worse than no speedup), and
//! the p50 speedups land in `BENCH_parallel.json` at the workspace root
//! next to `BENCH_overhead.json`.
//!
//! Three regimes are measured, and `BENCH_parallel.json` names the
//! backend behind every number (`*_backend` fields), so nobody mistakes
//! a simulated-stall figure for a buffer-pool one:
//!
//! * **disk-bound** (the headline `*_speedup_x<n>` numbers) — the
//!   paper's 2005 environment: leaf reads wait on storage. Simulated
//!   with [`qp_storage::Table::set_read_stall`] (one 500 µs stall per
//!   256 heap reads ≈ a page fault per page of tuples). Partitioned
//!   scans overlap their stalls, so the speedup here measures exactly
//!   what `Exchange` buys in the regime the paper's progress bars live
//!   in — and it does not need spare cores, only overlap.
//! * **paged-disk** (`*_paged_speedup_x<n>`) — the same queries over the
//!   qp-pager backend with a deliberately small buffer pool, so the
//!   stalls come from *real* LRU misses (plus a per-miss penalty slept
//!   outside the pool lock) instead of a modulo counter. Morsels align
//!   to page boundaries, so workers fault distinct pages and their
//!   misses overlap like real I/O. The serial paged output is also
//!   checked against the serial heap output — the backend must not
//!   change a single row or counter.
//! * **cpu-bound** (`*_cpu_speedup_x<n>`) — the same queries on raw
//!   in-memory tables. This one is hardware-honest: it needs actual
//!   spare cores (`cores` is recorded in the JSON), and on a 1-core
//!   runner it *shows the overhead* of the exchange path instead.
//!
//! Samples are interleaved across degrees (1, 2, 4, 1, 2, 4, ...) so
//! clock drift and thermal effects hit every degree alike. Since the move
//! to morsel-driven work stealing the measured run is **self-gating**:
//! the disk-bound speedup at 4 workers must reach 2.5x (stall overlap
//! needs no spare cores), and when the runner actually has multiple cores
//! the cpu-bound p50 must not regress below 1.0x at any degree — a
//! stealing scheduler that loses to serial on a multi-core box is a bug,
//! not a shrug. On a 1-core runner the cpu gate is skipped (and says so):
//! gating it there would only measure exchange overhead. The JSON also
//! records `cores` and the morsel/batch sizing the run used, so a reader
//! can tell a 1-core honesty report from a multi-core one.
//!
//! Like every qp-testkit bench: `cargo bench` measures, `cargo test`
//! runs this in smoke mode (equivalence checks only, no timing claims).

use qp_datagen::{TpchConfig, TpchDb};
use qp_exec::{parallelize, run_query, ExecTuning, Plan};
use qp_obs::json::Obj;
use std::path::Path;
use std::time::{Duration, Instant};

const DEGREES: [usize; 3] = [1, 2, 4];

/// Simulated page-fault cadence: one stall per "page" of heap reads.
const STALL_EVERY: u64 = 256;
const STALL: Duration = Duration::from_micros(500);

/// Paged regime: a pool small enough to thrash on the lineitem scan,
/// with a rotating-disk-ish penalty per real miss.
const PAGED_FRAMES: usize = 64;
const PAGED_MISS_PENALTY: Duration = Duration::from_micros(100);

/// One timed execution; returns (nanoseconds, output). The caller checks
/// the output against the serial baseline — every sample doubles as an
/// equivalence test.
fn run_once(plan: &Plan, db: &qp_storage::Database) -> (u64, qp_exec::QueryOutput) {
    let started = Instant::now();
    let (out, _) = run_query(plan, db, None).expect("query runs");
    let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    (ns, out)
}

fn assert_equivalent(serial: &qp_exec::QueryOutput, out: &qp_exec::QueryOutput, degree: usize) {
    assert_eq!(
        out.rows, serial.rows,
        "parallelism {degree} changed the result rows"
    );
    assert_eq!(
        out.total_getnext, serial.total_getnext,
        "parallelism {degree} changed total(Q)"
    );
    assert_eq!(
        out.node_counts[..serial.node_counts.len()],
        serial.node_counts[..],
        "parallelism {degree} changed per-node counters"
    );
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Enables or disables the simulated storage stall on every table.
fn set_stall(db: &qp_storage::Database, on: bool) {
    let (every, stall) = if on {
        (STALL_EVERY, STALL)
    } else {
        (0, Duration::ZERO)
    };
    for name in db.table_names() {
        db.table(name)
            .expect("table exists")
            .set_read_stall(every, stall);
    }
}

/// Measures one query in one regime: p50 nanoseconds per degree,
/// interleaved sampling, equivalence asserted on every sample.
fn measure(plans: &[Plan], db: &qp_storage::Database, samples: usize) -> Vec<u64> {
    let (_, serial) = run_once(&plans[0], db);
    for p in plans {
        run_once(p, db); // warm caches
    }
    let mut ns: Vec<Vec<u64>> = vec![Vec::new(); plans.len()];
    for _ in 0..samples {
        for (i, p) in plans.iter().enumerate() {
            let (t_ns, out) = run_once(p, db);
            assert_equivalent(&serial, &out, DEGREES[i]);
            ns[i].push(t_ns);
        }
    }
    ns.iter_mut().map(|s| median(s)).collect()
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");

    // Q3 (customer ⋈ orders ⋈ lineitem) and Q5 (the five-way join): the
    // two join pipelines whose probe-side scans dominate, i.e. where the
    // exchange fan-out has work worth splitting.
    // z = 2.0: heavy Zipf skew concentrates join matches in few morsels,
    // so the timed runs exercise actual work stealing, not just fan-out.
    let scale = if full { 0.02 } else { 0.002 };
    let t = TpchDb::generate(TpchConfig {
        scale,
        z: 2.0,
        seed: 11,
    });
    let queries = [
        ("tpch-q3", qp_workloads::tpch::tpch_query(3, &t)),
        ("tpch-q5", qp_workloads::tpch::tpch_query(5, &t)),
    ];

    // The paged twin of the same database, shared by both modes: smoke
    // mode proves equivalence across the backend, full mode times it.
    let paged_dir = std::env::temp_dir().join(format!("qp-parallel-paged-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&paged_dir);
    t.save_paged(&paged_dir).expect("bulk load to page files");
    let paged_db =
        qp_storage::paged::open_database(&paged_dir, PAGED_FRAMES).expect("open paged database");

    if !full {
        // Smoke mode (`cargo test` / ci.sh): one equivalence pass per
        // query, degree, and backend — no timing claims.
        for (name, plan) in &queries {
            let (_, serial) = run_once(plan, &t.db);
            for &degree in &DEGREES {
                let par = parallelize(plan, degree);
                let (_, out) = run_once(&par, &t.db);
                assert_equivalent(&serial, &out, degree);
                let (_, out) = run_once(&par, &paged_db);
                assert_equivalent(&serial, &out, degree);
            }
            println!("parallel_speedup: {name} equivalent at degrees {DEGREES:?} (heap + paged)");
        }
        println!("parallel_speedup: smoke mode (run `cargo bench` to measure)");
        let _ = std::fs::remove_dir_all(&paged_dir);
        return;
    }

    const SAMPLES: usize = 9;
    /// Disk-bound floor at 4 workers: stall overlap needs no spare cores.
    const DISK_GATE_X4: f64 = 2.5;
    /// Paged floor at 4 workers: real misses must still overlap.
    const PAGED_GATE_X4: f64 = 1.2;
    /// Cpu-bound floor at every degree, multi-core runners only.
    const CPU_GATE: f64 = 1.0;
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get() as u64);
    let tuning = ExecTuning::default();
    let mut violations: Vec<String> = Vec::new();
    let mut json = Obj::new()
        .str("bench", "parallel_speedup")
        .f64("scale", scale)
        .u64("samples", SAMPLES as u64)
        .u64("cores", cores)
        .u64("morsel_rows", tuning.morsel_rows as u64)
        .u64("batch_rows", tuning.batch_rows as u64)
        .u64("stall_every_reads", STALL_EVERY)
        .u64("stall_us", STALL.as_micros() as u64)
        // Which storage backend produced which family of numbers.
        .str("disk_backend", "heap + set_read_stall (simulated stalls)")
        .str("paged_backend", "qp-pager buffer pool (real LRU misses)")
        .str("cpu_backend", "heap (in-memory, no stalls)")
        .u64("paged_frames", PAGED_FRAMES as u64)
        .u64(
            "paged_miss_penalty_us",
            PAGED_MISS_PENALTY.as_micros() as u64,
        );
    for (name, plan) in &queries {
        let plans: Vec<Plan> = DEGREES.iter().map(|&d| parallelize(plan, d)).collect();

        set_stall(&t.db, true);
        let io = measure(&plans, &t.db, SAMPLES);
        set_stall(&t.db, false);
        let cpu = measure(&plans, &t.db, SAMPLES);

        // Paged regime: real misses, and the backend itself on trial —
        // the serial paged run must match the serial heap run exactly.
        let (_, heap_serial) = run_once(&plans[0], &t.db);
        let (_, paged_serial) = run_once(&plans[0], &paged_db);
        assert_equivalent(&heap_serial, &paged_serial, 1);
        let pool = paged_db.buffer_pool().expect("paged db has a pool");
        pool.set_miss_penalty(PAGED_MISS_PENALTY);
        let paged = measure(&plans, &paged_db, SAMPLES);
        pool.set_miss_penalty(Duration::ZERO);

        println!("parallel_speedup: {name}, scale {scale}, {SAMPLES} interleaved samples");
        for (regime, medians) in [
            ("disk-bound", &io),
            ("paged-disk", &paged),
            ("cpu-bound", &cpu),
        ] {
            let base = medians[0];
            for (&degree, &m) in DEGREES.iter().zip(medians) {
                println!(
                    "  {regime:<10} degree {degree}: p50 {:>10.3} ms   speedup {:.2}x",
                    m as f64 / 1e6,
                    base as f64 / m as f64
                );
            }
        }
        for (&degree, &m) in DEGREES.iter().zip(&io) {
            json = json.u64(&format!("{name}_p50_ns_x{degree}"), m).f64(
                &format!("{name}_speedup_x{degree}"),
                io[0] as f64 / m as f64,
            );
        }
        for (&degree, &m) in DEGREES.iter().zip(&paged) {
            json = json.u64(&format!("{name}_paged_p50_ns_x{degree}"), m).f64(
                &format!("{name}_paged_speedup_x{degree}"),
                paged[0] as f64 / m as f64,
            );
        }
        for (&degree, &m) in DEGREES.iter().zip(&cpu) {
            json = json.u64(&format!("{name}_cpu_p50_ns_x{degree}"), m).f64(
                &format!("{name}_cpu_speedup_x{degree}"),
                cpu[0] as f64 / m as f64,
            );
        }

        let disk_x4 = io[0] as f64 / io[2] as f64;
        if disk_x4 < DISK_GATE_X4 {
            violations.push(format!(
                "{name}: disk-bound speedup at 4 workers is {disk_x4:.2}x, floor {DISK_GATE_X4}x"
            ));
        }
        // Real misses overlap (the penalty sleeps outside the pool lock)
        // and page-aligned morsels keep workers off each other's pages,
        // so some overlap must survive even on a 1-core runner. The
        // floor is deliberately softer than the simulated-stall gate:
        // eviction churn is real work the modulo counter never pays.
        let paged_x4 = paged[0] as f64 / paged[2] as f64;
        if paged_x4 < PAGED_GATE_X4 {
            violations.push(format!(
                "{name}: paged-disk speedup at 4 workers is {paged_x4:.2}x, floor {PAGED_GATE_X4}x"
            ));
        }
        if cores > 1 {
            for (&degree, &m) in DEGREES.iter().zip(&cpu).skip(1) {
                let speedup = cpu[0] as f64 / m as f64;
                if speedup < CPU_GATE {
                    violations.push(format!(
                        "{name}: cpu-bound speedup at degree {degree} is {speedup:.2}x on a \
                         {cores}-core runner, floor {CPU_GATE}x"
                    ));
                }
            }
        } else {
            println!(
                "  cpu-bound gate skipped: 1-core runner (a multi-core box gates >= {CPU_GATE}x \
                 at degrees 2 and 4)"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&paged_dir);

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    match std::fs::write(&path, format!("{}\n", json.finish())) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("parallel_speedup GATE FAILED: {v}");
        }
        std::process::exit(1);
    }
    println!("parallel_speedup: all speedup gates passed");
}
