//! Micro-benchmarks (qp-testkit harness): the cost of the
//! progress-estimation machinery itself — per-estimate cost of each
//! estimator, per-refresh cost of the bounds tracker, and the end-to-end
//! monitor snapshot.
//!
//! A progress estimator is only practical if its per-snapshot cost is
//! negligible next to a getnext call; these benches quantify that.

use qp_datagen::{RowOrder, SyntheticConfig, SyntheticDb};
use qp_exec::plan::{JoinType, Plan, PlanBuilder};
use qp_progress::bounds::BoundsTracker;
use qp_progress::estimators::{
    standard_suite, Dne, EstimatorContext, Pmax, ProgressEstimator, Safe,
};
use qp_progress::PlanMeta;
use qp_stats::DbStats;
use qp_testkit::bench::{black_box, BenchmarkId, Harness};

fn synth() -> SyntheticDb {
    SyntheticDb::generate(SyntheticConfig {
        r1_rows: 2_000,
        r2_rows: 20_000,
        z: 2.0,
        r1_order: RowOrder::AsGenerated,
        seed: 1,
    })
}

fn inl_plan(s: &SyntheticDb) -> Plan {
    PlanBuilder::scan(&s.db, "r1")
        .unwrap()
        .inl_join(&s.db, "r2", "r2_b", vec![0], JoinType::Inner, true, None)
        .unwrap()
        .build()
}

/// A mid-execution state for estimate benchmarking.
struct MidState {
    meta: PlanMeta,
    produced: Vec<u64>,
    exhausted: Vec<bool>,
    lb: u64,
    ub: u64,
}

fn mid_state(plan: &Plan) -> MidState {
    let meta = PlanMeta::from_plan(plan);
    let produced: Vec<u64> = (0..plan.len() as u64).map(|i| 500 + i * 7).collect();
    let exhausted = vec![false; plan.len()];
    let mut bounds = BoundsTracker::new(plan, None);
    bounds.recompute(&produced, &exhausted);
    MidState {
        meta,
        produced,
        exhausted,
        lb: bounds.total_lb(),
        ub: bounds.total_ub(),
    }
}

fn bench_estimates(c: &mut Harness) {
    let s = synth();
    let plan = inl_plan(&s);
    let st = mid_state(&plan);
    let cx = EstimatorContext {
        produced: &st.produced,
        exhausted: &st.exhausted,
        curr: st.produced.iter().sum(),
        lb_total: st.lb,
        ub_total: st.ub,
        meta: &st.meta,
        node_bounds: &[],
    };
    let mut group = c.benchmark_group("estimate");
    let mut dne = Dne;
    group.bench_function("dne", |b| b.iter(|| black_box(dne.estimate(&cx))));
    let mut pmax = Pmax;
    group.bench_function("pmax", |b| b.iter(|| black_box(pmax.estimate(&cx))));
    let mut safe = Safe;
    group.bench_function("safe", |b| b.iter(|| black_box(safe.estimate(&cx))));
    let mut suite = standard_suite();
    group.bench_function("full-suite", |b| {
        b.iter(|| {
            for e in &mut suite {
                black_box(e.estimate(&cx));
            }
        })
    });
    group.finish();
}

fn bench_bounds_refresh(c: &mut Harness) {
    let s = synth();
    let plan = inl_plan(&s);
    let produced: Vec<u64> = (0..plan.len() as u64).map(|i| 500 + i * 7).collect();
    let exhausted = vec![false; plan.len()];
    let mut tracker = BoundsTracker::new(&plan, None);
    c.bench_function("bounds/recompute-2node-plan", |b| {
        b.iter(|| {
            tracker.recompute(black_box(&produced), black_box(&exhausted));
            black_box(tracker.total_lb());
        })
    });

    // A wider plan: TPC-H-like bushy join tree (12 nodes).
    let stats = DbStats::build(&s.db);
    let _ = &stats;
    let wide = {
        let a = PlanBuilder::scan(&s.db, "r1").unwrap();
        let b = PlanBuilder::scan(&s.db, "r2").unwrap();
        let j = a
            .hash_join(b, vec![0], vec![0], JoinType::Inner, true)
            .unwrap();
        let c2 = PlanBuilder::scan(&s.db, "r2").unwrap();
        j.hash_join(c2, vec![0], vec![0], JoinType::Inner, true)
            .unwrap()
            .sort(vec![(0, true)])
            .limit(100)
            .build()
    };
    let producedw: Vec<u64> = (0..wide.len() as u64).map(|i| 100 + i).collect();
    let exhaustedw = vec![false; wide.len()];
    let mut trackerw = BoundsTracker::new(&wide, None);
    c.bench_function("bounds/recompute-7node-plan", |b| {
        b.iter(|| {
            trackerw.recompute(black_box(&producedw), black_box(&exhaustedw));
            black_box(trackerw.total_ub());
        })
    });
}

fn bench_monitoring_overhead(c: &mut Harness) {
    // End-to-end: run the same query bare vs with the full monitor at
    // different strides — the instrumentation tax.
    let s = synth();
    let plan = inl_plan(&s);
    let stats = DbStats::build(&s.db);
    let mut group = c.benchmark_group("monitoring");
    group.sample_size(20);
    group.bench_function("bare-run", |b| {
        b.iter(|| {
            let (out, _) = qp_exec::run_query(&plan, &s.db, None).unwrap();
            black_box(out.total_getnext)
        })
    });
    for stride in [1u64, 64, 1024] {
        group.bench_with_input(
            BenchmarkId::new("monitored", stride),
            &stride,
            |b, &stride| {
                b.iter(|| {
                    let (out, trace) = qp_progress::monitor::run_with_progress(
                        &plan,
                        &s.db,
                        Some(&stats),
                        standard_suite(),
                        Some(stride),
                    )
                    .unwrap();
                    black_box((out.total_getnext, trace.snapshots().len()))
                })
            },
        );
    }
    group.finish();
}

qp_testkit::bench_main!(
    bench_estimates,
    bench_bounds_refresh,
    bench_monitoring_overhead
);
