//! Benchmarks (qp-testkit harness) of the execution substrate: operator
//! throughput in getnext calls per second, with and without progress
//! instrumentation.

use qp_datagen::{RowOrder, SyntheticConfig, SyntheticDb};
use qp_exec::expr::{CmpOp, Expr};
use qp_exec::plan::{JoinType, Plan, PlanBuilder};
use qp_storage::Value;
use qp_testkit::bench::{black_box, Harness, Throughput};

fn synth() -> SyntheticDb {
    SyntheticDb::generate(SyntheticConfig {
        r1_rows: 10_000,
        r2_rows: 100_000,
        z: 1.0,
        r1_order: RowOrder::AsGenerated,
        seed: 2,
    })
}

fn total(plan: &Plan, s: &SyntheticDb) -> u64 {
    qp_exec::run_query(plan, &s.db, None)
        .unwrap()
        .0
        .total_getnext
}

fn bench_operators(c: &mut Harness) {
    let s = synth();
    let mut group = c.benchmark_group("executor");
    group.sample_size(20);

    let scan = PlanBuilder::scan(&s.db, "r2").unwrap().build();
    group.throughput(Throughput::Elements(total(&scan, &s)));
    group.bench_function("seq-scan-100k", |b| b.iter(|| black_box(total(&scan, &s))));

    let filter = PlanBuilder::scan(&s.db, "r2")
        .unwrap()
        .filter(Expr::cmp(
            CmpOp::Lt,
            Expr::Col(0),
            Expr::Lit(Value::Int(5_000)),
        ))
        .build();
    group.throughput(Throughput::Elements(total(&filter, &s)));
    group.bench_function("filter-100k", |b| b.iter(|| black_box(total(&filter, &s))));

    let hash = PlanBuilder::scan(&s.db, "r1")
        .unwrap()
        .hash_join(
            PlanBuilder::scan(&s.db, "r2").unwrap(),
            vec![0],
            vec![0],
            JoinType::Inner,
            true,
        )
        .unwrap()
        .build();
    group.throughput(Throughput::Elements(total(&hash, &s)));
    group.bench_function("hash-join-10k-100k", |b| {
        b.iter(|| black_box(total(&hash, &s)))
    });

    let inl = PlanBuilder::scan(&s.db, "r1")
        .unwrap()
        .inl_join(&s.db, "r2", "r2_b", vec![0], JoinType::Inner, true, None)
        .unwrap()
        .build();
    group.throughput(Throughput::Elements(total(&inl, &s)));
    group.bench_function("inl-join-10k-outer", |b| {
        b.iter(|| black_box(total(&inl, &s)))
    });

    let sort = PlanBuilder::scan(&s.db, "r2")
        .unwrap()
        .sort(vec![(0, true)])
        .build();
    group.throughput(Throughput::Elements(total(&sort, &s)));
    group.bench_function("sort-100k", |b| b.iter(|| black_box(total(&sort, &s))));

    let merge = {
        let l = PlanBuilder::scan(&s.db, "r1")
            .unwrap()
            .sort(vec![(0, true)]);
        let r = PlanBuilder::scan(&s.db, "r2")
            .unwrap()
            .sort(vec![(0, true)]);
        l.merge_join(r, vec![0], vec![0], JoinType::Inner, true)
            .unwrap()
            .build()
    };
    group.throughput(Throughput::Elements(total(&merge, &s)));
    group.bench_function("merge-join-10k-100k", |b| {
        b.iter(|| black_box(total(&merge, &s)))
    });

    group.finish();
}

qp_testkit::bench_main!(bench_operators);
