//! The observability overhead gate: prove the hot-path counters cost
//! < 5 % on a real TPC-H pipeline, and write `BENCH_overhead.json`.
//!
//! Observability that taxes the hot path gets turned off; the whole
//! `qp-obs` design (relaxed atomics on the already-instrumented getnext
//! interrupt point, timing opt-in) exists to keep the tax ignorable.
//! This bench *enforces* that: it runs the same TPC-H join pipeline in
//! four configurations —
//!
//! * `bare` — no observability attached (`RunControls::obs = None`);
//! * `counters` — per-operator counters, untimed;
//! * `spans` — counters plus the hierarchical span sink (the service
//!   default: every session gets query/pipeline/operator spans, a
//!   handful of lock-free ring writes per operator lifetime — not per
//!   getnext);
//! * `timed` — counters plus two `Instant::now()` reads *and* a
//!   latency-histogram record per getnext.
//!
//! Samples are interleaved (bare, counters, spans, timed, bare, ...) so
//! clock drift and thermal effects hit all four alike. The *counters*
//! and *spans* medians must each stay within `QP_OBS_BUDGET_PCT`
//! percent (default 5) of bare, or the bench exits non-zero — this is
//! the CI overhead gate, and it is what keeps spans default-on. The
//! timed mode is reported for information and not gated (its per-call
//! cost is why timing is opt-in).
//!
//! Results land in `BENCH_overhead.json` at the workspace root, the
//! first point of the repo's performance trajectory.
//!
//! Like every qp-testkit bench: `cargo bench` measures, `cargo test`
//! runs this in smoke mode (one tiny sanity pass, no measurement).

use qp_datagen::{TpchConfig, TpchDb};
use qp_exec::executor::QueryRun;
use qp_exec::{Plan, RunControls, SpanAttach};
use qp_obs::json::Obj;
use qp_obs::{QueryObs, SpanSink};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Which observability configuration a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Bare,
    Counters,
    Spans,
    Timed,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Bare => "bare",
            Mode::Counters => "counters",
            Mode::Spans => "spans",
            Mode::Timed => "timed",
        }
    }
}

const MODES: [Mode; 4] = [Mode::Bare, Mode::Counters, Mode::Spans, Mode::Timed];

/// One timed execution of the pipeline; returns (nanoseconds, total
/// getnext calls, rows summed over the per-node obs counters — 0 when
/// bare). The executor's `Counters::total()` counts *producing* getnext
/// calls (the paper's `Curr`), which is exactly the obs `rows` counter
/// summed over nodes — the `calls` counter additionally sees each
/// node's final exhausted call.
fn run_once(plan: &Plan, db: &qp_storage::Database, mode: Mode) -> (u64, u64, u64) {
    let obs = match mode {
        Mode::Bare => None,
        Mode::Counters | Mode::Spans => Some(QueryObs::new(0, plan.op_labels(), false, None)),
        Mode::Timed => Some(QueryObs::new(0, plan.op_labels(), true, None)),
    };
    // The service attaches one shared sink per process; a fresh one per
    // run keeps samples independent. Capacity matches the service
    // default, far above the handful of marks one pipeline produces.
    let spans = (mode == Mode::Spans).then(|| SpanAttach {
        sink: Arc::new(SpanSink::new(4096)),
        query: 0,
        parent: 0,
    });
    let controls = RunControls {
        obs: obs.clone(),
        spans,
        ..RunControls::default()
    };
    let started = Instant::now();
    let mut run = QueryRun::with_controls(plan, db, controls).expect("plan builds");
    let rows = run.run().expect("query runs");
    let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    std::hint::black_box(rows);
    let total = run.context().counters().total();
    let counted = obs.map_or(0, |o| o.snapshot().iter().map(|s| s.rows).sum());
    (ns, total, counted)
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let full = std::env::args().any(|a| a == "--bench");

    // The TPC-H pipeline under test: Q3-shaped three-way join
    // (customer ⋈ orders ⋈ lineitem with filters and aggregation) — a
    // realistic operator mix, dominated by cheap getnext calls, which is
    // exactly where fixed per-call overhead shows up worst.
    let scale = if full { 0.01 } else { 0.002 };
    let t = TpchDb::generate(TpchConfig {
        scale,
        z: 1.0,
        seed: 11,
    });
    let plan = qp_workloads::tpch::tpch_query(3, &t);

    if !full {
        // Smoke mode (`cargo test`): one sanity pass per mode, no timing
        // claims — just prove the three configurations agree on the work
        // done and that counters count every call.
        let (_, bare_total, _) = run_once(&plan, &t.db, Mode::Bare);
        for mode in [Mode::Counters, Mode::Spans, Mode::Timed] {
            let (_, total, counted) = run_once(&plan, &t.db, mode);
            assert_eq!(total, bare_total, "{mode:?} changed the work done");
            assert_eq!(
                counted, total,
                "{mode:?} counters missed producing getnext calls"
            );
        }
        println!("obs_overhead: smoke mode (run `cargo bench` to measure and gate)");
        return;
    }

    let budget_pct: f64 = std::env::var("QP_OBS_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    const SAMPLES: usize = 31;

    // Warm caches so the first interleaved round isn't charged for page
    // faults, then sample all three modes round-robin.
    for mode in MODES {
        run_once(&plan, &t.db, mode);
    }
    let mut ns: [Vec<u64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut total_getnext = 0;
    for _ in 0..SAMPLES {
        for (i, mode) in MODES.iter().enumerate() {
            let (t_ns, total, counted) = run_once(&plan, &t.db, *mode);
            ns[i].push(t_ns);
            total_getnext = total;
            if *mode != Mode::Bare {
                assert_eq!(
                    counted, total,
                    "{mode:?} counters missed producing getnext calls"
                );
            }
        }
    }

    let bare = median(&mut ns[0]);
    let counters = median(&mut ns[1]);
    let spans = median(&mut ns[2]);
    let timed = median(&mut ns[3]);
    let pct = |m: u64| (m as f64 - bare as f64) / bare as f64 * 100.0;
    let counters_pct = pct(counters);
    let spans_pct = pct(spans);
    let timed_pct = pct(timed);

    println!("obs_overhead: TPC-H Q3, scale {scale}, {SAMPLES} interleaved samples");
    println!("  getnext calls per run: {total_getnext}");
    for (mode, m) in MODES.iter().zip([bare, counters, spans, timed]) {
        println!(
            "  {:<10} median {:>12.3} ms{}",
            mode.name(),
            m as f64 / 1e6,
            if *mode == Mode::Bare {
                String::new()
            } else {
                format!("   ({:+.2} % vs bare)", pct(m))
            }
        );
    }

    let pass = counters_pct <= budget_pct && spans_pct <= budget_pct;
    let json = Obj::new()
        .str("bench", "obs_overhead")
        .str("query", "tpch-q3")
        .f64("scale", scale)
        .u64("samples", SAMPLES as u64)
        .u64("getnext_per_run", total_getnext)
        .u64("bare_median_ns", bare)
        .u64("counters_median_ns", counters)
        .u64("spans_median_ns", spans)
        .u64("timed_median_ns", timed)
        .f64("counters_overhead_pct", counters_pct)
        .f64("spans_overhead_pct", spans_pct)
        .f64("timed_overhead_pct", timed_pct)
        .f64("budget_pct", budget_pct)
        .str("gate", if pass { "pass" } else { "fail" })
        .finish();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_overhead.json");
    match std::fs::write(&path, format!("{json}\n")) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }

    if !pass {
        eprintln!(
            "OVERHEAD GATE FAILED: counters {counters_pct:.2} % / spans {spans_pct:.2} % \
             vs budget {budget_pct} %"
        );
        std::process::exit(1);
    }
    println!(
        "  gate: counters {counters_pct:+.2} %, spans {spans_pct:+.2} % \
         <= {budget_pct} % budget — PASS"
    );
}
