//! Plain-text rendering of experiment results (series and tables).

/// Renders an estimated-vs-actual progress series as a fixed-width table,
/// downsampled to roughly `points` rows.
pub fn render_series(
    title: &str,
    columns: &[&str],
    series: &[(f64, Vec<f64>)],
    points: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!("{:>10}", "actual"));
    for c in columns {
        out.push_str(&format!("{c:>12}"));
    }
    out.push('\n');
    let step = (series.len() / points.max(1)).max(1);
    for (i, (actual, ests)) in series.iter().enumerate() {
        if i % step != 0 && i + 1 != series.len() {
            continue;
        }
        out.push_str(&format!("{:>9.1}%", actual * 100.0));
        for e in ests {
            out.push_str(&format!("{:>11.1}%", e * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Renders a generic table with a header row.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    for (h, w) in header.iter().zip(&widths) {
        out.push_str(&format!("{h:>w$}  ", w = w));
    }
    out.push('\n');
    for row in rows {
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!("{cell:>w$}  ", w = w));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_renders_downsampled() {
        let series: Vec<(f64, Vec<f64>)> =
            (0..100).map(|i| (i as f64 / 100.0, vec![0.5])).collect();
        let s = render_series("t", &["dne"], &series, 10);
        let lines = s.lines().count();
        assert!((10..=14).contains(&lines), "{lines} lines");
        assert!(s.contains("dne"));
    }

    #[test]
    fn table_aligns_columns() {
        let s = render_table(
            "t",
            &["q", "mu"],
            &[
                vec!["1".into(), "1.989".into()],
                vec!["21".into(), "2.782".into()],
            ],
        );
        assert!(s.contains("1.989"));
        assert!(s.contains("21"));
    }
}
