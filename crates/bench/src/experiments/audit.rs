//! AUDIT cross-validation (`repro -- audit`): the service's live
//! estimator-accuracy postmortem against an offline re-score of the
//! same session's `TRACE` output.
//!
//! The `AUDIT` verb's whole value is that its numbers are *checkable*:
//! the scoring replays the session's checkpoint tail — the exact lines
//! `TRACE <id>` serves — against the finished query's `total(Q)`, with
//! pure-f64 arithmetic and shortest-round-trip float rendering. So any
//! consumer holding a `TRACE` dump can recompute the audit and get the
//! same bytes. This experiment *is* that consumer: it runs a seeded
//! TPC-H Q3 through a real `ProgressServer` over TCP, fetches both
//! `AUDIT <id>` and `TRACE <id>` through the wire client, re-scores the
//! trace with `qp_progress::score_checkpoints`, renders the scores
//! through the same JSON writer, and demands the
//! `total`/`points`/`max_ratio`/`avg_ratio`/`p4_violations` run of each
//! audit line match byte-for-byte — across several data seeds, so the
//! agreement isn't an artifact of one trajectory.

use crate::render::render_table;
use crate::Scale;
use qp_datagen::{TpchConfig, TpchDb};
use qp_obs::json::{parse, Obj, Value};
use qp_progress::score_checkpoints;
use qp_service::{ProgressServer, QueryService, ServiceClient, ServiceConfig};
use qp_stats::DbStats;
use std::sync::Arc;

/// Outcome of the cross-validation sweep.
#[derive(Debug, Clone)]
pub struct AuditResult {
    /// `(seed, state, estimators, checkpoints, matched)` per run.
    pub rows: Vec<Vec<String>>,
    /// Mismatches and structural failures; empty = run passed.
    pub violations: Vec<String>,
}

impl AuditResult {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = render_table(
            "audit: AUDIT-over-TCP vs offline re-score of TRACE (TPC-H Q3)",
            &["seed", "state", "estimators", "checkpoints", "matched"],
            &self.rows,
        );
        out.push_str(
            "each audit line's total/points/max_ratio/avg_ratio/p4_violations \
             re-derived from the TRACE checkpoint tail, byte-for-byte\n",
        );
        if self.passed() {
            out.push_str("PASS: live postmortems reproduce offline across all seeds\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// The seeds swept (≥ 3, so byte-agreement is demonstrated across
/// genuinely different data and trajectories, not one lucky run).
pub const AUDIT_SEEDS: [u64; 3] = [11, 23, 47];

/// Runs the sweep at `scale` (the `--small` flag shrinks the data, not
/// the seed count).
pub fn audit(scale: &Scale) -> AuditResult {
    let mut rows = Vec::new();
    let mut violations = Vec::new();
    for seed in AUDIT_SEEDS {
        run_seed(scale, seed, &mut rows, &mut violations);
    }
    AuditResult { rows, violations }
}

fn run_seed(scale: &Scale, seed: u64, rows: &mut Vec<Vec<String>>, violations: &mut Vec<String>) {
    let t = TpchDb::generate(TpchConfig {
        scale: scale.tpch_scale,
        z: scale.tpch_z,
        seed,
    });
    let db = Arc::new(t.db);
    let stats = Arc::new(DbStats::build(&db));
    let service = Arc::new(QueryService::with_stats(
        Arc::clone(&db),
        Arc::clone(&stats),
        ServiceConfig {
            workers: 1,
            stride: Some(100),
            ..ServiceConfig::default()
        },
    ));
    let mut server = ProgressServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connects");

    let sql = qp_workloads::sql_text::tpch_sql(3).expect("Q3 sql text");
    let id = client
        .submit(sql)
        .expect("io")
        .expect("Q3 admitted over the wire");
    service.wait(id);

    let state = service
        .status(id)
        .map(|s| s.state.to_string())
        .unwrap_or_else(|| "?".into());
    let audit_lines = match client.audit(Some(id)).expect("io") {
        Ok(lines) => lines,
        Err(e) => {
            violations.push(format!("seed {seed}: AUDIT {id} refused: {e}"));
            return;
        }
    };
    let trace_lines = match client.trace(id).expect("io") {
        Ok(lines) => lines,
        Err(e) => {
            violations.push(format!("seed {seed}: TRACE {id} refused: {e}"));
            return;
        }
    };
    server.shutdown();

    let (total, checkpoints) = match parse_trace(&trace_lines) {
        Ok(parts) => parts,
        Err(e) => {
            violations.push(format!("seed {seed}: {e}"));
            return;
        }
    };

    let mut matched = 0usize;
    for line in &audit_lines {
        let v = match parse(line) {
            Ok(v) => v,
            Err(e) => {
                violations.push(format!("seed {seed}: unparsable audit line {line:?}: {e}"));
                continue;
            }
        };
        let Some(name) = v.get("estimator").and_then(Value::as_str) else {
            violations.push(format!("seed {seed}: audit line without estimator: {line}"));
            continue;
        };
        // Re-score this estimator's column of the checkpoint tail with
        // the same function the service used — then render through the
        // same JSON writer and compare raw bytes, not parsed floats.
        let points: Vec<(u64, f64)> = checkpoints
            .iter()
            .map(|(curr, ests)| {
                let e = ests.get(name).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
                (*curr, e)
            })
            .collect();
        let Some(score) = score_checkpoints(&points, total) else {
            violations.push(format!(
                "seed {seed}: offline scorer produced nothing for {name} \
                 ({} checkpoints, total {total})",
                points.len()
            ));
            continue;
        };
        let rendered = Obj::new()
            .u64("total", total)
            .u64("points", score.points)
            .f64("max_ratio", score.max_ratio)
            .f64("avg_ratio", score.avg_ratio)
            .u64("p4_violations", score.p4_violations)
            .finish();
        // `to_jsonl` keeps these five keys adjacent and in this order,
        // so the braces-stripped render must appear verbatim.
        let fragment = rendered
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .expect("Obj::finish wraps in braces");
        if line.contains(fragment) {
            matched += 1;
        } else {
            violations.push(format!(
                "seed {seed}: {name} audit line {line} does not contain \
                 offline re-score {fragment}"
            ));
        }
    }
    if audit_lines.is_empty() {
        violations.push(format!(
            "seed {seed}: AUDIT returned no lines for {state} {id}"
        ));
    }

    rows.push(vec![
        seed.to_string(),
        state,
        audit_lines.len().to_string(),
        checkpoints.len().to_string(),
        format!("{matched}/{}", audit_lines.len()),
    ]);
}

type Checkpoint = (u64, std::collections::BTreeMap<String, Value>);

/// Extracts `total(Q)` (from the meta line) and the checkpoint tail
/// (curr + every named estimate) from a `TRACE` dump.
fn parse_trace(lines: &[String]) -> Result<(u64, Vec<Checkpoint>), String> {
    let mut total = None;
    let mut checkpoints = Vec::new();
    for line in lines {
        let v = parse(line).map_err(|e| format!("unparsable trace line {line:?}: {e}"))?;
        match v.get("type").and_then(Value::as_str) {
            Some("meta") => total = v.get("total_getnext").and_then(Value::as_u64),
            Some("checkpoint") => {
                let curr = v.get("curr").and_then(Value::as_u64).unwrap_or(0);
                let fields = ["type", "seq", "curr", "lb", "ub"];
                let ests = match &v {
                    Value::Object(map) => map
                        .iter()
                        .filter(|(k, _)| !fields.contains(&k.as_str()))
                        .map(|(k, val)| (k.clone(), val.clone()))
                        .collect(),
                    _ => Default::default(),
                };
                checkpoints.push((curr, ests));
            }
            _ => {}
        }
    }
    let total = total.ok_or("TRACE meta carries no total_getnext (query not FINISHED?)")?;
    Ok((total, checkpoints))
}
