//! Figure regenerators (Figures 3–7 of the paper).

use super::{traced_run, SeriesResult};
use crate::Scale;
use qp_datagen::{RowOrder, SyntheticConfig, SyntheticDb};
use qp_exec::plan::{JoinType, Plan, PlanBuilder};
use qp_exec::Expr;
use qp_progress::estimators::{Dne, Pmax, Safe};
use qp_progress::metrics::{error_stats, ratio_error, ErrorStats};
use qp_stats::DbStats;
use qp_storage::Value;

/// A figure's data: the plotted series plus error summaries per estimator.
#[derive(Debug, Clone)]
pub struct FigureResult {
    pub series: SeriesResult,
    pub errors: Vec<(&'static str, ErrorStats)>,
}

impl FigureResult {
    fn new(series: SeriesResult, trace: &qp_progress::ProgressTrace) -> FigureResult {
        let errors = trace
            .names()
            .iter()
            .map(|n| (*n, error_stats(trace, n).expect("series present")))
            .collect();
        FigureResult { series, errors }
    }

    /// Renders the series and the error summary.
    pub fn render(&self) -> String {
        let mut s = self.series.render();
        for (name, e) in &self.errors {
            s.push_str(&format!(
                "{name}: max abs {:.2}%, avg abs {:.2}%, max ratio {:.2}\n",
                e.max_abs * 100.0,
                e.avg_abs * 100.0,
                e.max_ratio
            ));
        }
        s
    }
}

/// Figure 3 — the dne estimator on TPC-H Q1 over the z=2 skewed database:
/// dne tracks the true progress almost exactly (per-tuple work variance is
/// tiny), despite the skew wrecking cardinality estimates.
pub fn fig3(scale: &Scale) -> FigureResult {
    let t = scale.tpch();
    let stats = DbStats::build(&t.db);
    let plan = qp_workloads::tpch_query(1, &t);
    let (_, trace) = traced_run(plan, &t.db, &stats, vec![Box::new(Dne)]);
    let series = SeriesResult::from_trace("Figure 3: dne on TPC-H Q1 (z=2)", &trace);
    FigureResult::new(series, &trace)
}

/// The Section 5.2/5.3 synthetic INL-join plan: `r1 ⋈INL r2` over the
/// zipfian index. The join is **linear** — `r1.a` is unique, so each `r2`
/// row matches at most one outer row and the output is bounded by `|r2|`
/// (this is the paper's "linear joins" class from Section 3; the system
/// would know it from the uniqueness of `r1.a`).
pub fn synthetic_inl_plan(s: &SyntheticDb) -> Plan {
    PlanBuilder::scan(&s.db, "r1")
        .expect("r1")
        .inl_join(&s.db, "r2", "r2_b", vec![0], JoinType::Inner, true, None)
        .expect("r2_b")
        .build()
}

/// The scan-based variant of the same join (Example 3 / Table 1): hash
/// join with `r1` as build side — both relations scanned, output linear
/// (`|output| = |r2|` since `r1.a` is unique).
pub fn synthetic_hash_plan(s: &SyntheticDb) -> Plan {
    let probe = PlanBuilder::scan(&s.db, "r2").expect("r2");
    PlanBuilder::scan(&s.db, "r1")
        .expect("r1")
        .hash_join(probe, vec![0], vec![0], JoinType::Inner, true)
        .unwrap()
        .build()
}

/// Builds the synthetic database with the requested `r1` order.
pub fn synthetic(scale: &Scale, order: RowOrder) -> SyntheticDb {
    SyntheticDb::generate(SyntheticConfig {
        r1_rows: scale.synth_r1,
        r2_rows: scale.synth_r2,
        z: 2.0,
        r1_order: order,
        seed: scale.seed,
    })
}

/// Figure 4 — pmax vs dne with the high-skew keys at the *front* of `r1`:
/// dne massively underestimates (the early tuples carry most of the
/// work); pmax stays within its μ-factor guarantee.
pub fn fig4(scale: &Scale) -> FigureResult {
    let s = synthetic(scale, RowOrder::SkewFirst);
    let stats = DbStats::build(&s.db);
    let plan = synthetic_inl_plan(&s);
    let (_, trace) = traced_run(plan, &s.db, &stats, vec![Box::new(Dne), Box::new(Pmax)]);
    let series =
        SeriesResult::from_trace("Figure 4: pmax vs dne (INL join, skew-first order)", &trace);
    FigureResult::new(series, &trace)
}

/// Figure 5 — safe vs dne with the high-skew keys at the *end* of `r1`
/// (the worst case): dne believes the query is nearly done right before
/// the skewed tuple detonates; safe hedges and suffers far less.
pub fn fig5(scale: &Scale) -> FigureResult {
    let s = synthetic(scale, RowOrder::SkewLast);
    let stats = DbStats::build(&s.db);
    let plan = synthetic_inl_plan(&s);
    let (_, trace) = traced_run(plan, &s.db, &stats, vec![Box::new(Dne), Box::new(Safe)]);
    let series = SeriesResult::from_trace(
        "Figure 5: safe vs dne (INL join, worst-case skew-last order)",
        &trace,
    );
    FigureResult::new(series, &trace)
}

/// Figure 6 — the ratio error of pmax over the execution of TPC-H Q21:
/// high early (μ = 2.8 territory), dropping as bound refinement catches
/// up, converging to 1.
pub struct Fig6Result {
    /// `(true_progress, ratio_error_of_pmax)`.
    pub ratio_series: Vec<(f64, f64)>,
    pub mu: f64,
}

impl Fig6Result {
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 6: ratio error of pmax over TPC-H Q21 ==\n");
        out.push_str(&format!("μ(Q21) = {:.3}\n", self.mu));
        out.push_str(&format!("{:>10}{:>12}\n", "progress", "ratio err"));
        let step = (self.ratio_series.len() / 25).max(1);
        for (i, (p, r)) in self.ratio_series.iter().enumerate() {
            if i % step == 0 || i + 1 == self.ratio_series.len() {
                out.push_str(&format!("{:>9.1}%{r:>12.3}\n", p * 100.0));
            }
        }
        out
    }
}

pub fn fig6(scale: &Scale) -> Fig6Result {
    let t = scale.tpch();
    let stats = DbStats::build(&t.db);
    let plan = qp_workloads::tpch_query(21, &t);
    let meta = qp_progress::PlanMeta::from_plan(&plan);
    let (out, trace) = traced_run(plan, &t.db, &stats, vec![Box::new(Pmax)]);
    let mu = qp_progress::mu_from_counts(&meta, &out.node_counts);
    let ratio_series = trace
        .series("pmax")
        .expect("pmax traced")
        .into_iter()
        .filter(|(p, _)| *p > 0.0)
        .map(|(p, e)| (p, ratio_error(e, p)))
        .collect();
    Fig6Result { ratio_series, mu }
}

/// Figure 7 — the same worst-case data as Figure 5 but with an extra
/// predicate on `r1` that filters out the high-skew keys: the variance in
/// per-tuple work collapses, dne becomes nearly exact, and safe's hedging
/// costs it a persistent underestimate.
pub fn fig7(scale: &Scale) -> FigureResult {
    let s = synthetic(scale, RowOrder::SkewLast);
    let stats = DbStats::build(&s.db);
    // Filter out every key that joins with more than one row — "very few
    // tuples will actually join; thus the variance in the per-tuple work
    // is negligible" (Section 6.2). Keep the hottest keys in the list
    // first in case the cap bites.
    let mut hot: Vec<(Value, u64)> = s
        .fanout
        .iter()
        .filter(|(_, &f)| f > 1)
        .map(|(k, &f)| (k.clone(), f))
        .collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hot.truncate(1024);
    let hot: Vec<Value> = hot.into_iter().map(|(k, _)| k).collect();
    let plan = PlanBuilder::scan(&s.db, "r1")
        .expect("r1")
        .filter(Expr::Not(Box::new(Expr::InList(
            Box::new(Expr::Col(0)),
            hot,
        ))))
        .inl_join(&s.db, "r2", "r2_b", vec![0], JoinType::Inner, true, None)
        .expect("r2_b")
        .build();
    let (_, trace) = traced_run(plan, &s.db, &stats, vec![Box::new(Dne), Box::new(Safe)]);
    let series = SeriesResult::from_trace(
        "Figure 7: safe vs dne with the skewed keys filtered out",
        &trace,
    );
    FigureResult::new(series, &trace)
}
