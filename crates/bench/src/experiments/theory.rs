//! Theorem-validation experiments: the lower bound (Theorem 1), random-
//! order accuracy (Theorem 3), predictive orders (Theorem 4), scan-based
//! guarantees (Property 6), and the pmax invariants (Property 4 /
//! Theorem 5) across the whole workload suite.

use super::traced_run;
use crate::Scale;
use qp_progress::adversary::AdversarialPair;
use qp_progress::analysis::{dne_expected_error, predictive_fraction};
use qp_progress::estimators::standard_suite;
use qp_progress::metrics::error_stats;
use qp_progress::monitor::run_with_progress;
use qp_progress::{mu_from_counts, PlanMeta};
use qp_stats::DbStats;

/// The lower-bound demonstration: every estimator of the suite, shown the
/// identical execution prefix + identical statistics of the twin
/// instances, is forced into at least the `√(px/py)` ratio error on one
/// of them — and `safe` essentially achieves the optimum.
#[derive(Debug, Clone)]
pub struct LowerBoundResult {
    pub stats_identical: bool,
    /// True progress at the decision instant on the X / Y twin.
    pub progress_x: f64,
    pub progress_y: f64,
    /// The optimal worst-case ratio error `√(px/py)`.
    pub best_achievable: f64,
    /// Per estimator: `(name, estimate_at_decision, forced_ratio_error)`.
    pub rows: Vec<(&'static str, f64, f64)>,
}

impl LowerBoundResult {
    pub fn render(&self) -> String {
        let mut out = String::from("== Theorem 1: adversarial twin instances ==\n");
        out.push_str(&format!(
            "single-relation statistics identical across twins: {}\n",
            self.stats_identical
        ));
        out.push_str(&format!(
            "true progress at the decision instant: {:.1}% (X twin) vs {:.1}% (Y twin)\n",
            self.progress_x * 100.0,
            self.progress_y * 100.0
        ));
        out.push_str(&format!(
            "best achievable worst-case ratio error: {:.2}\n",
            self.best_achievable
        ));
        out.push_str(&crate::render::render_table(
            "forced errors",
            &["estimator", "estimate", "forced ratio err"],
            &self
                .rows
                .iter()
                .map(|(n, e, r)| {
                    vec![
                        n.to_string(),
                        format!("{:.1}%", e * 100.0),
                        format!("{r:.2}"),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out
    }
}

pub fn lower_bound(n: usize) -> LowerBoundResult {
    let pair = AdversarialPair::construct(n);
    let (px, py) = pair.decision_progress();
    // Run the full estimator suite on the X twin with stride 1 and read
    // each estimator's answer at the decision instant. By construction the
    // Y twin's trace prefix is identical, so the answers carry over.
    let plan = {
        let mut p = pair.plan(&pair.db_x);
        let stats = DbStats::build(&pair.db_x);
        qp_exec::estimate::annotate(&mut p, &stats);
        p
    };
    let stats = DbStats::build(&pair.db_x);
    let (_, trace) = run_with_progress(&plan, &pair.db_x, Some(&stats), standard_suite(), Some(1))
        .expect("twin query runs");
    let decision = pair.decision_curr();
    let snap = trace
        .snapshots()
        .iter()
        .rfind(|s| s.curr <= decision)
        .expect("decision snapshot exists")
        .clone();
    let rows = trace
        .names()
        .iter()
        .zip(&snap.estimates)
        .map(|(name, &est)| (*name, est, pair.forced_ratio_error(est)))
        .collect();
    LowerBoundResult {
        stats_identical: pair.stats_identical(100),
        progress_x: px,
        progress_y: py,
        best_achievable: pair.best_achievable_ratio(),
        rows,
    }
}

/// Theorem 3 validation: E\[progress − dne\] ≈ 0 under random orders, for
/// the synthetic skewed work distribution.
#[derive(Debug, Clone)]
pub struct Theorem3Result {
    /// `(checkpoint_fraction, expected_error)`.
    pub rows: Vec<(f64, f64)>,
}

impl Theorem3Result {
    pub fn render(&self) -> String {
        crate::render::render_table(
            "Theorem 3: E[err] of dne under random order",
            &["checkpoint", "E[progress - dne]"],
            &self
                .rows
                .iter()
                .map(|(k, e)| vec![format!("{:.0}%", k * 100.0), format!("{e:+.4}")])
                .collect::<Vec<_>>(),
        )
    }
}

pub fn theorem3(scale: &Scale) -> Theorem3Result {
    let s = super::figures::synthetic(scale, qp_datagen::RowOrder::AsGenerated);
    let work = s.work_vector();
    let n = work.len();
    let rows = [0.1, 0.25, 0.5, 0.75, 0.9]
        .iter()
        .map(|&f| {
            let k = ((n as f64 * f) as usize).max(1);
            (f, dne_expected_error(&work, k, 1500, scale.seed))
        })
        .collect();
    Theorem3Result { rows }
}

/// Theorem 4 validation: the fraction of random orders that are
/// 2-predictive, for several work distributions including the synthetic
/// zipfian one.
#[derive(Debug, Clone)]
pub struct Theorem4Result {
    /// `(distribution, fraction_2_predictive)`.
    pub rows: Vec<(String, f64)>,
}

impl Theorem4Result {
    pub fn render(&self) -> String {
        crate::render::render_table(
            "Theorem 4: fraction of orders that are 2-predictive (claim: >= 0.5)",
            &["distribution", "fraction"],
            &self
                .rows
                .iter()
                .map(|(d, f)| vec![d.clone(), format!("{f:.3}")])
                .collect::<Vec<_>>(),
        )
    }
}

pub fn theorem4(scale: &Scale) -> Theorem4Result {
    let s = super::figures::synthetic(scale, qp_datagen::RowOrder::AsGenerated);
    let zipf_work = s.work_vector();
    let single_heavy: Vec<u64> = {
        let mut v = vec![1u64; 999];
        v.push(100_000);
        v
    };
    let uniform: Vec<u64> = vec![5; 1000];
    let bimodal: Vec<u64> = (0..1000)
        .map(|i| if i % 2 == 0 { 1 } else { 100 })
        .collect();
    let rows = vec![
        ("zipf z=2 INL fan-out".to_string(), &zipf_work),
        ("single heavy tuple".to_string(), &single_heavy),
        ("uniform".to_string(), &uniform),
        ("bimodal 1/100".to_string(), &bimodal),
    ]
    .into_iter()
    .map(|(name, w)| (name, predictive_fraction(w, 2.0, 800, scale.seed)))
    .collect();
    Theorem4Result { rows }
}

/// Property 6 validation across the scan-based, limit-free TPC-H queries:
/// μ ≤ m + 1 and safe's max ratio error ≤ √(m+1).
#[derive(Debug, Clone)]
pub struct ScanBasedResult {
    /// `(query, mu, m_plus_1, safe_max_ratio, sqrt_m_plus_1)`.
    pub rows: Vec<(usize, f64, f64, f64, f64)>,
}

impl ScanBasedResult {
    pub fn render(&self) -> String {
        crate::render::render_table(
            "Property 6: scan-based guarantees (mu <= m+1, safe ratio <= sqrt(m+1))",
            &["query", "mu", "m+1", "safe max ratio", "sqrt(m+1)"],
            &self
                .rows
                .iter()
                .map(|(q, mu, m1, r, s)| {
                    vec![
                        q.to_string(),
                        format!("{mu:.3}"),
                        format!("{m1:.0}"),
                        format!("{r:.3}"),
                        format!("{s:.3}"),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Whether every row satisfies both Property 6 inequalities.
    pub fn all_hold(&self) -> bool {
        self.rows
            .iter()
            .all(|&(_, mu, m1, ratio, sqrt_m1)| mu <= m1 + 1e-9 && ratio <= sqrt_m1 + 1e-9)
    }
}

pub fn scan_based(scale: &Scale) -> ScanBasedResult {
    let t = scale.tpch();
    let stats = DbStats::build(&t.db);
    let mut rows = Vec::new();
    for (q, plan) in qp_workloads::tpch_queries(&t) {
        let has_limit = plan
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, qp_exec::PlanNode::Limit { .. }));
        if !plan.is_scan_based() || has_limit {
            continue;
        }
        let meta = PlanMeta::from_plan(&plan);
        let m = meta.internal_nodes as f64;
        let (out, trace) = traced_run(plan, &t.db, &stats, vec![Box::new(qp_progress::Safe)]);
        let mu = mu_from_counts(&meta, &out.node_counts);
        let safe_ratio = error_stats(&trace, "safe").expect("traced").max_ratio;
        rows.push((q, mu, m + 1.0, safe_ratio, (m + 1.0).sqrt()));
    }
    ScanBasedResult { rows }
}

/// Property 4 / Theorem 5 checked along every snapshot of the whole
/// workload suite: `prog ≤ pmax ≤ μ·prog`.
#[derive(Debug, Clone)]
pub struct InvariantResult {
    pub queries_checked: usize,
    pub snapshots_checked: usize,
    pub violations: Vec<String>,
}

impl InvariantResult {
    pub fn render(&self) -> String {
        let mut out = String::from("== Property 4 / Theorem 5 invariants ==\n");
        out.push_str(&format!(
            "{} snapshots across {} queries: {}\n",
            self.snapshots_checked,
            self.queries_checked,
            if self.violations.is_empty() {
                "all hold".to_string()
            } else {
                format!("{} violations", self.violations.len())
            }
        ));
        for v in &self.violations {
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

pub fn invariants(scale: &Scale) -> InvariantResult {
    let t = scale.tpch();
    let tpch_stats = DbStats::build(&t.db);
    let s = scale.sky();
    let sky_stats = DbStats::build(&s.db);

    let mut queries = 0usize;
    let mut snaps = 0usize;
    let mut violations = Vec::new();

    let mut check =
        |label: String, plan: qp_exec::Plan, db: &qp_storage::Database, stats: &DbStats| {
            let meta = PlanMeta::from_plan(&plan);
            let (out, trace) = traced_run(plan, db, stats, vec![Box::new(qp_progress::Pmax)]);
            let mu = mu_from_counts(&meta, &out.node_counts);
            queries += 1;
            for (prog, est) in trace.series("pmax").expect("traced") {
                snaps += 1;
                if est + 1e-9 < prog {
                    violations.push(format!(
                        "{label}: pmax {est:.4} < progress {prog:.4} (Property 4)"
                    ));
                }
                if mu.is_finite() && est > mu * prog + 1e-9 && prog > 0.0 {
                    violations.push(format!(
                        "{label}: pmax {est:.4} > mu*prog {:.4} (Theorem 5)",
                        mu * prog
                    ));
                }
            }
        };

    for (q, plan) in qp_workloads::tpch_queries(&t) {
        // Limit plans stop early: their a-priori leaf bounds exceed the
        // realized totals, so Theorem 5's μ-form doesn't apply verbatim
        // (the paper has no Limit operator). Property 4 still must hold;
        // the bounds tracker handles Limit via produced-only LBs.
        let has_limit = plan
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, qp_exec::PlanNode::Limit { .. }));
        if has_limit {
            continue;
        }
        check(format!("tpch-q{q}"), plan, &t.db, &tpch_stats);
    }
    for (q, plan) in qp_workloads::sky_queries(&s) {
        check(format!("sky-q{q}"), plan, &s.db, &sky_stats);
    }
    InvariantResult {
        queries_checked: queries,
        snapshots_checked: snaps,
        violations,
    }
}
