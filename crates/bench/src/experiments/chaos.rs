//! Chaos run: the TPC-H suite through the query service under
//! deterministic fault injection (`repro -- chaos --seed N`).
//!
//! Not a paper artifact — an operational one: the paper's Figure 1
//! scenario assumes the progress pipeline keeps answering while queries
//! misbehave. This experiment replays the whole workload under one fault
//! seed and reports, per query, how it died (or didn't) and whether every
//! invariant held: all sessions terminal, snapshots bounded and
//! NaN-free, worker pool alive afterwards. The same seed replays the
//! same faults, so a violation seen once is a violation forever.

use crate::render::render_table;
use crate::Scale;
use qp_exec::{FaultConfig, FaultPlan};
use qp_service::{QueryService, QueryState, ServiceConfig, SubmitOptions};
use qp_stats::DbStats;
use std::sync::Arc;
use std::time::Duration;

/// Outcome of one seeded chaos run.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    pub seed: u64,
    /// `(query, state, health, last-progress)` per session.
    pub rows: Vec<Vec<String>>,
    /// Snapshot polls that were checked against the envelope invariants.
    pub polls_checked: u64,
    /// Human-readable invariant violations; empty = run passed.
    pub violations: Vec<String>,
}

impl ChaosResult {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = render_table(
            &format!("chaos run, seed {}", self.seed),
            &["query", "state", "health", "progress"],
            &self.rows,
        );
        // The poll count itself is timing-dependent (how often the loop
        // got scheduled), so it stays out of the rendered output: repro
        // runs are byte-identical modulo the timing lines.
        out.push_str("every snapshot poll checked against LB<=UB, 0<=est<=1, no NaN\n");
        if self.passed() {
            out.push_str("PASS: all sessions terminal, all snapshots bounded, pool alive\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// Runs the TPC-H workload through a [`QueryService`] in chaos mode
/// (per-query fault plans derived from `seed`), checking every resilience
/// invariant and reporting rather than panicking.
pub fn chaos(scale: &Scale, seed: u64) -> ChaosResult {
    let db = Arc::new(scale.tpch().db);
    let stats = Arc::new(DbStats::build(&db));
    // A horizon short enough that every fault kind lands inside the
    // workload's getnext range at this scale.
    let fault_config = FaultConfig {
        horizon: 10_000,
        delay: Duration::from_millis(1),
        ..FaultConfig::default()
    };
    let service = QueryService::with_stats(
        Arc::clone(&db),
        Arc::clone(&stats),
        ServiceConfig {
            workers: 3,
            stride: Some(200),
            fault_seed: Some(seed),
            fault_config,
            ..ServiceConfig::default()
        },
    );

    // Injected panics are expected here; the workers catch them and the
    // message lands in the session's FAILED status, so the default hook's
    // backtrace on stderr is pure noise. Silence it for the run.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let queries: Vec<&'static str> = qp_workloads::sql_text::SQL_QUERIES
        .iter()
        .map(|&q| qp_workloads::sql_text::tpch_sql(q).expect("sql text"))
        .collect();
    let ids: Vec<_> = queries
        .iter()
        .map(|sql| service.submit(sql).expect("admitted"))
        .collect();

    let mut violations = Vec::new();
    let mut polls_checked = 0u64;
    loop {
        let mut all_terminal = true;
        for &id in &ids {
            let status = service.status(id).expect("known id");
            all_terminal &= status.state.is_terminal();
            if let Some(p) = status.progress {
                polls_checked += 1;
                if p.lb > p.ub || p.curr > p.ub {
                    violations.push(format!("{id}: inverted envelope {p:?}"));
                }
                if p.estimates
                    .iter()
                    .any(|e| !e.is_finite() || !(0.0..=1.0).contains(e))
                {
                    violations.push(format!("{id}: unbounded/NaN estimate {p:?}"));
                }
            }
        }
        if all_terminal {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let rows: Vec<Vec<String>> = ids
        .iter()
        .zip(&queries)
        .map(|(&id, sql)| {
            let status = service.status(id).expect("known id");
            if !status.state.is_terminal() {
                violations.push(format!("{id}: not terminal at end of run"));
            }
            let progress = match status.progress {
                Some(p) if p.ub != u64::MAX && p.ub > 0 => {
                    format!("{:.0}%", 100.0 * p.curr as f64 / p.ub as f64)
                }
                Some(p) => format!("curr={}", p.curr),
                None => "-".to_string(),
            };
            let what = status
                .error
                .map(|e| format!(" ({})", e.chars().take(40).collect::<String>()))
                .unwrap_or_default();
            vec![
                format!(
                    "{}{}",
                    sql.split_whitespace().take(4).collect::<Vec<_>>().join(" "),
                    what
                ),
                status.state.to_string(),
                status.health.to_string(),
                progress,
            ]
        })
        .collect();

    // The pool must serve a clean query after the chaos.
    let fresh = service.submit_with(
        "SELECT COUNT(*) AS n FROM nation",
        SubmitOptions {
            faults: Some(FaultPlan::none()),
            ..SubmitOptions::default()
        },
    );
    match fresh {
        Ok(id) => {
            if service.wait(id) != Some(QueryState::Finished) {
                violations.push("worker pool did not finish a clean post-chaos query".into());
            }
        }
        Err(e) => violations.push(format!("post-chaos submission rejected: {e}")),
    }
    service.shutdown();
    std::panic::set_hook(prev_hook);

    ChaosResult {
        seed,
        rows,
        polls_checked,
        violations,
    }
}
