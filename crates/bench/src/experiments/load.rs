//! Service load matrix (`repro -- load`): a deterministic multi-
//! connection load generator against the event-loop front end.
//!
//! The point of PR 10's reactor is that one box can hold thousands of
//! idle-ish monitoring sessions while a handful of queries run — the
//! progress protocol is only trustworthy *operationally* if `STATUS`
//! stays cheap under that fan-in. This experiment opens every
//! connection the server will take (full mode: 5 000 concurrent
//! sockets, small mode: a CI-sized slice), drives tens of thousands of
//! mixed `SUBMIT`/`STATUS`/`LIST`/`METRICS`/`AUDIT` requests from a
//! seeded schedule, and self-gates on:
//!
//! * **zero protocol errors** — every request gets a well-formed reply,
//!   no unsolicited lines, no server-side disconnects;
//! * **monotone session states** — no `STATUS` reply ever reports a
//!   state earlier in the lifecycle than a previous reply for the same
//!   query (Queued → Running → terminal);
//! * **bounded `STATUS` latency** — client-observed round-trip p99 and
//!   mean under load stay within an explicit budget, with the idle
//!   baseline recorded alongside so the overhead of live progress
//!   tracking is visible;
//! * **bounded queue latency** — the server's admission→worker
//!   histogram (PR 9) stays within budget.
//!
//! The generator reuses the server's own [`qp_service::reactor`]
//! machinery client-side: nonblocking sockets, the same peek-based
//! readiness sweep, and the same [`LineFramer`] — so one driver thread
//! multiplexes all connections without threads-per-connection on either
//! end. Results land in `BENCH_service.json` at the workspace root.
//!
//! [`LineFramer`]: qp_service::reactor::LineFramer

use crate::render::render_table;
use crate::Scale;
use qp_datagen::{TpchConfig, TpchDb};
use qp_obs::json::Obj;
use qp_obs::LatencyHistogram;
use qp_service::reactor::{self, Conn, Frame};
use qp_service::{
    ProgressServer, QueryService, QueryState, RetryPolicy, ServerConfig, ServiceClient,
    ServiceConfig, StatusLine,
};
use qp_stats::DbStats;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `STATUS`'s index in [`qp_service::VERBS`] (pinned by a test below),
/// used to read the server-side per-verb latency histogram.
const STATUS_VERB_INDEX: usize = 2;

/// Client-side line cap; must exceed the longest `STATUS`/metrics line.
const MAX_LINE: usize = 64 * 1024;

/// Sizes, mixes, and latency budgets for one load run.
#[derive(Debug, Clone, Copy)]
struct Params {
    mode: &'static str,
    /// Concurrent client connections held through the whole run.
    conns: usize,
    /// Baseline `STATUS` sweeps with nothing running.
    idle_rounds: usize,
    /// Mixed-verb sweeps with background queries executing.
    busy_rounds: usize,
    /// Long-running queries submitted for the busy phase.
    heavy: usize,
    /// Finished queries seeded up front as `STATUS` targets.
    pool: usize,
    /// Cap on `SUBMIT`s issued from load connections.
    max_submits: usize,
    /// Per-round reply deadline.
    round_timeout: Duration,
    /// Gate: client-observed `STATUS` p99 under load, in ms.
    status_p99_ms: f64,
    /// Gate: client-observed `STATUS` mean under load, in ms.
    status_mean_ms: f64,
    /// Gate: server admission→worker p99, in ms.
    queue_p99_ms: f64,
}

impl Params {
    fn new(small: bool) -> Params {
        if small {
            Params {
                mode: "small",
                conns: 256,
                idle_rounds: 2,
                busy_rounds: 4,
                heavy: 1,
                pool: 8,
                max_submits: 64,
                round_timeout: Duration::from_secs(30),
                status_p99_ms: 2_000.0,
                status_mean_ms: 250.0,
                queue_p99_ms: 2_000.0,
            }
        } else {
            Params {
                mode: "full",
                conns: 5_000,
                idle_rounds: 3,
                busy_rounds: 6,
                heavy: 2,
                pool: 16,
                max_submits: 256,
                round_timeout: Duration::from_secs(120),
                status_p99_ms: 10_000.0,
                status_mean_ms: 2_000.0,
                queue_p99_ms: 10_000.0,
            }
        }
    }
}

/// Outcome of one load run; `violations` empty = all gates held.
#[derive(Debug)]
pub struct LoadResult {
    pub mode: &'static str,
    /// Connections that completed `HELLO` and stayed up to the end.
    pub conns: usize,
    /// Requests that received a complete, well-formed reply.
    pub requests: u64,
    pub protocol_errors: u64,
    pub timeouts: u64,
    pub monotone_violations: u64,
    /// `(series, count, p50 ms, p95 ms, p99 ms, mean ms)` rows.
    pub rows: Vec<Vec<String>>,
    /// Shared-scan counters observed after the run:
    /// `(attaches, shared_attaches, rows_produced, rows_served)`.
    pub sharedscan: (u64, u64, u64, u64),
    pub violations: Vec<String>,
    /// Flat `(key, value)` summary fields mirrored into the JSON gate.
    summary: Vec<(&'static str, f64)>,
}

impl LoadResult {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = render_table(
            &format!(
                "load ({}): {} connections, {} completed requests",
                self.mode, self.conns, self.requests
            ),
            &["series", "count", "p50 ms", "p95 ms", "p99 ms", "mean ms"],
            &self.rows,
        );
        out.push_str(&format!(
            "errors: protocol={} timeouts={} monotone={}  shared-scan: attaches={} shared={} \
             rows_produced={} rows_served={}\n",
            self.protocol_errors,
            self.timeouts,
            self.monotone_violations,
            self.sharedscan.0,
            self.sharedscan.1,
            self.sharedscan.2,
            self.sharedscan.3,
        ));
        if self.passed() {
            out.push_str(&format!(
                "PASS: {} connections served with zero protocol errors and bounded latency\n",
                self.conns
            ));
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// Verbs the load connections issue (plus the ramp's `HELLO`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verb {
    Hello,
    Status,
    Submit,
    List,
    Metrics,
    Audit,
}

impl Verb {
    fn expects_block(self) -> bool {
        matches!(self, Verb::List | Verb::Metrics | Verb::Audit)
    }
}

/// Client-side latency series (index = `Pending::series`).
const SERIES: [&str; 7] = [
    "HELLO (ramp)",
    "STATUS (idle)",
    "STATUS (busy)",
    "SUBMIT",
    "LIST",
    "METRICS",
    "AUDIT",
];

/// One in-flight request on one connection.
#[derive(Debug)]
struct Pending {
    verb: Verb,
    series: usize,
    sent: Instant,
    /// Lines left in an `OK <n>` block reply; `None` = header not seen.
    block_left: Option<usize>,
}

/// One load connection: reactor conn + at most one outstanding request.
struct Client {
    conn: Conn,
    pending: Option<Pending>,
    dead: bool,
}

/// Mutable run state shared by the pump/drain helpers.
struct Run {
    hists: Vec<LatencyHistogram>,
    /// Highest lifecycle rank seen per query id token.
    states: HashMap<String, u8>,
    /// Query id tokens `STATUS` picks from (fixed after setup).
    status_pool: Vec<String>,
    requests: u64,
    protocol_errors: u64,
    timeouts: u64,
    monotone_violations: u64,
    violations: Vec<String>,
    submits_left: usize,
}

/// Queued → Running → terminal; `STATUS` replies must never rank lower
/// than an earlier reply for the same query.
fn rank(state: QueryState) -> u8 {
    match state {
        QueryState::Queued => 0,
        QueryState::Running => 1,
        _ => 2,
    }
}

/// splitmix64 — the schedule's only entropy source, so one seed
/// reproduces the whole verb mix.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Run {
    fn new() -> Run {
        Run {
            hists: (0..SERIES.len()).map(|_| LatencyHistogram::new()).collect(),
            states: HashMap::new(),
            status_pool: Vec::new(),
            requests: 0,
            protocol_errors: 0,
            timeouts: 0,
            monotone_violations: 0,
            violations: Vec::new(),
            submits_left: 0,
        }
    }

    /// Caps the violation list so an error storm renders as a few lines
    /// plus a count, not megabytes.
    fn note(&mut self, v: String) {
        if self.violations.len() < 16 {
            self.violations.push(v);
        }
    }

    fn queue(&mut self, c: &mut Client, verb: Verb, series: usize, line: &str) {
        debug_assert!(c.pending.is_none(), "one outstanding request per conn");
        c.conn.queue(line);
        c.pending = Some(Pending {
            verb,
            series,
            sent: Instant::now(),
            block_left: None,
        });
    }

    /// One readiness sweep over all live connections: read, frame,
    /// account replies, flush pending output.
    fn pump(&mut self, clients: &mut [Client]) {
        let mut events = Vec::new();
        reactor::poll(
            clients
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.dead)
                .map(|(i, c)| (i, c.conn.stream())),
            &mut events,
        );
        for ev in events {
            let c = &mut clients[ev.token];
            if c.dead {
                continue;
            }
            if ev.hup {
                c.dead = true;
                self.protocol_errors += 1;
                self.note(format!("conn {}: server hung up mid-session", ev.token));
                continue;
            }
            match c.conn.fill() {
                Ok(true) => {}
                Ok(false) | Err(_) => {
                    c.dead = true;
                    self.protocol_errors += 1;
                    self.note(format!("conn {}: connection dropped by server", ev.token));
                    continue;
                }
            }
            while let Some(frame) = c.conn.framer.pop() {
                self.on_frame(ev.token, c, frame);
            }
        }
        for (i, c) in clients.iter_mut().enumerate() {
            if !c.dead && c.conn.flush().is_err() {
                c.dead = true;
                self.protocol_errors += 1;
                self.note(format!("conn {i}: write failed"));
            }
        }
    }

    fn on_frame(&mut self, token: usize, c: &mut Client, frame: Frame) {
        let line = match frame {
            Frame::Line(l) => l,
            Frame::TooLong | Frame::Nul => {
                self.protocol_errors += 1;
                self.note(format!("conn {token}: unframeable reply from server"));
                return;
            }
        };
        let Some(p) = c.pending.as_mut() else {
            self.protocol_errors += 1;
            self.note(format!("conn {token}: unsolicited reply: {line}"));
            return;
        };
        let mut complete = false;
        let mut failed: Option<String> = None;
        if p.verb.expects_block() {
            match p.block_left {
                None => match line
                    .strip_prefix("OK ")
                    .and_then(|n| n.parse::<usize>().ok())
                {
                    Some(0) => complete = true,
                    Some(n) => p.block_left = Some(n),
                    None => {
                        complete = true;
                        failed = Some(format!("conn {token}: block header was: {line}"));
                    }
                },
                Some(1) => complete = true,
                Some(k) => p.block_left = Some(k - 1),
            }
        } else {
            complete = true;
            if line.starts_with("ERR") {
                failed = Some(format!("conn {token}: {:?} refused: {line}", p.verb));
            } else {
                match p.verb {
                    Verb::Hello if !line.contains("protocol=3") => {
                        failed = Some(format!("conn {token}: hello not v3: {line}"));
                    }
                    Verb::Status => match StatusLine::parse(&line) {
                        Ok(s) => {
                            let r = rank(s.state);
                            let seen = self.states.entry(s.id.to_string()).or_insert(r);
                            if r < *seen {
                                self.monotone_violations += 1;
                                if self.monotone_violations == 1 {
                                    self.violations.push(format!(
                                        "conn {token}: {} went backwards to {:?}",
                                        s.id, s.state
                                    ));
                                }
                            } else {
                                *seen = r;
                            }
                        }
                        Err(e) => failed = Some(format!("conn {token}: bad STATUS reply: {e}")),
                    },
                    Verb::Submit if !line.starts_with("OK q") => {
                        failed = Some(format!("conn {token}: bad SUBMIT reply: {line}"));
                    }
                    _ => {}
                }
            }
        }
        if complete {
            let p = c.pending.take().expect("pending present");
            if let Some(why) = failed {
                self.protocol_errors += 1;
                self.note(why);
            } else {
                self.hists[p.series]
                    .record(p.sent.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                self.requests += 1;
            }
        }
    }

    /// Pumps until every connection is reply-free or `deadline` passes;
    /// stragglers count as timeouts and their connections are retired.
    fn drain(&mut self, clients: &mut [Client], deadline: Instant) {
        loop {
            self.pump(clients);
            if clients.iter().all(|c| c.dead || c.pending.is_none()) {
                return;
            }
            if Instant::now() >= deadline {
                let mut missing = 0u64;
                for c in clients.iter_mut() {
                    if !c.dead && c.pending.is_some() {
                        missing += 1;
                        c.dead = true;
                        c.pending = None;
                    }
                }
                self.timeouts += missing;
                self.note(format!("{missing} replies missing at round deadline"));
                return;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// One seeded mixed-verb sweep: every live connection issues one
    /// request, then the round drains fully.
    fn busy_round(&mut self, clients: &mut [Client], seed: u64, round: u64, timeout: Duration) {
        for i in 0..clients.len() {
            if clients[i].dead {
                continue;
            }
            let h = mix(seed ^ (round << 32) ^ i as u64);
            let pick = (mix(h) % self.status_pool.len().max(1) as u64) as usize;
            let (verb, series, line) = match h % 100 {
                0..=89 => {
                    let id = &self.status_pool[pick];
                    (Verb::Status, 2, format!("STATUS {id}"))
                }
                90..=92 if self.submits_left > 0 => {
                    self.submits_left -= 1;
                    (
                        Verb::Submit,
                        3,
                        "SUBMIT SELECT COUNT(*) AS n FROM region".to_string(),
                    )
                }
                93..=94 => (Verb::List, 4, "LIST".to_string()),
                95..=96 => (Verb::Metrics, 5, "METRICS".to_string()),
                97..=98 => (Verb::Audit, 6, "AUDIT".to_string()),
                _ => {
                    let id = &self.status_pool[pick];
                    (Verb::Status, 2, format!("STATUS {id}"))
                }
            };
            let c = &mut clients[i];
            self.queue(c, verb, series, &line);
            if i % 64 == 63 {
                // Interleave sends with reply service so neither side's
                // buffers balloon at high connection counts.
                self.pump(clients);
            }
        }
        self.drain(clients, Instant::now() + timeout);
    }
}

/// An address that refuses connections: bind an ephemeral port, then
/// free it. Exercises the client's deterministic address rotation.
fn dead_addr() -> SocketAddr {
    let l = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = l.local_addr().expect("bound addr");
    drop(l);
    addr
}

/// Runs the load matrix. `small` shrinks connection counts and rounds
/// for CI; the gates stay on in both modes.
pub fn load(scale: &Scale, small: bool, seed: u64) -> LoadResult {
    let p = Params::new(small);
    let t = TpchDb::generate(TpchConfig {
        scale: scale.tpch_scale,
        z: scale.tpch_z,
        seed,
    });
    let db = Arc::new(t.db);
    let stats = Arc::new(DbStats::build(&db));
    let service = Arc::new(QueryService::with_stats(
        Arc::clone(&db),
        Arc::clone(&stats),
        ServiceConfig {
            workers: 4,
            queue_depth: 1024,
            stride: Some(500),
            ..ServiceConfig::default()
        },
    ));
    let mut server = ProgressServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            max_connections: p.conns + 32,
            idle_timeout: Duration::from_secs(300),
            event_loops: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr();

    let mut run = Run::new();
    run.submits_left = p.max_submits;

    // Address rotation: first address refuses, the client must rotate
    // to the live one and come up speaking v3 with both capabilities.
    match ServiceClient::connect_with_retry_to(&[dead_addr(), addr], &RetryPolicy::default()) {
        Ok(mut probe) => match probe.hello_info() {
            Ok(Ok(info)) => {
                if info.protocol != 3 {
                    run.note(format!("rotation probe spoke protocol {}", info.protocol));
                }
                for cap in ["ASYNC", "SHARED_SCAN"] {
                    if !info.has_cap(cap) {
                        run.note(format!("server did not advertise {cap}"));
                    }
                }
            }
            Ok(Err(e)) => run.note(format!("rotation probe HELLO refused: {e}")),
            Err(e) => run.note(format!("rotation probe HELLO failed: {e}")),
        },
        Err(e) => run.note(format!("address rotation failed to reach live server: {e}")),
    }

    // Seed the STATUS pool with finished queries so idle-phase STATUS
    // has real sessions to interrogate.
    let mut control = ServiceClient::connect(addr).expect("control client connects");
    for _ in 0..p.pool {
        let id = control
            .submit("SELECT COUNT(*) AS n FROM nation")
            .expect("io")
            .expect("pool query admitted");
        service.wait(id);
        run.status_pool.push(id.to_string());
    }

    // Ramp: open every connection; HELLO doubles as the readiness
    // barrier and the per-connection handshake latency sample.
    let mut clients: Vec<Client> = Vec::with_capacity(p.conns);
    'ramp: for i in 0..p.conns {
        let mut stream = None;
        for attempt in 0..500 {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => {
                    if attempt == 499 {
                        run.note(format!("conn {i}: connect failed: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        let Some(stream) = stream else { break 'ramp };
        let conn = Conn::new(stream, MAX_LINE).expect("nonblocking conn");
        let mut c = Client {
            conn,
            pending: None,
            dead: false,
        };
        run.queue(&mut c, Verb::Hello, 0, "HELLO");
        clients.push(c);
        if i % 64 == 63 {
            run.pump(&mut clients);
        }
    }
    run.drain(&mut clients, Instant::now() + p.round_timeout);
    let up = clients.iter().filter(|c| !c.dead).count();

    // Idle baseline: STATUS sweeps with no query running.
    for r in 0..p.idle_rounds {
        for i in 0..clients.len() {
            if clients[i].dead {
                continue;
            }
            let pick = (mix(seed ^ 0xD1E ^ (r as u64) << 32 ^ i as u64)
                % run.status_pool.len() as u64) as usize;
            let line = format!("STATUS {}", run.status_pool[pick]);
            let c = &mut clients[i];
            run.queue(c, Verb::Status, 1, &line);
            if i % 64 == 63 {
                run.pump(&mut clients);
            }
        }
        run.drain(&mut clients, Instant::now() + p.round_timeout);
    }

    // Busy phase: long cross-products occupy workers (identical SQL, so
    // their lineitem passes share one scan epoch), then mixed sweeps.
    let heavy_sql =
        "SELECT COUNT(*) AS n FROM supplier, nation, lineitem WHERE s_acctbal > l_extendedprice";
    let mut heavies = Vec::new();
    for _ in 0..p.heavy {
        let id = control
            .submit(heavy_sql)
            .expect("io")
            .expect("heavy query admitted");
        run.status_pool.push(id.to_string());
        heavies.push(id);
    }
    for r in 0..p.busy_rounds {
        run.busy_round(&mut clients, seed, r as u64, p.round_timeout);
    }
    for id in heavies {
        let terminal = service
            .status(id)
            .map(|s| rank(s.state) == 2)
            .unwrap_or(true);
        if !terminal {
            control.cancel(id).expect("io").ok();
            service.wait(id);
        }
    }
    // One last sweep so every tracked query is observed terminal.
    let final_round = p.busy_rounds as u64;
    run.busy_round(&mut clients, seed, final_round, p.round_timeout);

    let survivors = clients.iter().filter(|c| !c.dead).count();
    drop(clients);

    // Server-side histograms (PR 9): admission→worker, run time, and
    // the event loops' own STATUS service time.
    let queue = service.queue_hist().snapshot();
    let runh = service.run_hist().snapshot();
    let srv_status = service.verb_hists()[STATUS_VERB_INDEX].snapshot();
    let sharedscan = service
        .scan_share()
        .map(|s| {
            use std::sync::atomic::Ordering::Relaxed;
            let st = s.stats();
            (
                st.attaches.load(Relaxed),
                st.shared_attaches.load(Relaxed),
                st.rows_produced.load(Relaxed),
                st.rows_served.load(Relaxed),
            )
        })
        .unwrap_or((0, 0, 0, 0));
    server.shutdown();

    let ms = |ns: u64| ns as f64 / 1e6;
    let mut rows = Vec::new();
    let mut summary: Vec<(&'static str, f64)> = Vec::new();
    let push_row = |rows: &mut Vec<Vec<String>>, name: &str, s: &qp_obs::HistogramSnapshot| {
        rows.push(vec![
            name.to_string(),
            s.count.to_string(),
            format!("{:.3}", ms(s.quantile(0.50))),
            format!("{:.3}", ms(s.quantile(0.95))),
            format!("{:.3}", ms(s.quantile(0.99))),
            format!("{:.3}", ms(s.mean() as u64)),
        ]);
    };
    for (name, h) in SERIES.iter().zip(&run.hists) {
        push_row(&mut rows, name, &h.snapshot());
    }
    push_row(&mut rows, "server queue", &queue);
    push_row(&mut rows, "server run", &runh);
    push_row(&mut rows, "server STATUS", &srv_status);

    let idle = run.hists[1].snapshot();
    let busy = run.hists[2].snapshot();
    let busy_p99_ms = ms(busy.quantile(0.99));
    let busy_mean_ms = busy.mean() / 1e6;
    let idle_mean_ms = idle.mean() / 1e6;
    let queue_p99_ms = ms(queue.quantile(0.99));
    summary.push(("status_idle_p99_ms", ms(idle.quantile(0.99))));
    summary.push(("status_idle_mean_ms", idle_mean_ms));
    summary.push(("status_busy_p99_ms", busy_p99_ms));
    summary.push(("status_busy_mean_ms", busy_mean_ms));
    summary.push(("status_budget_p99_ms", p.status_p99_ms));
    summary.push(("status_budget_mean_ms", p.status_mean_ms));
    summary.push(("queue_p99_ms", queue_p99_ms));
    summary.push(("queue_budget_p99_ms", p.queue_p99_ms));
    summary.push((
        "status_overhead_ratio",
        if idle_mean_ms > 0.0 {
            busy_mean_ms / idle_mean_ms
        } else {
            0.0
        },
    ));

    // Gates.
    if up < p.conns {
        run.violations
            .push(format!("only {up}/{} connections completed HELLO", p.conns));
    }
    if survivors < up {
        run.violations.push(format!(
            "{} connections lost before drain (started with {up})",
            up - survivors
        ));
    }
    if run.protocol_errors > 0 {
        run.violations.push(format!(
            "{} protocol errors (budget: 0)",
            run.protocol_errors
        ));
    }
    if run.timeouts > 0 {
        run.violations
            .push(format!("{} reply timeouts (budget: 0)", run.timeouts));
    }
    if run.monotone_violations > 0 {
        run.violations.push(format!(
            "{} non-monotone STATUS state transitions",
            run.monotone_violations
        ));
    }
    if busy.count == 0 || busy_p99_ms > p.status_p99_ms {
        run.violations.push(format!(
            "STATUS p99 under load {busy_p99_ms:.1} ms exceeds budget {:.0} ms",
            p.status_p99_ms
        ));
    }
    if busy.count == 0 || busy_mean_ms > p.status_mean_ms {
        run.violations.push(format!(
            "STATUS mean under load {busy_mean_ms:.2} ms exceeds budget {:.0} ms",
            p.status_mean_ms
        ));
    }
    if queue_p99_ms > p.queue_p99_ms {
        run.violations.push(format!(
            "queue latency p99 {queue_p99_ms:.1} ms exceeds budget {:.0} ms",
            p.queue_p99_ms
        ));
    }

    let result = LoadResult {
        mode: p.mode,
        conns: up,
        requests: run.requests,
        protocol_errors: run.protocol_errors,
        timeouts: run.timeouts,
        monotone_violations: run.monotone_violations,
        rows,
        sharedscan,
        violations: run.violations,
        summary,
    };
    write_json(&result, seed);
    result
}

/// Writes `BENCH_service.json` at the workspace root: per-series
/// percentiles plus the gate verdict, machine-readable for CI.
fn write_json(result: &LoadResult, seed: u64) {
    let series: Vec<String> = result
        .rows
        .iter()
        .map(|r| {
            Obj::new()
                .str("series", &r[0])
                .u64("count", r[1].parse().unwrap_or(0))
                .f64("p50_ms", r[2].parse().unwrap_or(f64::NAN))
                .f64("p95_ms", r[3].parse().unwrap_or(f64::NAN))
                .f64("p99_ms", r[4].parse().unwrap_or(f64::NAN))
                .f64("mean_ms", r[5].parse().unwrap_or(f64::NAN))
                .finish()
        })
        .collect();
    let mut summary = Obj::new()
        .str("bench", "service_load")
        .str("mode", result.mode)
        .u64("seed", seed)
        .u64("conns", result.conns as u64)
        .u64("requests", result.requests)
        .u64("protocol_errors", result.protocol_errors)
        .u64("timeouts", result.timeouts)
        .u64("monotone_violations", result.monotone_violations)
        .u64("sharedscan_attaches", result.sharedscan.0)
        .u64("sharedscan_shared_attaches", result.sharedscan.1)
        .u64("sharedscan_rows_produced", result.sharedscan.2)
        .u64("sharedscan_rows_served", result.sharedscan.3);
    for (k, v) in &result.summary {
        summary = summary.f64(k, *v);
    }
    let summary = summary
        .str("gate", if result.passed() { "pass" } else { "fail" })
        .finish();
    // Splice the series array into the flat summary object by hand —
    // the JSONL writer is deliberately flat.
    let open = summary.strip_suffix('}').expect("summary is an object");
    let json = format!("{open},\"series\":[{}]}}\n", series.join(","));
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[could not write {}: {e}]", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `STATUS_VERB_INDEX` must track the wire verb table.
    #[test]
    fn status_verb_index_matches_the_protocol_table() {
        assert_eq!(qp_service::VERBS[STATUS_VERB_INDEX], "STATUS");
    }

    /// The verb mix is a pure function of (seed, round, conn).
    #[test]
    fn schedule_is_deterministic() {
        let a: Vec<u64> = (0..64).map(|i| mix(7 ^ (3 << 32) ^ i)).collect();
        let b: Vec<u64> = (0..64).map(|i| mix(7 ^ (3 << 32) ^ i)).collect();
        assert_eq!(a, b);
    }

    /// Lifecycle ranks are monotone along the real state machine.
    #[test]
    fn ranks_follow_the_session_lifecycle() {
        assert!(rank(QueryState::Queued) < rank(QueryState::Running));
        assert!(rank(QueryState::Running) < rank(QueryState::Finished));
        assert_eq!(rank(QueryState::Cancelled), rank(QueryState::TimedOut));
    }
}
