//! Ablations of the design choices called out in DESIGN.md §6:
//! snapshot stride, safe's geometric vs arithmetic mean, and the hybrid
//! switching threshold.

use super::figures::{synthetic, synthetic_inl_plan};
use super::traced_run;
use crate::Scale;
use qp_datagen::RowOrder;
use qp_exec::estimate::annotate;
use qp_progress::estimators::{Hybrid, Safe, SafeArithmetic};
use qp_progress::metrics::error_stats;
use qp_progress::monitor::run_with_progress;
use qp_stats::DbStats;

/// Snapshot-stride ablation: how does the granularity at which the
/// monitor refreshes bounds and estimates affect accuracy and cost?
#[derive(Debug, Clone)]
pub struct StrideAblation {
    /// `(stride, snapshots, safe_avg_abs_err, wall_seconds)`.
    pub rows: Vec<(u64, usize, f64, f64)>,
}

impl StrideAblation {
    pub fn render(&self) -> String {
        crate::render::render_table(
            "Ablation: snapshot stride (worst-case INL join, safe estimator)",
            &["stride", "snapshots", "avg abs err", "wall (s)"],
            &self
                .rows
                .iter()
                .map(|(s, n, e, w)| {
                    vec![
                        s.to_string(),
                        n.to_string(),
                        format!("{:.2}%", e * 100.0),
                        format!("{w:.3}"),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }
}

pub fn stride(scale: &Scale) -> StrideAblation {
    let s = synthetic(scale, RowOrder::SkewLast);
    let stats = DbStats::build(&s.db);
    let mut plan = synthetic_inl_plan(&s);
    annotate(&mut plan, &stats);
    let mut rows = Vec::new();
    for stride in [1u64, 16, 256, 4096] {
        let t0 = std::time::Instant::now();
        let (_, trace) = run_with_progress(
            &plan,
            &s.db,
            Some(&stats),
            vec![Box::new(Safe)],
            Some(stride),
        )
        .expect("runs");
        let wall = t0.elapsed().as_secs_f64();
        let e = error_stats(&trace, "safe").expect("traced");
        rows.push((stride, trace.snapshots().len(), e.avg_abs, wall));
    }
    StrideAblation { rows }
}

/// Geometric vs arithmetic mean in the `safe` denominator, on the worst
/// case (Figure 5 setup) and the benign case (a plain TPC-H query).
#[derive(Debug, Clone)]
pub struct SafeMeanAblation {
    /// `(scenario, estimator, max_ratio, avg_abs)`.
    pub rows: Vec<(String, &'static str, f64, f64)>,
}

impl SafeMeanAblation {
    pub fn render(&self) -> String {
        crate::render::render_table(
            "Ablation: safe denominator — geometric vs arithmetic mean",
            &["scenario", "estimator", "max ratio", "avg abs err"],
            &self
                .rows
                .iter()
                .map(|(s, n, r, a)| {
                    vec![
                        s.clone(),
                        n.to_string(),
                        format!("{r:.2}"),
                        format!("{:.2}%", a * 100.0),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Worst-case max ratio of the geometric variant, for assertions.
    pub fn worst_ratio(&self, estimator: &str) -> f64 {
        self.rows
            .iter()
            .filter(|(_, n, ..)| *n == estimator)
            .map(|&(_, _, r, _)| r)
            .fold(1.0, f64::max)
    }
}

pub fn safe_mean(scale: &Scale) -> SafeMeanAblation {
    let mut rows = Vec::new();
    // Worst case: skew-last INL join.
    let s = synthetic(scale, RowOrder::SkewLast);
    let stats = DbStats::build(&s.db);
    let (_, trace) = traced_run(
        synthetic_inl_plan(&s),
        &s.db,
        &stats,
        vec![Box::new(Safe), Box::new(SafeArithmetic)],
    );
    for name in ["safe", "safe-arith"] {
        let e = error_stats(&trace, name).expect("traced");
        rows.push(("worst-case INL".to_string(), name, e.max_ratio, e.avg_abs));
    }
    // Benign case: TPC-H Q6.
    let t = scale.tpch();
    let tstats = DbStats::build(&t.db);
    let (_, trace) = traced_run(
        qp_workloads::tpch_query(6, &t),
        &t.db,
        &tstats,
        vec![Box::new(Safe), Box::new(SafeArithmetic)],
    );
    for name in ["safe", "safe-arith"] {
        let e = error_stats(&trace, name).expect("traced");
        rows.push(("TPC-H Q6".to_string(), name, e.max_ratio, e.avg_abs));
    }
    SafeMeanAblation { rows }
}

/// The hybrid's μ̂ switching threshold, swept over the worst case and the
/// TPC-H suite.
#[derive(Debug, Clone)]
pub struct HybridAblation {
    /// `(threshold, avg_abs_worst_case, avg_abs_tpch_mean)`.
    pub rows: Vec<(f64, f64, f64)>,
}

impl HybridAblation {
    pub fn render(&self) -> String {
        crate::render::render_table(
            "Ablation: hybrid switching threshold (observed mu-hat)",
            &["threshold", "avg err (worst case)", "avg err (TPC-H mean)"],
            &self
                .rows
                .iter()
                .map(|(t, w, m)| {
                    vec![
                        format!("{t:.1}"),
                        format!("{:.2}%", w * 100.0),
                        format!("{:.2}%", m * 100.0),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }
}

pub fn hybrid_threshold(scale: &Scale) -> HybridAblation {
    let s = synthetic(scale, RowOrder::SkewLast);
    let sstats = DbStats::build(&s.db);
    let t = scale.tpch();
    let tstats = DbStats::build(&t.db);
    // A representative slice of the suite keeps the sweep fast.
    let tpch_qs = [1usize, 4, 6, 10, 13, 21];
    let mut rows = Vec::new();
    for threshold in [1.2f64, 2.0, 4.0, 16.0] {
        let mk = || -> Vec<Box<dyn qp_progress::ProgressEstimator>> {
            vec![Box::new(Hybrid::with_threshold(threshold))]
        };
        let (_, trace) = traced_run(synthetic_inl_plan(&s), &s.db, &sstats, mk());
        let worst = error_stats(&trace, "hybrid").expect("traced").avg_abs;
        let mut acc = 0.0;
        for &q in &tpch_qs {
            let (_, trace) = traced_run(qp_workloads::tpch_query(q, &t), &t.db, &tstats, mk());
            acc += error_stats(&trace, "hybrid").expect("traced").avg_abs;
        }
        rows.push((threshold, worst, acc / tpch_qs.len() as f64));
    }
    HybridAblation { rows }
}
