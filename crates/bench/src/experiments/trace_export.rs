//! Timeline export: per-query estimator trajectories as JSONL
//! (`repro -- trace`).
//!
//! Runs the TPC-H workload through a [`QueryService`] with the full
//! observability stack attached and dumps each session's trajectory —
//! exactly what the `TRACE <id>` wire verb serves — to one JSONL file
//! per query: a `meta` header, per-operator getnext counters, the
//! checkpoint tail (`curr`/`lb`/`ub` plus `dne`/`pmax`/`safe` at every
//! stride), and the session's flight-recorder events. The files are the
//! plottable raw material behind the paper's figures, produced by the
//! *service* path rather than the in-process harness.
//!
//! While exporting, every line is re-parsed with `qp-obs`'s JSON reader
//! and checked against the invariants a consumer would rely on:
//! `curr` non-decreasing, `lb ≤ curr's envelope`, and Proposition 4 —
//! `pmax` never underestimates true progress `curr / total(Q)` at any
//! checkpoint of a finished query.

use crate::render::render_table;
use crate::Scale;
use qp_obs::json::{parse, Value};
use qp_service::{telemetry, QueryService, ServiceConfig, SubmitOptions, ESTIMATORS};
use qp_stats::DbStats;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Outcome of one export run.
#[derive(Debug, Clone)]
pub struct TraceResult {
    pub out_dir: PathBuf,
    /// `(query, state, checkpoints, events)` per session.
    pub rows: Vec<Vec<String>>,
    /// Invariant violations; empty = run passed.
    pub violations: Vec<String>,
}

impl TraceResult {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = render_table(
            "trace export: per-query estimator trajectories (JSONL)",
            &["query", "state", "checkpoints", "events"],
            &self.rows,
        );
        out.push_str(&format!(
            "wrote one q<N>.jsonl per query under {}\n",
            self.out_dir.display()
        ));
        out.push_str("every line re-parsed; pmax >= curr/total at every checkpoint (Prop 4)\n");
        if self.passed() {
            out.push_str("PASS: all trajectories exported and validated\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
        }
        out
    }
}

fn field(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

/// Exports the TPC-H workload's trajectories to `out_dir` (default
/// `target/traces`), validating every emitted line. `estimators` is a
/// registry CSV (`repro --estimators dne,pmax`) overriding the default
/// per-session suite; `None` keeps the service default.
pub fn trace(scale: &Scale, out_dir: Option<&Path>, estimators: Option<&str>) -> TraceResult {
    let out_dir = out_dir
        .map(Path::to_path_buf)
        .unwrap_or_else(|| Path::new("target").join("traces"));
    std::fs::create_dir_all(&out_dir).expect("trace dir is creatable");

    let db = Arc::new(scale.tpch().db);
    let stats = Arc::new(DbStats::build(&db));
    let service = QueryService::with_stats(
        Arc::clone(&db),
        Arc::clone(&stats),
        ServiceConfig {
            workers: 2,
            // A fixed stride keeps checkpoint counts deterministic across
            // runs (they depend only on each query's serial getnext
            // sequence, not on scheduling).
            stride: Some(100),
            ..ServiceConfig::default()
        },
    );

    let queries: Vec<&'static str> = qp_workloads::sql_text::SQL_QUERIES
        .iter()
        .map(|&q| qp_workloads::sql_text::tpch_sql(q).expect("sql text"))
        .collect();
    let ids: Vec<_> = queries
        .iter()
        .map(|sql| {
            let opts = SubmitOptions {
                estimators: estimators.map(String::from),
                ..SubmitOptions::default()
            };
            service.submit_with(sql, opts).expect("admitted")
        })
        .collect();
    for &id in &ids {
        service.wait(id);
    }

    // Prop 4 is checkable only when the session suite carries pmax; with
    // a custom `--estimators` suite that drops it, the structural checks
    // (parse, curr monotone) still run on every line.
    let has_pmax = match estimators {
        None => ESTIMATORS.contains(&"pmax"),
        Some(csv) => csv.split(',').any(|n| n.trim() == "pmax"),
    };
    let mut violations = Vec::new();
    let mut rows = Vec::new();
    for (&id, sql) in ids.iter().zip(&queries) {
        let lines = telemetry::trace_jsonl(&service, id).expect("known session");
        let total = service.result(id).map(|r| r.total_getnext);
        let mut checkpoints = 0u64;
        let mut events = 0u64;
        let mut prev_curr = 0u64;
        for line in &lines {
            let v = match parse(line) {
                Ok(v) => v,
                Err(e) => {
                    violations.push(format!("{id}: unparsable line {line:?}: {e}"));
                    continue;
                }
            };
            match v.get("type").and_then(Value::as_str) {
                Some("checkpoint") => {
                    checkpoints += 1;
                    let curr = v.get("curr").and_then(Value::as_u64).unwrap_or(0);
                    if curr < prev_curr {
                        violations.push(format!("{id}: curr regressed {prev_curr} -> {curr}"));
                    }
                    prev_curr = curr;
                    // Proposition 4: pmax never underestimates true
                    // progress (checkable post-hoc, once total(Q) is
                    // known).
                    if !has_pmax {
                        continue;
                    }
                    if let (Some(total), Some(pmax)) = (total, field(&v, "pmax")) {
                        let true_progress = curr as f64 / total as f64;
                        if pmax < true_progress - 1e-9 {
                            violations.push(format!(
                                "{id}: pmax {pmax} underestimates {true_progress} at curr {curr}"
                            ));
                        }
                    }
                }
                Some("event") => events += 1,
                _ => {}
            }
        }
        let path = out_dir.join(format!("{id}.jsonl"));
        let mut body = lines.join("\n");
        body.push('\n');
        std::fs::write(&path, body).expect("trace file is writable");

        let state = service
            .status(id)
            .map(|s| s.state.to_string())
            .unwrap_or_else(|| "?".into());
        rows.push(vec![
            sql.split_whitespace().take(4).collect::<Vec<_>>().join(" "),
            state,
            checkpoints.to_string(),
            events.to_string(),
        ]);
    }

    TraceResult {
        out_dir,
        rows,
        violations,
    }
}
