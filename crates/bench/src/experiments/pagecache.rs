//! Page-cache sweep: the first **honest disk-bound regime** for the
//! estimators (`repro -- pagecache`).
//!
//! The paper's Section 7 lists "uniformity of work per GetNext" among
//! the model's load-bearing assumptions. Every experiment so far kept
//! that assumption true by construction (all tables in memory, every
//! GetNext ≈ the same nanoseconds), so the estimators' GetNext-fraction
//! answer and the user's actual question — *what fraction of the
//! wall-clock time is behind me?* — coincided. A buffer pool is the
//! canonical way real systems break the assumption: a GetNext whose page
//! is resident costs nanoseconds, one that misses pays a page read plus
//! a (here configurable, deterministic) rotating-disk penalty.
//!
//! This experiment bulk-loads the skewed TPC-H database into page files,
//! reopens it at a swept list of buffer-pool frame counts — from
//! everything-resident down to thrashing — and runs the same
//! nested-iteration query at each point: a sequential `orders` scan
//! probing `customer` through its primary-key index. The probe keys are
//! Zipf-random, so the inner accesses are *random* page reads whose
//! working set is the whole customer table — exactly the access pattern
//! where pool capacity (not just compulsory first-touch misses) decides
//! the hit rate. Each point scores `dne`/`pmax`/`safe` **against the
//! wall-clock time fraction** (from the snapshot timestamps) instead of
//! the GetNext fraction. Rows, counters, and `total(Q)` are identical at
//! every frame count (the equivalence suite pins that); only the
//! *meaning of a GetNext in seconds* shifts, which is exactly the
//! failure mode the table exposes: ratio error vs time grows as the hit
//! rate falls.

use crate::render::render_table;
use crate::Scale;
use qp_datagen::TpchDb;
use qp_exec::expr::{AggExpr, Expr};
use qp_exec::plan::{JoinType, Plan, PlanBuilder};
use qp_progress::estimators::{Dne, Pmax, Safe};
use qp_progress::metrics::ratio_error;
use qp_progress::monitor::run_with_progress;
use qp_stats::DbStats;
use qp_storage::Database;
use std::time::Duration;

/// Frame counts swept, largest (fully cached at small scales) first.
const FRAME_SWEEP: [usize; 4] = [4096, 128, 24, 6];

/// Deterministic stand-in for rotating-disk latency, paid per pool miss
/// (outside the pool lock, so concurrent misses overlap like real I/O).
const MISS_PENALTY: Duration = Duration::from_micros(120);

/// The probe query: `orders ⋈INL customer_pk`, revenue by nation. The
/// outer scan is sequential (compulsory misses only) but every probe is
/// a Zipf-random page read into `customer` — resident at large frame
/// counts, a fault per probe once the pool is smaller than the customer
/// table. The trailing aggregate + sort run on pool-free in-memory
/// state, so the expensive GetNexts cluster in the probe phase.
pub fn probe_plan(db: &Database) -> Plan {
    let ord = PlanBuilder::scan(db, "orders").expect("orders");
    let ck = ord.col("o_custkey").expect("o_custkey");
    let j = ord
        .inl_join(
            db,
            "customer",
            "customer_pk",
            vec![ck],
            JoinType::Inner,
            true,
            None,
        )
        .expect("customer_pk");
    let (nk, price) = (
        j.col("c_nationkey").expect("c_nationkey"),
        j.col("o_totalprice").expect("o_totalprice"),
    );
    j.hash_aggregate(vec![nk], vec![(AggExpr::sum(Expr::Col(price)), "revenue")])
        .sort(vec![(1, false)])
        .build()
}

/// One frame-count point of the sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub frames: usize,
    pub hit_rate: f64,
    pub misses: u64,
    /// Max ratio error vs the wall-clock time fraction, per estimator.
    pub time_ratio_err: [f64; 3],
}

/// The sweep result: one row per frame count plus invariant violations.
#[derive(Debug, Clone)]
pub struct PagecacheResult {
    pub points: Vec<SweepPoint>,
    pub violations: Vec<String>,
}

impl PagecacheResult {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                let mut row = vec![
                    p.frames.to_string(),
                    format!("{:.3}", p.hit_rate),
                    p.misses.to_string(),
                ];
                row.extend(p.time_ratio_err.iter().map(|e| format!("{e:.2}")));
                row
            })
            .collect();
        let mut out = render_table(
            "page-cache sweep: ratio error vs time fraction, orders INL-probing customer",
            &["frames", "hit_rate", "misses", "dne", "pmax", "safe"],
            &rows,
        );
        out.push_str(
            "estimators answer in GetNext fraction; the columns score them against the\n\
             time fraction — the Section 7 uniformity caveat made measurable. Error\n\
             peaks at *intermediate* hit rates, where some probes are ns and some are\n\
             page faults; a fully thrashing pool is uniform again (uniformly slow),\n\
             so the estimators recover — uniformity, not speed, is the assumption.\n",
        );
        if self.passed() {
            out.push_str("PASS: hit rate falls across the sweep and de-caching degrades the time-fraction error\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// Runs the sweep. See the module docs for what it demonstrates.
pub fn pagecache(scale: &Scale) -> PagecacheResult {
    let t: TpchDb = scale.tpch();
    let dir = std::env::temp_dir().join(format!("qp-pagecache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    t.save_paged(&dir).expect("bulk load to page files");

    let mut points = Vec::with_capacity(FRAME_SWEEP.len());
    for frames in FRAME_SWEEP {
        let db = qp_storage::paged::open_database(&dir, frames).expect("open paged db");
        let pool = std::sync::Arc::clone(db.buffer_pool().expect("paged db has a pool"));
        let stats = DbStats::build(&db);
        let mut plan = probe_plan(&db);
        qp_exec::estimate::annotate(&mut plan, &stats);

        // Score the query alone: stats building and index rebuilds also
        // went through the pool, and the penalty only matters under
        // measurement.
        pool.set_miss_penalty(MISS_PENALTY);
        pool.reset_stats();
        let (_, trace) = run_with_progress(
            &plan,
            &db,
            Some(&stats),
            vec![Box::new(Dne), Box::new(Pmax), Box::new(Safe)],
            None,
        )
        .expect("query runs");
        let stats_after = pool.stats();

        let snaps = trace.snapshots();
        let wall_ns = snaps.last().map(|s| s.at_ns).unwrap_or(0).max(1);
        let mut errs = [1.0f64; 3];
        for snap in snaps {
            let time_frac = snap.at_ns as f64 / wall_ns as f64;
            // Skip the startup sliver, where ratio error is dominated by
            // measurement noise rather than estimator behaviour.
            if !(0.01..=1.0).contains(&time_frac) {
                continue;
            }
            for (slot, est) in errs.iter_mut().zip(&snap.estimates) {
                *slot = slot.max(ratio_error(*est, time_frac));
            }
        }
        points.push(SweepPoint {
            frames,
            hit_rate: stats_after.hit_rate(),
            misses: stats_after.misses,
            time_ratio_err: errs,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Weak gates: the sweep must actually de-cache, and *somewhere* in
    // the de-cached sweep the time-fraction error must exceed the
    // fully-resident baseline. (The worst point is typically in the
    // middle: a fully thrashing pool has uniform — uniformly slow —
    // GetNexts, so the estimators partially recover there.)
    let mut violations = Vec::new();
    let (full, tiny) = (&points[0], &points[points.len() - 1]);
    if tiny.hit_rate >= full.hit_rate {
        violations.push(format!(
            "hit rate did not fall: {:.3} at {} frames vs {:.3} at {} frames",
            full.hit_rate, full.frames, tiny.hit_rate, tiny.frames
        ));
    }
    if tiny.misses == 0 {
        violations.push(format!("{}-frame pool recorded zero misses", tiny.frames));
    }
    let worst = |p: &SweepPoint| p.time_ratio_err.iter().cloned().fold(1.0f64, f64::max);
    let peak = points[1..].iter().map(worst).fold(1.0f64, f64::max);
    if peak < worst(full) + 0.2 {
        violations.push(format!(
            "de-caching never degraded the time-fraction error: peak {:.2} across \
             the de-cached points vs {:.2} fully resident",
            peak,
            worst(full)
        ));
    }
    PagecacheResult { points, violations }
}
