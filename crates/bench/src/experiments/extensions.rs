//! Experiments for the extensions beyond the paper's evaluation: the
//! Section 6.4 inter-query feedback proposal, and a systematic sweep of
//! the Section 2.5 threshold requirement across the suite.

use super::figures::{synthetic, synthetic_inl_plan};
use super::traced_run;
use crate::Scale;
use qp_datagen::RowOrder;
use qp_exec::estimate::annotate;
use qp_progress::estimators::{Dne, Pmax, Safe};
use qp_progress::feedback::{FeedbackEstimator, FeedbackStore};
use qp_progress::metrics::{error_stats, threshold_requirement_holds};
use qp_progress::monitor::run_with_progress;
use qp_progress::PlanMeta;
use qp_stats::DbStats;

/// Inter-query feedback (Section 6.4): run the same worst-case query
/// repeatedly; after the first run the feedback estimator knows μ and its
/// error collapses, while the memoryless estimators repeat their mistakes.
#[derive(Debug, Clone)]
pub struct FeedbackResult {
    /// `(run, feedback_avg_err, safe_avg_err, dne_avg_err)`.
    pub rows: Vec<(usize, f64, f64, f64)>,
}

impl FeedbackResult {
    pub fn render(&self) -> String {
        crate::render::render_table(
            "Extension: inter-query feedback (Section 6.4) on the worst-case join",
            &["run", "feedback avg err", "safe avg err", "dne avg err"],
            &self
                .rows
                .iter()
                .map(|(r, f, s, d)| {
                    vec![
                        r.to_string(),
                        format!("{:.2}%", f * 100.0),
                        format!("{:.2}%", s * 100.0),
                        format!("{:.2}%", d * 100.0),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }
}

pub fn feedback(scale: &Scale) -> FeedbackResult {
    let s = synthetic(scale, RowOrder::SkewLast);
    let stats = DbStats::build(&s.db);
    let mut plan = synthetic_inl_plan(&s);
    annotate(&mut plan, &stats);
    let meta = PlanMeta::from_plan(&plan);
    let store = FeedbackStore::new();
    let mut rows = Vec::new();
    for run in 1..=3 {
        let estimators: Vec<Box<dyn qp_progress::ProgressEstimator>> = vec![
            Box::new(FeedbackEstimator::for_plan(&store, &plan)),
            Box::new(Safe),
            Box::new(Dne),
        ];
        let (out, trace) =
            run_with_progress(&plan, &s.db, Some(&stats), estimators, None).expect("runs");
        let f = error_stats(&trace, "feedback").expect("traced").avg_abs;
        let sa = error_stats(&trace, "safe").expect("traced").avg_abs;
        let d = error_stats(&trace, "dne").expect("traced").avg_abs;
        rows.push((run, f, sa, d));
        store.record_run(&plan, &meta, &out.node_counts);
    }
    FeedbackResult { rows }
}

/// Section 4.2 operationalized on real executions: profile the realized
/// per-driver-tuple work vector of the synthetic INL join under each input
/// order and report μ, variance, 2-predictiveness, and the dne ratio
/// error after half the driver (Property 2's quantity).
#[derive(Debug, Clone)]
pub struct OrderAnalysisResult {
    /// `(order, mu, variance, is_2_predictive, dne_ratio_after_half)`.
    pub rows: Vec<(String, f64, f64, bool, f64)>,
}

impl OrderAnalysisResult {
    pub fn render(&self) -> String {
        crate::render::render_table(
            "Section 4.2: realized work vectors by input order",
            &["order", "mu", "variance", "2-predictive", "dne ratio @50%"],
            &self
                .rows
                .iter()
                .map(|(o, mu, var, p, r)| {
                    vec![
                        o.clone(),
                        format!("{mu:.3}"),
                        format!("{var:.1}"),
                        p.to_string(),
                        format!("{r:.3}"),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }
}

pub fn order_analysis(scale: &Scale) -> OrderAnalysisResult {
    use qp_progress::analysis::{dne_ratio_error_after_half, is_c_predictive, profile_work};
    let mut rows = Vec::new();
    for (order, label) in [
        (RowOrder::Random, "random"),
        (RowOrder::SkewFirst, "skew-first"),
        (RowOrder::SkewLast, "skew-last"),
    ] {
        let s = synthetic(scale, order);
        let plan = synthetic_inl_plan(&s);
        let wv = profile_work(&plan, &s.db).expect("single pipeline");
        rows.push((
            label.to_string(),
            wv.mu(),
            wv.variance(),
            is_c_predictive(&wv, 2.0),
            dne_ratio_error_after_half(&wv),
        ));
    }
    OrderAnalysisResult { rows }
}

/// The threshold requirement (Section 2.5): for each estimator, the
/// fraction of workload queries on which the `(τ, δ)` requirement holds
/// over the *entire* execution, at the paper's illustrative τ = 0.5,
/// δ = 0.05, and at the very lax τ = 0.5, δ = 0.4 from the Theorem 1
/// discussion.
#[derive(Debug, Clone)]
pub struct ThresholdResult {
    /// `(estimator, frac_holding_strict, frac_holding_lax)` over TPC-H.
    pub rows: Vec<(&'static str, f64, f64)>,
    pub queries: usize,
}

impl ThresholdResult {
    pub fn render(&self) -> String {
        crate::render::render_table(
            &format!(
                "Threshold requirement over {} TPC-H queries (fraction satisfied)",
                self.queries
            ),
            &["estimator", "tau=.5 delta=.05", "tau=.5 delta=.40"],
            &self
                .rows
                .iter()
                .map(|(n, s, l)| vec![n.to_string(), format!("{s:.2}"), format!("{l:.2}")])
                .collect::<Vec<_>>(),
        )
    }
}

pub fn threshold(scale: &Scale) -> ThresholdResult {
    let t = scale.tpch();
    let stats = DbStats::build(&t.db);
    let names = ["dne", "pmax", "safe"];
    let mut strict = [0usize; 3];
    let mut lax = [0usize; 3];
    let mut queries = 0usize;
    for (_q, plan) in qp_workloads::tpch_queries(&t) {
        let (_, trace) = traced_run(
            plan,
            &t.db,
            &stats,
            vec![Box::new(Dne), Box::new(Pmax), Box::new(Safe)],
        );
        queries += 1;
        for (i, n) in names.iter().enumerate() {
            if threshold_requirement_holds(&trace, n, 0.5, 0.05) {
                strict[i] += 1;
            }
            if threshold_requirement_holds(&trace, n, 0.5, 0.40) {
                lax[i] += 1;
            }
        }
    }
    ThresholdResult {
        rows: names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                (
                    *n,
                    strict[i] as f64 / queries as f64,
                    lax[i] as f64 / queries as f64,
                )
            })
            .collect(),
        queries,
    }
}
