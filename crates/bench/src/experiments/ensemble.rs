//! Ensemble scenario matrix (`repro -- ensemble`): the honest evaluation
//! the ensemble estimator has to survive before it is worth shipping.
//!
//! Theorems 7/8 prove no fixed estimator is trustworthy everywhere, and
//! König et al. (PAPERS.md) show a statistical combination beats any
//! fixed pick *on average* — but an ensemble can also fail in a new way:
//! interpolating garbage confidently when the regime shifts under it.
//! This experiment sweeps every hostile regime the repro can generate
//! and gates the ensemble three ways:
//!
//! 1. **Win-or-tie a majority**: across the matrix the ensemble's max
//!    ratio error must be ≤ the best *fixed* member's (within a 10% tie
//!    band — a weighted mean rarely lands exactly on the per-cell
//!    winner) on a majority of cells.
//! 2. **Never worse than safe's worst case**: in *no* cell may the
//!    ensemble exceed bare `safe`'s worst error across the whole matrix
//!    — graceful degradation must not invent a new worst case.
//! 3. **Fallback is byte-identical to safe**: in the fault and thrash
//!    cells the regime probes must trip, trust must reach `fallback`,
//!    and from that checkpoint on the ensemble column must equal the
//!    safe column *bitwise* (the fallback is a delegation, not an
//!    imitation).
//!
//! The matrix: synthetic INL joins at Zipf z ∈ {0, 1, 2} × input order
//! {random, skew-last (the Figure 5 worst case)} × parallel degrees
//! {1, 2, 4} on the heap backend; the paged backend at the same three
//! skews (orders ⋈INL customer through the buffer pool); the Theorem 1
//! adversarial twins, where *nothing* can win and the cell reports the
//! provable floor instead; a seeded-fault cell; and a thrashing-pool
//! cell. Parallel degrees ride the serial-equivalent GetNext accounting
//! (same checkpoints, same estimates), so those cells tie by
//! construction — the sweep runs them anyway, as a regression check.
//!
//! Per-estimator error statistics are fed *online*, cell by cell,
//! through the same [`EnsembleStats`] feed the service uses, so later
//! cells see weights learned from earlier ones — the König-style
//! session-history loop, reproduced deterministically.
//!
//! Results land in `BENCH_ensemble.json` at the workspace root.

use crate::render::render_table;
use crate::Scale;
use qp_datagen::{RowOrder, SyntheticConfig, SyntheticDb, TpchConfig, TpchDb};
use qp_exec::plan::Plan;
use qp_exec::{parallelize, FaultKind, FaultPlan, RunControls};
use qp_obs::json::Obj;
use qp_obs::QueryObs;
use qp_progress::adversary::AdversarialPair;
use qp_progress::estimators::{Dne, Ensemble, EnsembleStats, EstTotal, Pmax, Safe};
use qp_progress::metrics::error_stats;
use qp_progress::monitor::{run_with_progress_probed, ProgressTrace};
use qp_progress::{ProgressEstimator, RegimeFlags, Trust};
use qp_stats::DbStats;
use qp_storage::Database;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Column order of every per-cell score: the four fixed members, then
/// the ensemble over them.
const COLUMNS: [&str; 5] = ["dne", "pmax", "safe", "esttotal", "ensemble"];

/// A cell's ensemble error within this factor of the best fixed member
/// counts as a tie (gate 1's tie band).
const TIE_BAND: f64 = 1.10;

/// One scenario-matrix cell.
#[derive(Debug, Clone)]
pub struct Cell {
    pub name: String,
    /// Max ratio error vs true progress, per `COLUMNS` column.
    pub err: [f64; 5],
    /// Final (monotone) trust of the run.
    pub trust: Trust,
    /// `win` / `tie` / `loss` vs the best fixed member; adversarial
    /// cells carry the Theorem 1 floor instead.
    pub outcome: String,
}

impl Cell {
    fn best_fixed(&self) -> f64 {
        self.err[..4].iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

/// The matrix result plus the three gates.
#[derive(Debug, Clone)]
pub struct EnsembleResult {
    pub cells: Vec<Cell>,
    pub wins_or_ties: usize,
    /// Cells the score gates apply to (everything but the adversarial
    /// twins, which report the Theorem 1 floor instead).
    pub scored_cells: usize,
    pub safe_worst: f64,
    pub fallback_identical: bool,
    pub violations: Vec<String>,
}

impl EnsembleResult {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                let mut row = vec![c.name.clone()];
                row.extend(c.err.iter().map(|e| format!("{e:.2}")));
                row.push(c.trust.as_str().to_string());
                row.push(c.outcome.clone());
                row
            })
            .collect();
        let mut out = render_table(
            "ensemble scenario matrix: max ratio error vs true progress",
            &[
                "cell", "dne", "pmax", "safe", "esttotal", "ensemble", "trust", "outcome",
            ],
            &rows,
        );
        out.push_str(&format!(
            "win/tie = ensemble within {TIE_BAND}x of the best fixed member; adversarial\n\
             cells report the Theorem 1 floor no estimator can beat. Parallel degrees\n\
             share serial-equivalent checkpoints, so p1/p2/p4 triplets tie by design.\n"
        ));
        if self.passed() {
            out.push_str(&format!(
                "PASS: ensemble wins or ties {}/{} scored cells, stays within safe's \
                 worst case {:.2} everywhere, and fallback is byte-identical to safe\n",
                self.wins_or_ties, self.scored_cells, self.safe_worst
            ));
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// The evaluation suite: every fixed member, then the ensemble sharing
/// the sweep-wide online stats feed.
fn suite(shared: &Arc<EnsembleStats>) -> Vec<Box<dyn ProgressEstimator>> {
    vec![
        Box::new(Dne),
        Box::new(Pmax),
        Box::new(Safe),
        Box::new(EstTotal),
        Box::new(Ensemble::with_stats(Arc::clone(shared))),
    ]
}

/// Runs one cell: annotate, fan out to `degree`, execute under the given
/// fault plan with the service-style regime probes installed (per-query
/// fault counters; pool eviction churn when the backend is paged), score
/// every column, and feed the trace back into the online stats.
fn run_cell(
    name: String,
    mut plan: Plan,
    db: &Database,
    stats: &DbStats,
    shared: &Arc<EnsembleStats>,
    degree: usize,
    faults: Option<FaultPlan>,
) -> (Cell, ProgressTrace) {
    qp_exec::estimate::annotate(&mut plan, stats);
    let plan = parallelize(&plan, degree);

    let pool = db.buffer_pool().cloned();
    let baseline_evictions = pool.as_ref().map(|p| p.stats().evictions);
    let obs = faults
        .as_ref()
        .map(|_| QueryObs::new(0, plan.op_labels(), false, None));
    let controls = RunControls {
        faults,
        obs: obs.clone(),
        ..RunControls::default()
    };
    let probe: Option<Box<dyn Fn() -> u8 + Send>> = if obs.is_some() || pool.is_some() {
        let obs = obs.clone();
        Some(Box::new(move || {
            let mut bits = 0u8;
            if let Some(obs) = &obs {
                if obs.snapshot().iter().any(|n| n.faults > 0) {
                    bits |= RegimeFlags::FAULT;
                }
            }
            if let (Some(pool), Some(base)) = (&pool, baseline_evictions) {
                let s = pool.stats();
                if s.evictions.saturating_sub(base) > s.capacity as u64 {
                    bits |= RegimeFlags::THRASH;
                }
            }
            bits
        }))
    } else {
        None
    };

    let (_, trace) =
        run_with_progress_probed(&plan, db, Some(stats), suite(shared), None, controls, probe)
            .expect("matrix cell runs to completion");
    shared.record_trace(&trace);

    let mut err = [f64::NAN; 5];
    for (slot, col) in err.iter_mut().zip(COLUMNS) {
        *slot = error_stats(&trace, col)
            .map(|e| e.max_ratio)
            .unwrap_or(f64::NAN);
    }
    let trust = trace
        .snapshots()
        .last()
        .map(|s| s.trust)
        .unwrap_or(Trust::Ok);
    let cell = Cell {
        name,
        err,
        trust,
        outcome: String::new(),
    };
    (cell, trace)
}

/// Post-fallback byte-identity: from the first `fallback` checkpoint on,
/// the ensemble column must equal the safe column bitwise. Returns an
/// error string when it does not (or when fallback never engaged).
fn check_fallback(name: &str, trace: &ProgressTrace) -> Option<String> {
    let snaps = trace.snapshots();
    let onset = snaps.iter().position(|s| s.trust == Trust::Fallback)?;
    for s in &snaps[onset..] {
        // COLUMNS: ensemble is estimates[4], safe estimates[2].
        if s.estimates[4].to_bits() != s.estimates[2].to_bits() {
            return Some(format!(
                "{name}: post-fallback ensemble {} != safe {} at curr {}",
                s.estimates[4], s.estimates[2], s.curr
            ));
        }
    }
    None
}

/// Runs the scenario matrix. `seed` positions the injected fault (so CI
/// can vary it) without changing the matrix shape.
pub fn ensemble(scale: &Scale, seed: u64) -> EnsembleResult {
    let shared = Arc::new(EnsembleStats::new());
    let mut cells: Vec<Cell> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut fallback_failures: Vec<String> = Vec::new();
    let mut fallback_cells = 0usize;

    // --- Heap backend: skew × input order × parallel degree. ---------
    for z in [0.0f64, 1.0, 2.0] {
        for (order, order_tag) in [(RowOrder::Random, "rand"), (RowOrder::SkewLast, "worst")] {
            let s = SyntheticDb::generate(SyntheticConfig {
                r1_rows: scale.synth_r1,
                r2_rows: scale.synth_r2,
                z,
                r1_order: order,
                seed: scale.seed,
            });
            let stats = DbStats::build(&s.db);
            for degree in [1usize, 2, 4] {
                let plan = super::figures::synthetic_inl_plan(&s);
                let (cell, _) = run_cell(
                    format!("z{z:.0}/{order_tag}/p{degree}"),
                    plan,
                    &s.db,
                    &stats,
                    &shared,
                    degree,
                    None,
                );
                cells.push(cell);
            }
        }
    }

    // --- Paged backend: the same skews through the buffer pool. ------
    let dir = std::env::temp_dir().join(format!("qp-ensemble-{}", std::process::id()));
    for z in [0.0f64, 1.0, 2.0] {
        let t = TpchDb::generate(TpchConfig {
            scale: scale.tpch_scale,
            z,
            seed: scale.seed,
        });
        let _ = std::fs::remove_dir_all(&dir);
        t.save_paged(&dir).expect("bulk load to page files");
        // Ample frames: the pool holds the working set, so the THRASH
        // probe stays quiet and the cell scores the estimators, not the
        // fallback (a dedicated thrash cell below does that).
        let db = qp_storage::paged::open_database(&dir, 4096).expect("open paged db");
        let stats = DbStats::build(&db);
        let (cell, _) = run_cell(
            format!("z{z:.0}/paged/p1"),
            super::pagecache::probe_plan(&db),
            &db,
            &stats,
            &shared,
            1,
            None,
        );
        cells.push(cell);

        if (z - 1.0).abs() < f64::EPSILON {
            // --- Thrash cell: a pool far smaller than the probe's
            // working set. Eviction churn must trip the THRASH probe
            // and force the safe fallback.
            let db = qp_storage::paged::open_database(&dir, 6).expect("open paged db");
            let stats = DbStats::build(&db);
            let (cell, trace) = run_cell(
                "thrash/paged/p1".to_string(),
                super::pagecache::probe_plan(&db),
                &db,
                &stats,
                &shared,
                1,
                None,
            );
            fallback_cells += 1;
            match check_fallback(&cell.name, &trace) {
                None if cell.trust == Trust::Fallback => {}
                None => fallback_failures.push(format!(
                    "{}: thrashing pool never tripped the regime probe (trust {})",
                    cell.name, cell.trust
                )),
                Some(e) => fallback_failures.push(e),
            }
            cells.push(cell);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    // --- Seeded fault cell: a fired (non-fatal) fault mid-query. -----
    {
        let s = SyntheticDb::generate(SyntheticConfig {
            r1_rows: scale.synth_r1,
            r2_rows: scale.synth_r2,
            z: 2.0,
            r1_order: RowOrder::SkewLast,
            seed: scale.seed,
        });
        let stats = DbStats::build(&s.db);
        let at = 10 + seed % (scale.synth_r1 as u64 / 2).max(1);
        let (cell, trace) = run_cell(
            format!("fault@{at}/p1"),
            super::figures::synthetic_inl_plan(&s),
            &s.db,
            &stats,
            &shared,
            1,
            Some(FaultPlan::single(
                at,
                FaultKind::Delay(Duration::from_micros(50)),
            )),
        );
        fallback_cells += 1;
        match check_fallback(&cell.name, &trace) {
            None if cell.trust == Trust::Fallback => {}
            None => fallback_failures.push(format!(
                "{}: injected fault never tripped the regime probe (trust {})",
                cell.name, cell.trust
            )),
            Some(e) => fallback_failures.push(e),
        }
        cells.push(cell);
    }

    // --- Theorem 1 adversarial twins: cells nothing can win. ---------
    let pair = AdversarialPair::construct(scale.synth_r1.max(1_000));
    let floor = pair.best_achievable_ratio();
    let mut adversarial = 0usize;
    for (db, tag) in [(&pair.db_x, "x"), (&pair.db_y, "y")] {
        let stats = DbStats::build(db);
        let (mut cell, _) = run_cell(
            format!("adversary/{tag}/p1"),
            pair.plan(db),
            db,
            &stats,
            &shared,
            1,
            None,
        );
        cell.outcome = format!("floor {floor:.2}");
        adversarial += 1;
        cells.push(cell);
    }

    // --- Gates. ------------------------------------------------------
    // The adversarial twin cells are exempt from both score gates: they
    // are precisely the instances where Theorems 7/8 prove *no*
    // estimator — fixed or combined — can win (any answer good on one
    // twin is forced into ≥ the Theorem 1 floor on the other, and a
    // history-informed ensemble is lied to by construction). They stay
    // in the table and the JSON, labelled with the provable floor.
    let scored = |c: &Cell| !c.name.starts_with("adversary/");

    // Gate 1: win-or-tie a majority of the scored cells.
    let mut wins_or_ties = 0usize;
    let mut scored_cells = 0usize;
    for c in cells.iter_mut() {
        let best = c.best_fixed();
        let label = if c.err[4] <= best + 1e-9 {
            "win"
        } else if c.err[4] <= best * TIE_BAND {
            "tie"
        } else {
            "loss"
        };
        if scored(c) {
            scored_cells += 1;
            if label != "loss" {
                wins_or_ties += 1;
            }
        }
        if c.outcome.is_empty() {
            c.outcome = label.to_string();
        } else {
            c.outcome = format!("{label}, {}", c.outcome);
        }
    }
    if wins_or_ties * 2 <= scored_cells {
        violations.push(format!(
            "ensemble won or tied only {wins_or_ties}/{scored_cells} scored cells — not a majority"
        ));
    }

    // Gate 2: never worse than bare safe's worst case, in any scored
    // cell.
    let safe_worst = cells
        .iter()
        .filter(|c| scored(c))
        .map(|c| c.err[2])
        .fold(1.0f64, f64::max);
    for c in cells.iter().filter(|c| scored(c)) {
        if c.err[4] > safe_worst + 1e-9 {
            violations.push(format!(
                "{}: ensemble error {:.2} exceeds safe's matrix-wide worst case {:.2}",
                c.name, c.err[4], safe_worst
            ));
        }
    }

    // Gate 3: fallback engaged where it must, byte-identical to safe.
    let fallback_identical = fallback_failures.is_empty() && fallback_cells >= 2;
    if fallback_cells < 2 {
        violations.push(format!(
            "expected a fault cell and a thrash cell, got {fallback_cells}"
        ));
    }
    violations.extend(fallback_failures);
    assert_eq!(adversarial, 2, "both twins must run");

    let result = EnsembleResult {
        cells,
        wins_or_ties,
        scored_cells,
        safe_worst,
        fallback_identical,
        violations,
    };
    write_json(&result, seed, floor);
    result
}

/// Writes `BENCH_ensemble.json` at the workspace root: the per-cell
/// scores plus the three gate verdicts, machine-readable for CI.
fn write_json(result: &EnsembleResult, seed: u64, floor: f64) {
    let cells: Vec<String> = result
        .cells
        .iter()
        .map(|c| {
            let mut obj = Obj::new().str("cell", &c.name);
            for (col, e) in COLUMNS.iter().zip(c.err) {
                obj = obj.f64(col, e);
            }
            obj.str("trust", c.trust.as_str())
                .str("outcome", &c.outcome)
                .finish()
        })
        .collect();
    let summary = Obj::new()
        .str("bench", "ensemble")
        .u64("seed", seed)
        .u64("cells", result.cells.len() as u64)
        .u64("scored_cells", result.scored_cells as u64)
        .u64("wins_or_ties", result.wins_or_ties as u64)
        .f64("tie_band", TIE_BAND)
        .f64("safe_worst_ratio", result.safe_worst)
        .f64("theorem1_floor", floor)
        .str(
            "fallback_identical",
            if result.fallback_identical {
                "true"
            } else {
                "false"
            },
        )
        .str("gate", if result.passed() { "pass" } else { "fail" })
        .finish();
    // Splice the cell array into the flat summary object by hand — the
    // JSONL writer is deliberately flat.
    let open = summary.strip_suffix('}').expect("summary is an object");
    let json = format!("{open},\"matrix\":[{}]}}\n", cells.join(","));
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ensemble.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[could not write {}: {e}]", path.display()),
    }
}
