//! Experiment implementations, grouped as in the paper's evaluation.

pub mod ablations;
pub mod audit;
pub mod chaos;
pub mod ensemble;
pub mod extensions;
pub mod figures;
pub mod load;
pub mod pagecache;
pub mod tables;
pub mod theory;
pub mod trace_export;

use qp_exec::estimate::annotate;
use qp_exec::plan::Plan;
use qp_progress::estimators::ProgressEstimator;
use qp_progress::monitor::{run_with_progress, ProgressTrace};
use qp_stats::DbStats;
use qp_storage::Database;

/// Runs `plan` over `db` with the given estimators, annotating optimizer
/// estimates first and returning the trace plus the completed totals.
pub fn traced_run(
    mut plan: Plan,
    db: &Database,
    stats: &DbStats,
    estimators: Vec<Box<dyn ProgressEstimator>>,
) -> (qp_exec::executor::QueryOutput, ProgressTrace) {
    annotate(&mut plan, stats);
    run_with_progress(&plan, db, Some(stats), estimators, None)
        .expect("experiment query runs to completion")
}

/// A named series experiment result: `(actual_progress, estimates...)`.
#[derive(Debug, Clone)]
pub struct SeriesResult {
    pub title: String,
    pub estimator_names: Vec<&'static str>,
    pub series: Vec<(f64, Vec<f64>)>,
}

impl SeriesResult {
    /// Builds from a trace.
    pub fn from_trace(title: impl Into<String>, trace: &ProgressTrace) -> SeriesResult {
        let names = trace.names().to_vec();
        let prog = trace.true_progress();
        let series = trace
            .snapshots()
            .iter()
            .zip(prog)
            .map(|(s, p)| (p, s.estimates.clone()))
            .collect();
        SeriesResult {
            title: title.into(),
            estimator_names: names,
            series,
        }
    }

    /// Renders as text (≈25 sample points, like the paper's plots).
    pub fn render(&self) -> String {
        crate::render::render_series(&self.title, &self.estimator_names, &self.series, 25)
    }
}
