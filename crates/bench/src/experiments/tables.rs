//! Table regenerators (Tables 1–3 of the paper).

use super::figures::{synthetic, synthetic_hash_plan, synthetic_inl_plan};
use super::traced_run;
use crate::Scale;
use qp_datagen::RowOrder;
use qp_progress::estimators::{Dne, Pmax, Safe};
use qp_progress::metrics::error_stats;
use qp_progress::PlanMeta;
use qp_stats::DbStats;

/// Table 1 — impact of a scan-based plan: max/avg absolute error of each
/// estimator under the worst-case (skew-last) order, INL join vs hash
/// join.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows: `(estimator, max_inl, max_hash, avg_inl, avg_hash)` — all in
    /// progress units (fractions).
    pub rows: Vec<(&'static str, f64, f64, f64, f64)>,
}

impl Table1 {
    pub fn render(&self) -> String {
        crate::render::render_table(
            "Table 1: impact of scan-based plan (worst-case order)",
            &[
                "estimator",
                "MaxErr(INL)",
                "MaxErr(Hash)",
                "AvgErr(INL)",
                "AvgErr(Hash)",
            ],
            &self
                .rows
                .iter()
                .map(|(n, mi, mh, ai, ah)| {
                    vec![
                        n.to_string(),
                        format!("{:.2}%", mi * 100.0),
                        format!("{:.2}%", mh * 100.0),
                        format!("{:.2}%", ai * 100.0),
                        format!("{:.2}%", ah * 100.0),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }
}

pub fn table1(scale: &Scale) -> Table1 {
    let s = synthetic(scale, RowOrder::SkewLast);
    let stats = DbStats::build(&s.db);
    let suite = || -> Vec<Box<dyn qp_progress::ProgressEstimator>> {
        vec![Box::new(Dne), Box::new(Pmax), Box::new(Safe)]
    };
    let (_, inl_trace) = traced_run(synthetic_inl_plan(&s), &s.db, &stats, suite());
    let (_, hash_trace) = traced_run(synthetic_hash_plan(&s), &s.db, &stats, suite());
    let rows = ["dne", "pmax", "safe"]
        .iter()
        .map(|name| {
            let i = error_stats(&inl_trace, name).expect("traced");
            let h = error_stats(&hash_trace, name).expect("traced");
            (*name, i.max_abs, h.max_abs, i.avg_abs, h.avg_abs)
        })
        .collect();
    Table1 { rows }
}

/// Table 2 — μ values for the TPC-H queries (the paper reports Q1–Q21; we
/// include Q22 as well).
#[derive(Debug, Clone)]
pub struct MuTable {
    pub title: &'static str,
    /// `(query, μ, scan_based, internal_nodes)`.
    pub rows: Vec<(usize, f64, bool, usize)>,
}

impl MuTable {
    pub fn render(&self) -> String {
        crate::render::render_table(
            self.title,
            &["query", "mu", "scan-based", "m"],
            &self
                .rows
                .iter()
                .map(|(q, mu, sb, m)| {
                    vec![
                        q.to_string(),
                        format!("{mu:.3}"),
                        sb.to_string(),
                        m.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }

    /// μ for one query number, if present.
    pub fn mu(&self, q: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|(n, ..)| *n == q)
            .map(|&(_, mu, ..)| mu)
    }
}

pub fn table2(scale: &Scale) -> MuTable {
    let t = scale.tpch();
    let stats = DbStats::build(&t.db);
    let mut rows = Vec::new();
    for (q, plan) in qp_workloads::tpch_queries(&t) {
        let meta = PlanMeta::from_plan(&plan);
        let scan_based = meta.scan_based;
        let m = meta.internal_nodes;
        let (out, _) = traced_run(plan, &t.db, &stats, vec![Box::new(Pmax)]);
        let mu = qp_progress::mu_from_counts(&meta, &out.node_counts);
        rows.push((q, mu, scan_based, m));
    }
    MuTable {
        title: "Table 2: mu values for TPC-H (z=2)",
        rows,
    }
}

/// Table 3 — μ values for the SkyServer suite.
pub fn table3(scale: &Scale) -> MuTable {
    let s = scale.sky();
    let stats = DbStats::build(&s.db);
    let mut rows = Vec::new();
    for (q, plan) in qp_workloads::sky_queries(&s) {
        let meta = PlanMeta::from_plan(&plan);
        let scan_based = meta.scan_based;
        let m = meta.internal_nodes;
        let (out, _) = traced_run(plan, &s.db, &stats, vec![Box::new(Pmax)]);
        let mu = qp_progress::mu_from_counts(&meta, &out.node_counts);
        rows.push((q, mu, scan_based, m));
    }
    MuTable {
        title: "Table 3: mu values for the synthetic SkyServer suite",
        rows,
    }
}
