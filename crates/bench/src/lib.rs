//! # qp-bench — the reproduction harness
//!
//! One regenerator per table and figure of the paper's evaluation, plus
//! the theorem-validation experiments. The `repro` binary
//! (`cargo run -p qp-bench --bin repro -- <experiment>`) prints the same
//! rows/series the paper reports; the structured results are also
//! returned as values so the integration tests can assert the paper's
//! *qualitative* claims (who wins, by roughly what factor, where the
//! crossovers fall) at laptop scale.
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | `fig3` | Figure 3 — dne on TPC-H Q1 (z=2) | [`experiments::figures::fig3`] |
//! | `fig4` | Figure 4 — pmax vs dne, zipf inner, skew-first order | [`experiments::figures::fig4`] |
//! | `fig5` | Figure 5 — safe vs dne, worst-case (skew-last) order | [`experiments::figures::fig5`] |
//! | `fig6` | Figure 6 — pmax ratio error over Q21 | [`experiments::figures::fig6`] |
//! | `fig7` | Figure 7 — safe vs dne on a dne-favourable query | [`experiments::figures::fig7`] |
//! | `table1` | Table 1 — INL vs Hash, max/avg errors | [`experiments::tables::table1`] |
//! | `table2` | Table 2 — μ for TPC-H Q1–Q22 | [`experiments::tables::table2`] |
//! | `table3` | Table 3 — μ for the SkyServer suite | [`experiments::tables::table3`] |
//! | `lowerbound` | Example 1 / Theorem 1 twin instances | [`experiments::theory::lower_bound`] |
//! | `thm3` | Theorem 3 — E\[err\]=0 under random order | [`experiments::theory::theorem3`] |
//! | `thm4` | Theorem 4 — ≥½ of orders 2-predictive | [`experiments::theory::theorem4`] |
//! | `scanbased` | Property 6 — scan-based guarantees | [`experiments::theory::scan_based`] |
//! | `invariants` | Properties 4 & Theorem 5 along whole suite | [`experiments::theory::invariants`] |

pub mod experiments;
pub mod render;

use qp_datagen::{SkyConfig, SkyDb, TpchConfig, TpchDb};

/// Standard experiment scale. The paper uses 1 GB databases; all shapes
/// here are scale-free (see DESIGN.md §5), and these sizes keep the whole
/// suite under a minute in release mode.
#[derive(Debug, Clone)]
pub struct Scale {
    pub tpch_scale: f64,
    pub tpch_z: f64,
    pub synth_r1: usize,
    pub synth_r2: usize,
    pub sky_rows: usize,
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Scale {
        Scale {
            tpch_scale: 0.01,
            tpch_z: 2.0,
            synth_r1: 20_000,
            synth_r2: 200_000,
            sky_rows: 60_000,
            seed: 0xBEEF,
        }
    }
}

impl Scale {
    /// A reduced scale for tests (whole suite in a few seconds, debug
    /// mode included).
    pub fn small() -> Scale {
        Scale {
            tpch_scale: 0.002,
            tpch_z: 2.0,
            synth_r1: 2_000,
            synth_r2: 20_000,
            sky_rows: 8_000,
            seed: 0xBEEF,
        }
    }

    /// Generates the TPC-H database at this scale.
    pub fn tpch(&self) -> TpchDb {
        TpchDb::generate(TpchConfig {
            scale: self.tpch_scale,
            z: self.tpch_z,
            seed: self.seed,
        })
    }

    /// Generates the SkyServer database at this scale.
    pub fn sky(&self) -> SkyDb {
        SkyDb::generate(SkyConfig {
            photoobj_rows: self.sky_rows,
            spec_fraction: 0.04,
            neighbors_per_obj: 3.0,
            seed: self.seed,
        })
    }
}
