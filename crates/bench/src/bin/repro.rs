//! The reproduction driver: regenerates every table and figure of the
//! paper.
//!
//! ```text
//! cargo run --release -p qp-bench --bin repro -- all
//! cargo run --release -p qp-bench --bin repro -- fig4 table2
//! cargo run --release -p qp-bench --bin repro -- --small all
//! cargo run --release -p qp-bench --bin repro -- --csv /tmp/traces fig5
//! cargo run --release -p qp-bench --bin repro -- --list
//! ```
//!
//! `--csv <dir>` additionally writes each figure's raw trace as CSV
//! (`curr,progress,lb,ub,<estimators…>`) for external plotting; `--list`
//! prints the experiment table. Unknown experiment names or flags abort
//! before anything runs (a typo cannot silently skip part of a sweep).
//!
//! `chaos` replays the TPC-H suite through the query service under
//! deterministic fault injection; `--seed <n>` picks the fault seed
//! (default 1), and the same seed replays the exact same faults:
//!
//! ```text
//! cargo run --release -p qp-bench --bin repro -- chaos --seed 7
//! ```
//!
//! `trace` exports every TPC-H query's estimator trajectory as JSONL
//! (the same payload the service's `TRACE <id>` verb serves) — one
//! `q<N>.jsonl` per query under `--csv <dir>` (default `target/traces`),
//! validating Proposition 4 per checkpoint on the way out.
//! `--estimators <csv>` picks the per-session estimator suite by name
//! from the `qp_progress::estimators` registry (the same names the wire
//! protocol's `ESTIMATORS=` field accepts); unknown names abort up front.

use qp_bench::experiments::{
    ablations, audit, chaos, ensemble, extensions, figures, load, pagecache, tables, theory,
    trace_export,
};
use qp_bench::Scale;

/// `(name, what it reproduces)` — the full experiment table, also printed
/// by `--list`.
const EXPERIMENTS: [(&str, &str); 25] = [
    ("fig3", "Figure 3: estimator traces, scan-based query"),
    ("fig4", "Figure 4: estimator traces, TPC-H join query"),
    ("fig5", "Figure 5: estimator traces under skew"),
    ("fig6", "Figure 6: max ratio error across the workload"),
    ("fig7", "Figure 7: SkyServer-style long-running queries"),
    ("table1", "Table 1: per-query error summary, TPC-H"),
    ("table2", "Table 2: per-query error summary, SkyServer"),
    ("table3", "Table 3: observed mu per query"),
    ("lowerbound", "Theorem 1: the adversarial twin instances"),
    ("thm3", "Theorem 3: dne unbiased under random order"),
    ("thm4", "Theorem 4: fraction of 2-predictive orders"),
    (
        "scanbased",
        "Property 6: scan-based queries bound safe/pmax",
    ),
    ("invariants", "Properties 4/5: pmax/safe guarantee sweep"),
    ("ablation-stride", "Ablation: snapshot stride sensitivity"),
    (
        "ablation-safe-mean",
        "Ablation: safe's mean (geometric vs arithmetic)",
    ),
    ("ablation-hybrid", "Ablation: hybrid switch threshold"),
    ("feedback", "Section 6.4: inter-query feedback estimator"),
    (
        "threshold",
        "Section 2.5: (tau, delta) threshold requirement",
    ),
    ("orders", "Section 4.2: input-order predictiveness analysis"),
    (
        "chaos",
        "Resilience: TPC-H suite under seeded fault injection (--seed <n>)",
    ),
    (
        "trace",
        "Observability: per-query estimator trajectories as JSONL (--csv <dir>)",
    ),
    (
        "audit",
        "Observability: AUDIT-over-TCP postmortems vs offline TRACE re-score, 3 seeds",
    ),
    (
        "pagecache",
        "Section 7: estimator error vs buffer-pool hit rate (paged backend)",
    ),
    (
        "ensemble",
        "Robustness: ensemble vs fixed estimators across the hostile-scenario matrix (--seed <n>)",
    ),
    (
        "load",
        "Service: thousands of concurrent monitoring sessions vs the event-loop front end (--seed <n>)",
    ),
];

fn known(name: &str) -> bool {
    EXPERIMENTS.iter().any(|&(n, _)| n == name)
}

fn print_list() {
    println!("available experiments ({} total):", EXPERIMENTS.len());
    for (name, what) in EXPERIMENTS {
        println!("  {name:<20} {what}");
    }
    println!("  {:<20} run everything above, in order", "all");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        print_list();
        return;
    }
    let small = args.iter().any(|a| a == "--small");
    let scale = if small {
        Scale::small()
    } else {
        Scale::default()
    };
    let csv_flag_value: Option<&String> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1));
    let csv_dir: Option<std::path::PathBuf> = csv_flag_value.map(std::path::PathBuf::from);
    let seed_flag_value: Option<&String> = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1));
    let chaos_seed: u64 = match seed_flag_value {
        None => 1,
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("error: bad --seed value {v:?}: {e}");
            std::process::exit(2);
        }),
    };
    let estimators_flag_value: Option<&String> = args
        .iter()
        .position(|a| a == "--estimators")
        .and_then(|i| args.get(i + 1));
    if let Some(csv) = estimators_flag_value {
        // Validate against the registry up front — a typo'd estimator
        // name aborts before any experiment runs.
        if let Err(e) = qp_progress::parse_suite(csv) {
            eprintln!(
                "error: bad --estimators value {csv:?}: {e}\n       registered: {}",
                qp_progress::ESTIMATOR_NAMES.join(",")
            );
            std::process::exit(2);
        }
    }
    let estimators: Option<&str> = estimators_flag_value.map(String::as_str);

    // Validate everything up front: a typo ("fig8") must abort the whole
    // invocation with the experiment table, not silently skip or die
    // halfway through a sweep.
    if let Some(flag) = args.iter().find(|a| {
        a.starts_with("--")
            && !matches!(
                a.as_str(),
                "--small" | "--csv" | "--list" | "--seed" | "--estimators"
            )
    }) {
        eprintln!(
            "error: unknown flag {flag:?} \
             (known: --small, --csv <dir>, --seed <n>, --estimators <csv>, --list)"
        );
        std::process::exit(2);
    }
    let named: Vec<&str> = args
        .iter()
        .filter(|a| {
            !a.starts_with("--")
                && Some(*a) != csv_flag_value
                && Some(*a) != seed_flag_value
                && Some(*a) != estimators_flag_value
        })
        .map(String::as_str)
        .collect();
    let unknown: Vec<&str> = named
        .iter()
        .copied()
        .filter(|n| *n != "all" && !known(n))
        .collect();
    if !unknown.is_empty() {
        eprintln!("error: unknown experiment(s) {unknown:?}\n");
        print_list();
        eprintln!("\n(hint: `repro --list` prints this table)");
        std::process::exit(2);
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("csv dir is creatable");
    }
    let mut selected = named;
    if selected.is_empty() || selected.contains(&"all") {
        selected = EXPERIMENTS.iter().map(|&(n, _)| n).collect();
    }
    for exp in selected {
        let start = std::time::Instant::now();
        match exp {
            "fig3" => emit_figure(figures::fig3(&scale), "fig3", &csv_dir),
            "fig4" => emit_figure(figures::fig4(&scale), "fig4", &csv_dir),
            "fig5" => emit_figure(figures::fig5(&scale), "fig5", &csv_dir),
            "fig6" => print!("{}", figures::fig6(&scale).render()),
            "fig7" => emit_figure(figures::fig7(&scale), "fig7", &csv_dir),
            "table1" => print!("{}", tables::table1(&scale).render()),
            "table2" => print!("{}", tables::table2(&scale).render()),
            "table3" => print!("{}", tables::table3(&scale).render()),
            "lowerbound" => print!("{}", theory::lower_bound(4_000).render()),
            "thm3" => print!("{}", theory::theorem3(&scale).render()),
            "thm4" => print!("{}", theory::theorem4(&scale).render()),
            "scanbased" => print!("{}", theory::scan_based(&scale).render()),
            "invariants" => print!("{}", theory::invariants(&scale).render()),
            "ablation-stride" => print!("{}", ablations::stride(&scale).render()),
            "ablation-safe-mean" => print!("{}", ablations::safe_mean(&scale).render()),
            "ablation-hybrid" => print!("{}", ablations::hybrid_threshold(&scale).render()),
            "feedback" => print!("{}", extensions::feedback(&scale).render()),
            "threshold" => print!("{}", extensions::threshold(&scale).render()),
            "orders" => print!("{}", extensions::order_analysis(&scale).render()),
            "chaos" => {
                let result = chaos::chaos(&scale, chaos_seed);
                print!("{}", result.render());
                if !result.passed() {
                    std::process::exit(1);
                }
            }
            "trace" => {
                let result = trace_export::trace(&scale, csv_dir.as_deref(), estimators);
                print!("{}", result.render());
                if !result.passed() {
                    std::process::exit(1);
                }
            }
            "audit" => {
                let result = audit::audit(&scale);
                print!("{}", result.render());
                if !result.passed() {
                    std::process::exit(1);
                }
            }
            "pagecache" => {
                let result = pagecache::pagecache(&scale);
                print!("{}", result.render());
                if !result.passed() {
                    std::process::exit(1);
                }
            }
            "ensemble" => {
                let result = ensemble::ensemble(&scale, chaos_seed);
                print!("{}", result.render());
                if !result.passed() {
                    std::process::exit(1);
                }
            }
            "load" => {
                let result = load::load(&scale, small, chaos_seed);
                print!("{}", result.render());
                if !result.passed() {
                    std::process::exit(1);
                }
            }
            other => {
                eprintln!("unknown experiment {other:?}; known: {EXPERIMENTS:?}");
                std::process::exit(2);
            }
        }
        println!("[{exp} took {:.2?}]\n", start.elapsed());
    }
}

/// Prints a figure and optionally dumps its series as CSV.
fn emit_figure(
    fig: qp_bench::experiments::figures::FigureResult,
    name: &str,
    csv_dir: &Option<std::path::PathBuf>,
) {
    print!("{}", fig.render());
    if let Some(dir) = csv_dir {
        let mut csv = String::from("progress");
        for n in &fig.series.estimator_names {
            csv.push(',');
            csv.push_str(n);
        }
        csv.push('\n');
        for (p, ests) in &fig.series.series {
            csv.push_str(&format!("{p:.6}"));
            for e in ests {
                csv.push_str(&format!(",{e:.6}"));
            }
            csv.push('\n');
        }
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, csv).expect("csv is writable");
        println!("[wrote {}]", path.display());
    }
}
