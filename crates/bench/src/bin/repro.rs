//! The reproduction driver: regenerates every table and figure of the
//! paper.
//!
//! ```text
//! cargo run --release -p qp-bench --bin repro -- all
//! cargo run --release -p qp-bench --bin repro -- fig4 table2
//! cargo run --release -p qp-bench --bin repro -- --small all
//! cargo run --release -p qp-bench --bin repro -- --csv /tmp/traces fig5
//! ```
//!
//! `--csv <dir>` additionally writes each figure's raw trace as CSV
//! (`curr,progress,lb,ub,<estimators…>`) for external plotting.

use qp_bench::experiments::{ablations, extensions, figures, tables, theory};
use qp_bench::Scale;

const EXPERIMENTS: [&str; 19] = [
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "table2",
    "table3",
    "lowerbound",
    "thm3",
    "thm4",
    "scanbased",
    "invariants",
    "ablation-stride",
    "ablation-safe-mean",
    "ablation-hybrid",
    "feedback",
    "threshold",
    "orders",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let scale = if small {
        Scale::small()
    } else {
        Scale::default()
    };
    let csv_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("csv dir is creatable");
    }
    let csv_flag_value: Option<&String> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1));
    let mut selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--") && Some(*a) != csv_flag_value)
        .map(String::as_str)
        .collect();
    if selected.is_empty() || selected.contains(&"all") {
        selected = EXPERIMENTS.to_vec();
    }
    for exp in selected {
        let start = std::time::Instant::now();
        match exp {
            "fig3" => emit_figure(figures::fig3(&scale), "fig3", &csv_dir),
            "fig4" => emit_figure(figures::fig4(&scale), "fig4", &csv_dir),
            "fig5" => emit_figure(figures::fig5(&scale), "fig5", &csv_dir),
            "fig6" => print!("{}", figures::fig6(&scale).render()),
            "fig7" => emit_figure(figures::fig7(&scale), "fig7", &csv_dir),
            "table1" => print!("{}", tables::table1(&scale).render()),
            "table2" => print!("{}", tables::table2(&scale).render()),
            "table3" => print!("{}", tables::table3(&scale).render()),
            "lowerbound" => print!("{}", theory::lower_bound(4_000).render()),
            "thm3" => print!("{}", theory::theorem3(&scale).render()),
            "thm4" => print!("{}", theory::theorem4(&scale).render()),
            "scanbased" => print!("{}", theory::scan_based(&scale).render()),
            "invariants" => print!("{}", theory::invariants(&scale).render()),
            "ablation-stride" => print!("{}", ablations::stride(&scale).render()),
            "ablation-safe-mean" => print!("{}", ablations::safe_mean(&scale).render()),
            "ablation-hybrid" => print!("{}", ablations::hybrid_threshold(&scale).render()),
            "feedback" => print!("{}", extensions::feedback(&scale).render()),
            "threshold" => print!("{}", extensions::threshold(&scale).render()),
            "orders" => print!("{}", extensions::order_analysis(&scale).render()),
            other => {
                eprintln!("unknown experiment {other:?}; known: {EXPERIMENTS:?}");
                std::process::exit(2);
            }
        }
        println!("[{exp} took {:.2?}]\n", start.elapsed());
    }
}

/// Prints a figure and optionally dumps its series as CSV.
fn emit_figure(
    fig: qp_bench::experiments::figures::FigureResult,
    name: &str,
    csv_dir: &Option<std::path::PathBuf>,
) {
    print!("{}", fig.render());
    if let Some(dir) = csv_dir {
        let mut csv = String::from("progress");
        for n in &fig.series.estimator_names {
            csv.push(',');
            csv.push_str(n);
        }
        csv.push('\n');
        for (p, ests) in &fig.series.series {
            csv.push_str(&format!("{p:.6}"));
            for e in ests {
                csv.push_str(&format!(",{e:.6}"));
            }
            csv.push('\n');
        }
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, csv).expect("csv is writable");
        println!("[wrote {}]", path.display());
    }
}
