//! # qp-workloads — benchmark query plans
//!
//! The physical plans behind the paper's experiments:
//!
//! * [`tpch`] — plans for TPC-H queries Q1–Q22 over the skewed generator
//!   of `qp-datagen` (the paper's Table 2 reports μ for Q1–Q21; Figure 3
//!   uses Q1, Figure 6 uses Q21).
//! * [`skyserver`] — a suite of long-running astronomy queries over the
//!   synthetic SkyServer schema, numbered to mirror the paper's Table 3
//!   (queries 3, 6, 14, 18, 22, 28, 32).
//!
//! Plans are hand-built physical plans (this engine has no SQL frontend),
//! shaped the way a commercial optimizer would plausibly execute them at
//! this scale: hash joins between scans for the big equi-joins (TPC-H
//! plans are predominantly scan-based, as Section 5.4 of the paper notes),
//! index-nested-loops where the outer side is small and selective, sorts
//! feeding stream aggregates or ORDER BY, and semi/anti joins for
//! EXISTS / NOT EXISTS subqueries. SQL features the engine lacks are
//! simplified *structurally faithfully* — each query's doc comment records
//! any simplification. The getnext *shape* (which relations are scanned,
//! which are looked up, how many rows flow between operators) is the
//! quantity the paper's experiments measure, and it is preserved.

pub mod helpers;
pub mod skyserver;
pub mod sql_text;
pub mod tpch;

pub use skyserver::{sky_queries, sky_query};
pub use sql_text::{tpch_sql, SQL_QUERIES};
pub use tpch::{tpch_queries, tpch_query};
