//! TPC-H queries 1–11.

use crate::helpers::*;
use crate::tpch::{customers_in_region, suppliers_in_region};
use qp_exec::expr::{AggExpr, CmpOp, Expr};
use qp_exec::plan::{JoinType, Plan, PlanBuilder};
use qp_storage::{Database, Value};

/// Q1 — pricing summary report. Full fidelity: scan → σ(shipdate) →
/// π(measures) → γ(returnflag, linestatus) → sort. This is the paper's
/// Figure 3 query (single pipeline up to the aggregation; μ ≈ 2 because
/// the filter passes almost everything).
pub(crate) fn q1(db: &Database) -> Plan {
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let ship = c(&li, "l_shipdate");
    let li = li.filter(le(ship, d(1998, 9, 2)));
    let (rf, ls, qty, ep, disc, tax) = (
        c(&li, "l_returnflag"),
        c(&li, "l_linestatus"),
        c(&li, "l_quantity"),
        c(&li, "l_extendedprice"),
        c(&li, "l_discount"),
        c(&li, "l_tax"),
    );
    // The measure expressions are folded into the aggregate arguments (no
    // separate compute-scalar node), matching the paper's reported
    // μ(Q1) ≈ 1.989 — essentially one scan getnext plus one filter
    // getnext per tuple.
    li.hash_aggregate(
        vec![rf, ls],
        vec![
            (AggExpr::sum(Expr::Col(qty)), "sum_qty"),
            (AggExpr::sum(Expr::Col(ep)), "sum_base_price"),
            (AggExpr::sum(revenue(ep, disc)), "sum_disc_price"),
            (
                AggExpr::sum(mul(
                    revenue(ep, disc),
                    add(Expr::Lit(Value::Float(1.0)), Expr::Col(tax)),
                )),
                "sum_charge",
            ),
            (AggExpr::avg(Expr::Col(qty)), "avg_qty"),
            (AggExpr::avg(Expr::Col(ep)), "avg_price"),
            (AggExpr::avg(Expr::Col(disc)), "avg_disc"),
            (AggExpr::count_star(), "count_order"),
        ],
    )
    .sort(vec![(0, true), (1, true)])
    .build()
}

/// The Q2/Q11-style "European partsupp" sub-plan:
/// `region(σ) ⋈ nation ⋈ supplier ⋈ partsupp`, exposing partsupp columns.
fn region_partsupp(db: &Database, region: &str) -> PlanBuilder {
    let s = suppliers_in_region(db, region);
    let ps = PlanBuilder::scan(db, "partsupp").expect("partsupp");
    let sk = c(&s, "s_suppkey");
    s.hash_join(ps, vec![sk], vec![1], JoinType::Inner, true)
        .unwrap()
}

/// Q2 — minimum-cost supplier. The correlated MIN subquery is decorrelated
/// the standard way: group partsupp-in-region by part, then rejoin on
/// `(partkey, supplycost) = (partkey, min_cost)`.
pub(crate) fn q2(db: &Database) -> Plan {
    // Subquery: min supply cost per part among EUROPE suppliers.
    let sub = region_partsupp(db, "EUROPE");
    let (pk, cost) = (c(&sub, "ps_partkey"), c(&sub, "ps_supplycost"));
    let min_cost = sub.hash_aggregate(vec![pk], vec![(AggExpr::min(Expr::Col(cost)), "min_cost")]);

    // Main: brass parts of size 15 with their EUROPE suppliers.
    let part = PlanBuilder::scan(db, "part").expect("part");
    let (psize, ptype) = (c(&part, "p_size"), c(&part, "p_type"));
    let part = part.filter(Expr::And(vec![eq(psize, 15i64), ends_with(ptype, "STEEL")]));
    let main = region_partsupp(db, "EUROPE");
    let ps_pk = c(&main, "ps_partkey");
    let joined = part
        .hash_join(main, vec![0], vec![ps_pk], JoinType::Inner, true)
        .unwrap();
    let (jpk, jcost) = (c(&joined, "ps_partkey"), c(&joined, "ps_supplycost"));
    let finished = min_cost
        .hash_join(joined, vec![0, 1], vec![jpk, jcost], JoinType::Inner, true)
        .unwrap();
    let (bal, nname, sname, partkey) = (
        c(&finished, "s_acctbal"),
        c(&finished, "n_name"),
        c(&finished, "s_name"),
        c(&finished, "p_partkey"),
    );
    finished
        .sort(vec![
            (bal, false),
            (nname, true),
            (sname, true),
            (partkey, true),
        ])
        .limit(100)
        .build()
}

/// Q3 — shipping priority. Full fidelity modulo output projection.
pub(crate) fn q3(db: &Database) -> Plan {
    let cust = PlanBuilder::scan(db, "customer").expect("customer");
    let seg = c(&cust, "c_mktsegment");
    let cust = cust.filter(eq(seg, "BUILDING"));
    let ord = PlanBuilder::scan(db, "orders").expect("orders");
    let odate = c(&ord, "o_orderdate");
    let ord = ord.filter(lt(odate, d(1995, 3, 15)));
    let co = cust
        .hash_join(
            ord,
            vec![0], // c_custkey
            vec![1], // o_custkey
            JoinType::Inner,
            true,
        )
        .unwrap();
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let ship = c(&li, "l_shipdate");
    let li = li.filter(gt(ship, d(1995, 3, 15)));
    let ok = c(&co, "o_orderkey");
    let col = co
        .hash_join(li, vec![ok], vec![0], JoinType::Inner, true)
        .unwrap();
    let (lok, od2, ep, disc) = (
        c(&col, "l_orderkey"),
        c(&col, "o_orderdate"),
        c(&col, "l_extendedprice"),
        c(&col, "l_discount"),
    );
    let shippri = c(&col, "o_shippriority");
    col.project(vec![
        (Expr::Col(lok), "l_orderkey"),
        (Expr::Col(od2), "o_orderdate"),
        (Expr::Col(shippri), "o_shippriority"),
        (revenue(ep, disc), "rev"),
    ])
    .hash_aggregate(vec![0, 1, 2], vec![(AggExpr::sum(Expr::Col(3)), "revenue")])
    .sort(vec![(3, false), (1, true)])
    .limit(10)
    .build()
}

/// Q4 — order-priority checking. The EXISTS subquery is a semi join:
/// build the filtered orders, probe lineitems with commitdate <
/// receiptdate.
pub(crate) fn q4(db: &Database) -> Plan {
    let ord = PlanBuilder::scan(db, "orders").expect("orders");
    let odate = c(&ord, "o_orderdate");
    let ord = ord.filter(Expr::And(vec![
        ge(odate, d(1993, 7, 1)),
        lt(odate, d(1993, 10, 1)),
    ]));
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let (commit, receipt) = (c(&li, "l_commitdate"), c(&li, "l_receiptdate"));
    let li = li.filter(col_cmp(CmpOp::Lt, commit, receipt));
    let semi = ord
        .hash_join(li, vec![0], vec![0], JoinType::LeftSemi, true)
        .unwrap();
    let pri = c(&semi, "o_orderpriority");
    semi.hash_aggregate(vec![pri], vec![(AggExpr::count_star(), "order_count")])
        .sort(vec![(0, true)])
        .build()
}

/// Q5 — local supplier volume: ASIA, 1994, with the `c_nationkey =
/// s_nationkey` locality condition expressed as a two-key supplier join.
pub(crate) fn q5(db: &Database) -> Plan {
    let rc = customers_in_region(db, "ASIA");
    let ord = PlanBuilder::scan(db, "orders").expect("orders");
    let odate = c(&ord, "o_orderdate");
    let ord = ord.filter(Expr::And(vec![
        ge(odate, d(1994, 1, 1)),
        lt(odate, d(1995, 1, 1)),
    ]));
    let ck = c(&rc, "c_custkey");
    let co = rc
        .hash_join(ord, vec![ck], vec![1], JoinType::Inner, true)
        .unwrap();
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let ok = c(&co, "o_orderkey");
    let col = co
        .hash_join(li, vec![ok], vec![0], JoinType::Inner, true)
        .unwrap();
    let supp = PlanBuilder::scan(db, "supplier").expect("supplier");
    let (lsk, cnk) = (c(&col, "l_suppkey"), c(&col, "c_nationkey"));
    // supplier is the build side: keys (s_suppkey, s_nationkey).
    let all = supp
        .hash_join(col, vec![0, 2], vec![lsk, cnk], JoinType::Inner, true)
        .unwrap();
    let (nname, ep, disc) = (
        c(&all, "n_name"),
        c(&all, "l_extendedprice"),
        c(&all, "l_discount"),
    );
    all.project(vec![
        (Expr::Col(nname), "n_name"),
        (revenue(ep, disc), "rev"),
    ])
    .hash_aggregate(vec![0], vec![(AggExpr::sum(Expr::Col(1)), "revenue")])
    .sort(vec![(1, false)])
    .build()
}

/// Q6 — forecasting revenue change. Full fidelity; the paper's Table 2
/// shows μ = 1.008 for this single-pipeline scan query.
pub(crate) fn q6(db: &Database) -> Plan {
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let (ship, disc, qty, ep) = (
        c(&li, "l_shipdate"),
        c(&li, "l_discount"),
        c(&li, "l_quantity"),
        c(&li, "l_extendedprice"),
    );
    li.filter(Expr::And(vec![
        ge(ship, d(1994, 1, 1)),
        lt(ship, d(1995, 1, 1)),
        between(disc, 0.05f64, 0.07f64),
        lt(qty, 24.0f64),
    ]))
    .project(vec![(mul(Expr::Col(ep), Expr::Col(disc)), "disc_revenue")])
    .hash_aggregate(vec![], vec![(AggExpr::sum(Expr::Col(0)), "revenue")])
    .build()
}

/// Q7 — volume shipping between FRANCE and GERMANY. Simplification: the
/// `l_year` GROUP BY term is dropped (no EXTRACT); grouping is by the
/// nation pair only. The join shape (two nation legs, lineitem date
/// filter, the pair disjunction) is preserved.
pub(crate) fn q7(db: &Database) -> Plan {
    let nations = vec![Value::from("FRANCE"), Value::from("GERMANY")];
    // Supplier leg.
    let n1 = PlanBuilder::scan(db, "nation").expect("nation");
    let n1name = c(&n1, "n_name");
    let n1 = n1.filter(in_list(n1name, nations.clone()));
    let supp = PlanBuilder::scan(db, "supplier").expect("supplier");
    let sn = n1
        .hash_join(supp, vec![0], vec![2], JoinType::Inner, true)
        .unwrap();
    let (supp_nation, sk) = (c(&sn, "n_name"), c(&sn, "s_suppkey"));
    let sn = sn.project(vec![
        (Expr::Col(supp_nation), "supp_nation"),
        (Expr::Col(sk), "s_suppkey"),
    ]);
    // Customer leg.
    let n2 = PlanBuilder::scan(db, "nation").expect("nation");
    let n2name = c(&n2, "n_name");
    let n2 = n2.filter(in_list(n2name, nations));
    let cust = PlanBuilder::scan(db, "customer").expect("customer");
    let cn = n2
        .hash_join(cust, vec![0], vec![2], JoinType::Inner, true)
        .unwrap();
    let (cust_nation, ck) = (c(&cn, "n_name"), c(&cn, "c_custkey"));
    let cn = cn.project(vec![
        (Expr::Col(cust_nation), "cust_nation"),
        (Expr::Col(ck), "c_custkey"),
    ]);
    // Lineitems in the window, joined to the supplier leg.
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let ship = c(&li, "l_shipdate");
    let li = li.filter(between(ship, d(1995, 1, 1), d(1996, 12, 31)));
    let sl = sn
        .hash_join(li, vec![1], vec![2], JoinType::Inner, true)
        .unwrap();
    // Orders, then the customer leg.
    let ord = PlanBuilder::scan(db, "orders").expect("orders");
    let lok = c(&sl, "l_orderkey");
    let slo = sl
        .hash_join(ord, vec![lok], vec![0], JoinType::Inner, true)
        .unwrap();
    let ock = c(&slo, "o_custkey");
    let all = cn
        .hash_join(slo, vec![1], vec![ock], JoinType::Inner, true)
        .unwrap();
    // The (FRANCE→GERMANY) ∨ (GERMANY→FRANCE) pair condition.
    let (sn_col, cn_col) = (c(&all, "supp_nation"), c(&all, "cust_nation"));
    let all = all.filter(Expr::Or(vec![
        Expr::And(vec![eq(sn_col, "FRANCE"), eq(cn_col, "GERMANY")]),
        Expr::And(vec![eq(sn_col, "GERMANY"), eq(cn_col, "FRANCE")]),
    ]));
    let (ep, disc) = (c(&all, "l_extendedprice"), c(&all, "l_discount"));
    all.project(vec![
        (Expr::Col(sn_col), "supp_nation"),
        (Expr::Col(cn_col), "cust_nation"),
        (revenue(ep, disc), "volume"),
    ])
    .hash_aggregate(vec![0, 1], vec![(AggExpr::sum(Expr::Col(2)), "revenue")])
    .sort(vec![(0, true), (1, true)])
    .build()
}

/// Q8 — national market share. Simplification: grouped by supplier nation
/// (no o_year EXTRACT, no CASE market-share division); the six-table join
/// shape over AMERICA customers and ECONOMY ANODIZED STEEL parts is
/// preserved.
pub(crate) fn q8(db: &Database) -> Plan {
    let part = PlanBuilder::scan(db, "part").expect("part");
    let ptype = c(&part, "p_type");
    let part = part.filter(eq(ptype, "ECONOMY ANODIZED STEEL"));
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let pl = part
        .hash_join(li, vec![0], vec![1], JoinType::Inner, true)
        .unwrap();
    let ord = PlanBuilder::scan(db, "orders").expect("orders");
    let odate = c(&ord, "o_orderdate");
    let ord = ord.filter(between(odate, d(1995, 1, 1), d(1996, 12, 31)));
    let lok = c(&pl, "l_orderkey");
    let plo = pl
        .hash_join(ord, vec![lok], vec![0], JoinType::Inner, true)
        .unwrap();
    // Customers in AMERICA.
    let rc = customers_in_region(db, "AMERICA");
    let ck = c(&rc, "c_custkey");
    let ock = c(&plo, "o_custkey");
    let all = rc
        .hash_join(plo, vec![ck], vec![ock], JoinType::Inner, true)
        .unwrap();
    // Supplier nation.
    let n2 = PlanBuilder::scan(db, "nation").expect("nation");
    let supp = PlanBuilder::scan(db, "supplier").expect("supplier");
    let sn = n2
        .hash_join(supp, vec![0], vec![2], JoinType::Inner, true)
        .unwrap();
    let (n2name, sk2) = (c(&sn, "n_name"), c(&sn, "s_suppkey"));
    let sn = sn.project(vec![
        (Expr::Col(n2name), "supp_nation"),
        (Expr::Col(sk2), "s_suppkey"),
    ]);
    let lsk = c(&all, "l_suppkey");
    let full = sn
        .hash_join(all, vec![1], vec![lsk], JoinType::Inner, true)
        .unwrap();
    let (snname, ep, disc) = (
        c(&full, "supp_nation"),
        c(&full, "l_extendedprice"),
        c(&full, "l_discount"),
    );
    full.project(vec![
        (Expr::Col(snname), "supp_nation"),
        (revenue(ep, disc), "volume"),
    ])
    .hash_aggregate(vec![0], vec![(AggExpr::sum(Expr::Col(1)), "volume")])
    .sort(vec![(1, false)])
    .build()
}

/// Q9 — product-type profit. Simplification: no o_year EXTRACT (grouped
/// by nation only). The five-way join including the two-key partsupp join
/// is preserved.
pub(crate) fn q9(db: &Database) -> Plan {
    let part = PlanBuilder::scan(db, "part").expect("part");
    let pname = c(&part, "p_name");
    let part = part.filter(contains(pname, "green"));
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let pl = part
        .hash_join(li, vec![0], vec![1], JoinType::Inner, true)
        .unwrap();
    let ps = PlanBuilder::scan(db, "partsupp").expect("partsupp");
    let (lpk, lsk) = (c(&pl, "l_partkey"), c(&pl, "l_suppkey"));
    let plps = ps
        .hash_join(pl, vec![0, 1], vec![lpk, lsk], JoinType::Inner, true)
        .unwrap();
    let n = PlanBuilder::scan(db, "nation").expect("nation");
    let supp = PlanBuilder::scan(db, "supplier").expect("supplier");
    let sn = n
        .hash_join(supp, vec![0], vec![2], JoinType::Inner, true)
        .unwrap();
    let lsk2 = c(&plps, "l_suppkey");
    let snsk = c(&sn, "s_suppkey");
    let all = sn
        .hash_join(plps, vec![snsk], vec![lsk2], JoinType::Inner, true)
        .unwrap();
    let ord = PlanBuilder::scan(db, "orders").expect("orders");
    let lok = c(&all, "l_orderkey");
    let full = all
        .hash_join(ord, vec![lok], vec![0], JoinType::Inner, true)
        .unwrap();
    let (nname, ep, disc, cost, qty) = (
        c(&full, "n_name"),
        c(&full, "l_extendedprice"),
        c(&full, "l_discount"),
        c(&full, "ps_supplycost"),
        c(&full, "l_quantity"),
    );
    full.project(vec![
        (Expr::Col(nname), "nation"),
        (
            sub(revenue(ep, disc), mul(Expr::Col(cost), Expr::Col(qty))),
            "amount",
        ),
    ])
    .hash_aggregate(vec![0], vec![(AggExpr::sum(Expr::Col(1)), "sum_profit")])
    .sort(vec![(0, true)])
    .build()
}

/// Q10 — returned-item reporting. Full fidelity modulo output columns.
pub(crate) fn q10(db: &Database) -> Plan {
    let ord = PlanBuilder::scan(db, "orders").expect("orders");
    let odate = c(&ord, "o_orderdate");
    let ord = ord.filter(Expr::And(vec![
        ge(odate, d(1993, 10, 1)),
        lt(odate, d(1994, 1, 1)),
    ]));
    let cust = PlanBuilder::scan(db, "customer").expect("customer");
    let co = cust
        .hash_join(ord, vec![0], vec![1], JoinType::Inner, true)
        .unwrap();
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let rf = c(&li, "l_returnflag");
    let li = li.filter(eq(rf, "R"));
    let ok = c(&co, "o_orderkey");
    let col = co
        .hash_join(li, vec![ok], vec![0], JoinType::Inner, true)
        .unwrap();
    let n = PlanBuilder::scan(db, "nation").expect("nation");
    let cnk = c(&col, "c_nationkey");
    let all = n
        .hash_join(col, vec![0], vec![cnk], JoinType::Inner, true)
        .unwrap();
    let (ck2, cname, bal, nname, ep, disc) = (
        c(&all, "c_custkey"),
        c(&all, "c_name"),
        c(&all, "c_acctbal"),
        c(&all, "n_name"),
        c(&all, "l_extendedprice"),
        c(&all, "l_discount"),
    );
    all.project(vec![
        (Expr::Col(ck2), "c_custkey"),
        (Expr::Col(cname), "c_name"),
        (Expr::Col(bal), "c_acctbal"),
        (Expr::Col(nname), "n_name"),
        (revenue(ep, disc), "rev"),
    ])
    .hash_aggregate(
        vec![0, 1, 2, 3],
        vec![(AggExpr::sum(Expr::Col(4)), "revenue")],
    )
    .sort(vec![(4, false)])
    .limit(20)
    .build()
}

/// Q11 — important stock identification. The HAVING-against-global-total
/// is a nested-loops join against a one-row scalar aggregate, exactly how
/// engines execute the decorrelated form.
pub(crate) fn q11(db: &Database) -> Plan {
    let per_part = |db: &Database| -> PlanBuilder {
        let n = PlanBuilder::scan(db, "nation").expect("nation");
        let nname = c(&n, "n_name");
        let n = n.filter(eq(nname, "GERMANY"));
        let supp = PlanBuilder::scan(db, "supplier").expect("supplier");
        let sn = n
            .hash_join(supp, vec![0], vec![2], JoinType::Inner, true)
            .unwrap();
        let ps = PlanBuilder::scan(db, "partsupp").expect("partsupp");
        let sk = c(&sn, "s_suppkey");
        let all = sn
            .hash_join(ps, vec![sk], vec![1], JoinType::Inner, true)
            .unwrap();
        let (cost, avail) = (c(&all, "ps_supplycost"), c(&all, "ps_availqty"));
        let pk = c(&all, "ps_partkey");
        all.project(vec![
            (Expr::Col(pk), "ps_partkey"),
            (mul(Expr::Col(cost), Expr::Col(avail)), "value"),
        ])
    };
    let grouped = per_part(db).hash_aggregate(vec![0], vec![(AggExpr::sum(Expr::Col(1)), "value")]);
    let total = per_part(db).hash_aggregate(vec![], vec![(AggExpr::sum(Expr::Col(1)), "total")]);
    // value > 0.0001 * total — cross join against the scalar.
    let pred = Expr::cmp(
        CmpOp::Gt,
        Expr::Col(1),
        mul(Expr::Col(2), Expr::Lit(Value::Float(0.0001))),
    );
    grouped
        .nl_join(total, pred, JoinType::Inner, true)
        .sort(vec![(1, false)])
        .build()
}
