//! TPC-H queries 12–22.

use crate::helpers::*;
use qp_exec::expr::{AggExpr, CmpOp, Expr};
use qp_exec::plan::{JoinType, Plan, PlanBuilder};
use qp_storage::{Database, Value};

/// Q12 — shipping modes and order priority. Full fidelity: the two CASE
/// counts are sums of CASE expressions grouped by shipmode, exactly as in
/// the benchmark text.
pub(crate) fn q12(db: &Database) -> Plan {
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let (mode, commit, receipt, ship) = (
        c(&li, "l_shipmode"),
        c(&li, "l_commitdate"),
        c(&li, "l_receiptdate"),
        c(&li, "l_shipdate"),
    );
    let li = li.filter(Expr::And(vec![
        in_list(mode, vec![Value::from("MAIL"), Value::from("SHIP")]),
        col_cmp(CmpOp::Lt, commit, receipt),
        col_cmp(CmpOp::Lt, ship, commit),
        ge(receipt, d(1994, 1, 1)),
        lt(receipt, d(1995, 1, 1)),
    ]));
    let ord = PlanBuilder::scan(db, "orders").expect("orders");
    let jo = li
        .hash_join(ord, vec![0], vec![0], JoinType::Inner, true)
        .unwrap();
    let (mode2, pri) = (c(&jo, "l_shipmode"), c(&jo, "o_orderpriority"));
    let high = in_list(pri, vec![Value::from("1-URGENT"), Value::from("2-HIGH")]);
    let one_if =
        |cond: Expr| Expr::case_when(cond, Expr::Lit(Value::Int(1)), Expr::Lit(Value::Int(0)));
    jo.hash_aggregate(
        vec![mode2],
        vec![
            (AggExpr::sum(one_if(high.clone())), "high_line_count"),
            (
                AggExpr::sum(one_if(Expr::Not(Box::new(high)))),
                "low_line_count",
            ),
        ],
    )
    .sort(vec![(0, true)])
    .build()
}

/// Q13 — customer order-count distribution: left outer join, then two
/// stacked aggregations. (The o_comment NOT LIKE filter is dropped — the
/// generator has no o_comment; the distribution shape is unaffected.)
pub(crate) fn q13(db: &Database) -> Plan {
    let cust = PlanBuilder::scan(db, "customer").expect("customer");
    let ord = PlanBuilder::scan(db, "orders").expect("orders");
    let co = cust
        .hash_join(ord, vec![0], vec![1], JoinType::LeftOuter, true)
        .unwrap();
    let (ck, ok) = (c(&co, "c_custkey"), c(&co, "o_orderkey"));
    co.hash_aggregate(vec![ck], vec![(AggExpr::count(Expr::Col(ok)), "c_count")])
        .hash_aggregate(vec![1], vec![(AggExpr::count_star(), "custdist")])
        .sort(vec![(1, false), (0, false)])
        .build()
}

/// Q14 — promotion effect. The date filter is selective, so the optimizer
/// picks an index-nested-loops lookup into `part` (this is one of the
/// small-μ queries of Table 2). Full-fidelity output: the single
/// `promo_revenue` percentage via SUM(CASE …)/SUM(revenue).
pub(crate) fn q14(db: &Database) -> Plan {
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let ship = c(&li, "l_shipdate");
    let li = li.filter(Expr::And(vec![
        ge(ship, d(1995, 9, 1)),
        lt(ship, d(1995, 10, 1)),
    ]));
    let pk = c(&li, "l_partkey");
    let jo = li
        .inl_join(db, "part", "part_pk", vec![pk], JoinType::Inner, true, None)
        .expect("part_pk exists");
    let (ptype, ep, disc) = (
        c(&jo, "p_type"),
        c(&jo, "l_extendedprice"),
        c(&jo, "l_discount"),
    );
    let promo_rev = Expr::case_when(
        starts_with(ptype, "PROMO"),
        revenue(ep, disc),
        Expr::Lit(Value::Float(0.0)),
    );
    jo.hash_aggregate(
        vec![],
        vec![
            (AggExpr::sum(promo_rev), "promo"),
            (AggExpr::sum(revenue(ep, disc)), "total"),
        ],
    )
    .project(vec![(
        mul(
            Expr::Lit(Value::Float(100.0)),
            Expr::arith(qp_exec::expr::ArithOp::Div, Expr::Col(0), Expr::Col(1)),
        ),
        "promo_revenue",
    )])
    .build()
}

/// The Q15 revenue view: lineitem in 1996Q1 grouped by supplier.
fn q15_revenue(db: &Database) -> PlanBuilder {
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let ship = c(&li, "l_shipdate");
    let li = li.filter(Expr::And(vec![
        ge(ship, d(1996, 1, 1)),
        lt(ship, d(1996, 4, 1)),
    ]));
    let (sk, ep, disc) = (
        c(&li, "l_suppkey"),
        c(&li, "l_extendedprice"),
        c(&li, "l_discount"),
    );
    li.project(vec![
        (Expr::Col(sk), "supplier_no"),
        (revenue(ep, disc), "rev"),
    ])
    .hash_aggregate(vec![0], vec![(AggExpr::sum(Expr::Col(1)), "total_revenue")])
}

/// Q15 — top supplier. The revenue view is evaluated twice (as real
/// engines do without CTE sharing): once grouped, once for the global max,
/// reconciled through a one-row nested-loops join.
pub(crate) fn q15(db: &Database) -> Plan {
    let rev = q15_revenue(db);
    let max_rev =
        q15_revenue(db).hash_aggregate(vec![], vec![(AggExpr::max(Expr::Col(1)), "max_revenue")]);
    // total_revenue (within float wobble of) max_revenue.
    let eps = 1e-6;
    let pred = Expr::And(vec![Expr::cmp(
        CmpOp::Ge,
        Expr::Col(1),
        sub(Expr::Col(2), Expr::Lit(Value::Float(eps))),
    )]);
    let winners = rev.nl_join(max_rev, pred, JoinType::Inner, true);
    let supp = PlanBuilder::scan(db, "supplier").expect("supplier");
    let sno = c(&winners, "supplier_no");
    supp.hash_join(winners, vec![0], vec![sno], JoinType::Inner, true)
        .unwrap()
        .sort(vec![(0, true)])
        .build()
}

/// Q16 — parts/supplier relationship: anti join against complained-about
/// suppliers, COUNT(DISTINCT suppkey) per (brand, type, size).
pub(crate) fn q16(db: &Database) -> Plan {
    let part = PlanBuilder::scan(db, "part").expect("part");
    let (brand, ptype, size) = (c(&part, "p_brand"), c(&part, "p_type"), c(&part, "p_size"));
    let part = part.filter(Expr::And(vec![
        ne(brand, "Brand#45"),
        Expr::Not(Box::new(starts_with(ptype, "MEDIUM POLISHED"))),
        in_list(
            size,
            [49i64, 14, 23, 45, 19, 3, 36, 9]
                .into_iter()
                .map(Value::from)
                .collect(),
        ),
    ]));
    let ps = PlanBuilder::scan(db, "partsupp").expect("partsupp");
    let pps = part
        .hash_join(ps, vec![0], vec![0], JoinType::Inner, true)
        .unwrap();
    // NOT IN (complained suppliers): anti join. partsupp side is the
    // preserved side, so it is the build side of the hash anti join.
    let bad_supp = {
        let s = PlanBuilder::scan(db, "supplier").expect("supplier");
        let comment = c(&s, "s_comment");
        s.filter(Expr::And(vec![
            contains(comment, "Customer"),
            contains(comment, "Complaints"),
        ]))
    };
    let sk = c(&pps, "ps_suppkey");
    let cleaned = pps
        .hash_join(bad_supp, vec![sk], vec![0], JoinType::LeftAnti, true)
        .unwrap();
    let (b2, t2, s2, sk2) = (
        c(&cleaned, "p_brand"),
        c(&cleaned, "p_type"),
        c(&cleaned, "p_size"),
        c(&cleaned, "ps_suppkey"),
    );
    cleaned
        .hash_aggregate(
            vec![b2, t2, s2],
            vec![(AggExpr::count_distinct(Expr::Col(sk2)), "supplier_cnt")],
        )
        .sort(vec![(3, false), (0, true), (1, true), (2, true)])
        .build()
}

/// Q17 — small-quantity-order revenue: correlated AVG decorrelated into a
/// per-part aggregate rejoined on partkey.
pub(crate) fn q17(db: &Database) -> Plan {
    let avg_qty = {
        let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
        let (pk, qty) = (c(&li, "l_partkey"), c(&li, "l_quantity"));
        li.hash_aggregate(vec![pk], vec![(AggExpr::avg(Expr::Col(qty)), "avg_qty")])
    };
    let part = PlanBuilder::scan(db, "part").expect("part");
    let (brand, container) = (c(&part, "p_brand"), c(&part, "p_container"));
    let part = part.filter(Expr::And(vec![
        eq(brand, "Brand#23"),
        eq(container, "MED BOX"),
    ]));
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let pl = part
        .hash_join(li, vec![0], vec![1], JoinType::Inner, true)
        .unwrap();
    let lpk = c(&pl, "l_partkey");
    let all = avg_qty
        .hash_join(pl, vec![0], vec![lpk], JoinType::Inner, true)
        .unwrap();
    let (qty2, avg2, ep) = (
        c(&all, "l_quantity"),
        c(&all, "avg_qty"),
        c(&all, "l_extendedprice"),
    );
    all.filter(Expr::cmp(
        CmpOp::Lt,
        Expr::Col(qty2),
        mul(Expr::Lit(Value::Float(0.2)), Expr::Col(avg2)),
    ))
    .project(vec![(Expr::Col(ep), "l_extendedprice")])
    .hash_aggregate(vec![], vec![(AggExpr::avg(Expr::Col(0)), "avg_yearly")])
    .build()
}

/// Q18 — large-volume customers: the HAVING subquery becomes a grouped
/// aggregate over lineitem, filtered, rejoined to orders (index lookup)
/// and customers, then re-expanded through lineitem.
pub(crate) fn q18(db: &Database) -> Plan {
    let big = {
        let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
        let qty = c(&li, "l_quantity");
        let b = li.hash_aggregate(
            vec![0], // l_orderkey
            vec![(AggExpr::sum(Expr::Col(qty)), "sum_qty")],
        );
        // The paper-era threshold 300 yields almost nothing at tiny
        // scale; 180 keeps the same shape with a non-empty result.
        b.filter(gt(1, 180.0f64))
    };
    let ok = c(&big, "l_orderkey");
    let jo = big
        .inl_join(
            db,
            "orders",
            "orders_pk",
            vec![ok],
            JoinType::Inner,
            true,
            None,
        )
        .expect("orders_pk");
    let ck = c(&jo, "o_custkey");
    let jc = jo
        .inl_join(
            db,
            "customer",
            "customer_pk",
            vec![ck],
            JoinType::Inner,
            true,
            None,
        )
        .expect("customer_pk");
    let li2 = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let ok2 = c(&jc, "l_orderkey");
    let all = jc
        .hash_join(li2, vec![ok2], vec![0], JoinType::Inner, true)
        .unwrap();
    let (cname, ck2, ok3, odate, total, qty2) = (
        c(&all, "c_name"),
        c(&all, "c_custkey"),
        c(&all, "o_orderkey"),
        c(&all, "o_orderdate"),
        c(&all, "o_totalprice"),
        c(&all, "l_quantity"),
    );
    all.hash_aggregate(
        vec![cname, ck2, ok3, odate, total],
        vec![(AggExpr::sum(Expr::Col(qty2)), "sum_qty")],
    )
    .sort(vec![(4, false), (3, true)])
    .limit(100)
    .build()
}

/// Q19 — discounted revenue: a disjunction of three brand/container/
/// quantity/size condition groups, evaluated as an INL lookup into part
/// with the OR as residual (the classic Q19 plan shape).
pub(crate) fn q19(db: &Database) -> Plan {
    let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
    let (mode, instruct) = (c(&li, "l_shipmode"), c(&li, "l_shipinstruct"));
    let li = li.filter(Expr::And(vec![
        in_list(mode, vec![Value::from("AIR"), Value::from("REG AIR")]),
        eq(instruct, "DELIVER IN PERSON"),
    ]));
    let lpk = c(&li, "l_partkey");
    let l_qty = c(&li, "l_quantity");
    // After the join, part columns sit at lineitem arity + offset.
    let arity = li.schema().arity();
    let (p_brand, p_container, p_size) = (arity + 3, arity + 6, arity + 5);
    let group = |brand: &str, containers: [&str; 4], qlo: f64, qhi: f64, smax: i64| {
        Expr::And(vec![
            eq(p_brand, brand),
            in_list(
                p_container,
                containers.into_iter().map(Value::from).collect(),
            ),
            between(l_qty, qlo, qhi),
            between(p_size, 1i64, smax),
        ])
    };
    let residual = Expr::Or(vec![
        group(
            "Brand#12",
            ["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
            1.0,
            11.0,
            5,
        ),
        group(
            "Brand#23",
            ["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
            10.0,
            20.0,
            10,
        ),
        group(
            "Brand#34",
            ["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
            20.0,
            30.0,
            15,
        ),
    ]);
    let jo = li
        .inl_join(
            db,
            "part",
            "part_pk",
            vec![lpk],
            JoinType::Inner,
            true,
            Some(residual),
        )
        .expect("part_pk");
    let (ep, disc) = (c(&jo, "l_extendedprice"), c(&jo, "l_discount"));
    jo.project(vec![(revenue(ep, disc), "rev")])
        .hash_aggregate(vec![], vec![(AggExpr::sum(Expr::Col(0)), "revenue")])
        .build()
}

/// Q20 — potential part promotion: nested NOT-quite-EXISTS chain
/// decorrelated into grouped aggregates, semi joins, and a final nation
/// filter.
pub(crate) fn q20(db: &Database) -> Plan {
    // Half the 1994 shipped quantity per (part, supplier).
    let shipped = {
        let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
        let ship = c(&li, "l_shipdate");
        let li = li.filter(Expr::And(vec![
            ge(ship, d(1994, 1, 1)),
            lt(ship, d(1995, 1, 1)),
        ]));
        let (pk, sk, qty) = (
            c(&li, "l_partkey"),
            c(&li, "l_suppkey"),
            c(&li, "l_quantity"),
        );
        li.hash_aggregate(
            vec![pk, sk],
            vec![(AggExpr::sum(Expr::Col(qty)), "sum_qty")],
        )
    };
    // Partsupp entries with availqty above half that.
    let ps = PlanBuilder::scan(db, "partsupp").expect("partsupp");
    let excess = shipped
        .hash_join(ps, vec![0, 1], vec![0, 1], JoinType::Inner, true)
        .unwrap();
    let (avail, sumq) = (c(&excess, "ps_availqty"), c(&excess, "sum_qty"));
    let excess = excess.filter(Expr::cmp(
        CmpOp::Gt,
        Expr::Col(avail),
        mul(Expr::Lit(Value::Float(0.5)), Expr::Col(sumq)),
    ));
    // ... whose part is a forest part (semi join).
    let forest = {
        let p = PlanBuilder::scan(db, "part").expect("part");
        let pname = c(&p, "p_name");
        p.filter(starts_with(pname, "a")) // "forest%" → first color letter at tiny scale
    };
    let epk = c(&excess, "ps_partkey");
    let qualifying = excess
        .hash_join(forest, vec![epk], vec![0], JoinType::LeftSemi, true)
        .unwrap();
    // Suppliers with any qualifying entry, in CANADA.
    let supp = PlanBuilder::scan(db, "supplier").expect("supplier");
    let qsk = c(&qualifying, "ps_suppkey");
    let with_parts = supp
        .hash_join(qualifying, vec![0], vec![qsk], JoinType::LeftSemi, true)
        .unwrap();
    let n = PlanBuilder::scan(db, "nation").expect("nation");
    let nname = c(&n, "n_name");
    let n = n.filter(eq(nname, "CANADA"));
    let snk = c(&with_parts, "s_nationkey");
    with_parts
        .hash_join(n, vec![snk], vec![0], JoinType::LeftSemi, true)
        .unwrap()
        .sort(vec![(1, true)])
        .build()
}

/// Q21 — suppliers who kept orders waiting. The EXISTS/NOT EXISTS pair
/// becomes an index-nested-loops semi join and anti join on
/// `lineitem(l_orderkey)` with inequality residuals; the order-status
/// check is an index lookup residual. This is the paper's Figure 6 query:
/// a complex multi-pipeline plan with nested iteration (μ = 2.782 in
/// Table 2).
pub(crate) fn q21(db: &Database) -> Plan {
    let n = PlanBuilder::scan(db, "nation").expect("nation");
    let nname = c(&n, "n_name");
    let n = n.filter(eq(nname, "SAUDI ARABIA"));
    let supp = PlanBuilder::scan(db, "supplier").expect("supplier");
    let sn = n
        .hash_join(supp, vec![0], vec![2], JoinType::Inner, true)
        .unwrap();
    let l1 = {
        let li = PlanBuilder::scan(db, "lineitem").expect("lineitem");
        let (commit, receipt) = (c(&li, "l_commitdate"), c(&li, "l_receiptdate"));
        li.filter(col_cmp(CmpOp::Gt, receipt, commit))
    };
    let sk = c(&sn, "s_suppkey");
    let j1 = sn
        .hash_join(l1, vec![sk], vec![2], JoinType::Inner, true)
        .unwrap();
    // Orders lookup with status residual.
    let ok = c(&j1, "l_orderkey");
    let arity1 = j1.schema().arity();
    let status_col = arity1 + 2; // o_orderstatus in the concatenated row
    let j2 = j1
        .inl_join(
            db,
            "orders",
            "orders_pk",
            vec![ok],
            JoinType::Inner,
            true,
            Some(eq(status_col, "F")),
        )
        .expect("orders_pk");
    // EXISTS another supplier's lineitem on the same order.
    let (j2_ok, j2_sk) = (c(&j2, "l_orderkey"), c(&j2, "l_suppkey"));
    let arity2 = j2.schema().arity();
    let other_supp = col_cmp(CmpOp::Ne, j2_sk, arity2 + 2); // l2.l_suppkey
    let j3 = j2
        .inl_join(
            db,
            "lineitem",
            "lineitem_orderkey",
            vec![j2_ok],
            JoinType::LeftSemi,
            true,
            Some(other_supp),
        )
        .expect("lineitem_orderkey");
    // NOT EXISTS another supplier's *late* lineitem on the same order.
    let (j3_ok, j3_sk) = (c(&j3, "l_orderkey"), c(&j3, "l_suppkey"));
    let arity3 = j3.schema().arity();
    let late_other = Expr::And(vec![
        col_cmp(CmpOp::Ne, j3_sk, arity3 + 2),
        col_cmp(CmpOp::Gt, arity3 + 12, arity3 + 11), // receipt > commit
    ]);
    let j4 = j3
        .inl_join(
            db,
            "lineitem",
            "lineitem_orderkey",
            vec![j3_ok],
            JoinType::LeftAnti,
            true,
            Some(late_other),
        )
        .expect("lineitem_orderkey");
    let sname = c(&j4, "s_name");
    j4.hash_aggregate(vec![sname], vec![(AggExpr::count_star(), "numwait")])
        .sort(vec![(1, false), (0, true)])
        .limit(100)
        .build()
}

/// Q22 — global sales opportunity. Simplification: the country-code
/// SUBSTRING becomes phone-prefix LIKEs, and the final GROUP BY cntrycode
/// becomes a scalar aggregate (no SUBSTRING). The anti join against
/// orders uses the `orders(o_custkey)` index.
pub(crate) fn q22(db: &Database) -> Plan {
    let prefixes = ["13", "31", "23", "29", "30", "18", "17"];
    let phone_pred = |col: usize| {
        Expr::Or(
            prefixes
                .iter()
                .map(|p| starts_with(col, p))
                .collect::<Vec<_>>(),
        )
    };
    let cust_f = {
        let cust = PlanBuilder::scan(db, "customer").expect("customer");
        let phone = c(&cust, "c_phone");
        cust.filter(phone_pred(phone))
    };
    let avg_bal = {
        let cust = PlanBuilder::scan(db, "customer").expect("customer");
        let (phone, bal) = (c(&cust, "c_phone"), c(&cust, "c_acctbal"));
        cust.filter(Expr::And(vec![gt(bal, 0.0f64), phone_pred(phone)]))
            .hash_aggregate(vec![], vec![(AggExpr::avg(Expr::Col(bal)), "avg_bal")])
    };
    let bal_col = c(&cust_f, "c_acctbal");
    let scalar_col = cust_f.schema().arity(); // avg sits after customer cols
    let rich = cust_f.nl_join(
        avg_bal,
        Expr::cmp(CmpOp::Gt, Expr::Col(bal_col), Expr::Col(scalar_col)),
        JoinType::Inner,
        true,
    );
    let ck = c(&rich, "c_custkey");
    let no_orders = rich
        .inl_join(
            db,
            "orders",
            "orders_custkey",
            vec![ck],
            JoinType::LeftAnti,
            true,
            None,
        )
        .expect("orders_custkey");
    let bal2 = c(&no_orders, "c_acctbal");
    no_orders
        .hash_aggregate(
            vec![],
            vec![
                (AggExpr::count_star(), "numcust"),
                (AggExpr::sum(Expr::Col(bal2)), "totacctbal"),
            ],
        )
        .build()
}
