//! TPC-H query plans (Q1–Q22) over the skewed generator.
//!
//! Each `qN` function builds the physical plan a commercial optimizer
//! would plausibly pick at this scale. Structural simplifications (the
//! engine has no CASE, EXTRACT or SUBSTRING) are documented per query;
//! all simplifications preserve the *getnext shape* — which tables are
//! scanned vs looked up and the cardinalities flowing between operators —
//! because that is what the paper's μ and progress measurements depend on.

mod queries_a;
mod queries_b;

use qp_datagen::TpchDb;
use qp_exec::plan::{JoinType, Plan, PlanBuilder};
use qp_storage::Database;

use crate::helpers::*;

/// Builds the plan for TPC-H query `q` (1–22).
///
/// # Panics
/// Panics if `q` is outside 1..=22 (the workload is a fixed suite).
pub fn tpch_query(q: usize, t: &TpchDb) -> Plan {
    let db = &t.db;
    match q {
        1 => queries_a::q1(db),
        2 => queries_a::q2(db),
        3 => queries_a::q3(db),
        4 => queries_a::q4(db),
        5 => queries_a::q5(db),
        6 => queries_a::q6(db),
        7 => queries_a::q7(db),
        8 => queries_a::q8(db),
        9 => queries_a::q9(db),
        10 => queries_a::q10(db),
        11 => queries_a::q11(db),
        12 => queries_b::q12(db),
        13 => queries_b::q13(db),
        14 => queries_b::q14(db),
        15 => queries_b::q15(db),
        16 => queries_b::q16(db),
        17 => queries_b::q17(db),
        18 => queries_b::q18(db),
        19 => queries_b::q19(db),
        20 => queries_b::q20(db),
        21 => queries_b::q21(db),
        22 => queries_b::q22(db),
        _ => panic!("TPC-H has queries 1..=22, got {q}"),
    }
}

/// All 22 queries, in order, as `(number, plan)`.
pub fn tpch_queries(t: &TpchDb) -> Vec<(usize, Plan)> {
    (1..=22).map(|q| (q, tpch_query(q, t))).collect()
}

/// Shared sub-plan: suppliers in a region, joined through nation —
/// `region(σ name) ⋈ nation ⋈ supplier`, exposing supplier columns plus
/// `n_name`.
pub(crate) fn suppliers_in_region(db: &Database, region: &str) -> PlanBuilder {
    let r = PlanBuilder::scan(db, "region").expect("region");
    let r = {
        let name = c(&r, "r_name");
        r.filter(eq(name, region))
    };
    let n = PlanBuilder::scan(db, "nation").expect("nation");
    let rn = r
        .hash_join(
            n,
            vec![0], // r_regionkey
            vec![2], // n_regionkey
            JoinType::Inner,
            true,
        )
        .unwrap();
    let s = PlanBuilder::scan(db, "supplier").expect("supplier");
    let nk_in_rn = c(&rn, "n_nationkey");
    rn.hash_join(s, vec![nk_in_rn], vec![2], JoinType::Inner, true)
        .unwrap()
}

/// Shared sub-plan: customers in a region (analogous to
/// [`suppliers_in_region`]).
pub(crate) fn customers_in_region(db: &Database, region: &str) -> PlanBuilder {
    let r = PlanBuilder::scan(db, "region").expect("region");
    let r = {
        let name = c(&r, "r_name");
        r.filter(eq(name, region))
    };
    let n = PlanBuilder::scan(db, "nation").expect("nation");
    let rn = r
        .hash_join(n, vec![0], vec![2], JoinType::Inner, true)
        .unwrap();
    let cust = PlanBuilder::scan(db, "customer").expect("customer");
    let nk = c(&rn, "n_nationkey");
    rn.hash_join(cust, vec![nk], vec![2], JoinType::Inner, true)
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_datagen::TpchConfig;
    use qp_exec::run_query;

    fn tiny_db() -> TpchDb {
        TpchDb::generate(TpchConfig {
            scale: 0.002,
            z: 1.0,
            seed: 7,
        })
    }

    /// Every query must build and run to completion; totals must be the
    /// sum of node counts (the model of work).
    #[test]
    fn all_queries_build_and_run() {
        let t = tiny_db();
        for (q, plan) in tpch_queries(&t) {
            let (out, _) = run_query(&plan, &t.db, None)
                .unwrap_or_else(|e| panic!("Q{q} failed: {e}\n{}", plan.display()));
            assert_eq!(
                out.total_getnext,
                out.node_counts.iter().sum::<u64>(),
                "Q{q} accounting broken"
            );
            assert!(out.total_getnext > 0, "Q{q} did no work");
        }
    }

    /// Queries that must produce rows on the tiny database (the
    /// aggregate-only ones always yield at least a scalar row).
    #[test]
    fn representative_queries_produce_results() {
        let t = tiny_db();
        for q in [1usize, 3, 4, 5, 6, 10, 13] {
            let plan = tpch_query(q, &t);
            let (out, _) = run_query(&plan, &t.db, None).unwrap();
            assert!(!out.rows.is_empty(), "Q{q} returned no rows");
        }
    }

    #[test]
    fn q1_groups_by_flags() {
        let t = tiny_db();
        let plan = tpch_query(1, &t);
        let (out, _) = run_query(&plan, &t.db, None).unwrap();
        // returnflag × linestatus combinations: at most 6 in TPC-H data
        // (A/F, N/F, N/O, R/F + generator noise), at least 3.
        assert!(
            out.rows.len() >= 3 && out.rows.len() <= 6,
            "{}",
            out.rows.len()
        );
    }

    #[test]
    fn q6_returns_scalar_revenue() {
        let t = tiny_db();
        let plan = tpch_query(6, &t);
        let (out, _) = run_query(&plan, &t.db, None).unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn q21_uses_nested_iteration() {
        let t = tiny_db();
        let plan = tpch_query(21, &t);
        assert!(
            !plan.is_scan_based(),
            "Q21's plan should contain INL joins (its μ in the paper is high)"
        );
    }

    #[test]
    fn q1_and_q6_are_scan_based() {
        let t = tiny_db();
        assert!(tpch_query(1, &t).is_scan_based());
        assert!(tpch_query(6, &t).is_scan_based());
    }
}
