//! SQL texts for the subset of TPC-H queries expressible in the `qp-sql`
//! dialect (no subqueries), with the *same output columns* as the
//! hand-built plans in [`crate::tpch`] — so the two paths can be checked
//! against each other, validating parser, planner, and executor in one
//! sweep.

/// Queries with a faithful SQL rendering in the supported dialect,
/// matching the hand-built plan's output column-for-column.
pub const SQL_QUERIES: [usize; 5] = [1, 3, 5, 6, 10];

/// The SQL text for TPC-H query `q`, if it is in [`SQL_QUERIES`].
pub fn tpch_sql(q: usize) -> Option<&'static str> {
    Some(match q {
        1 => {
            "SELECT l_returnflag, l_linestatus, \
                    SUM(l_quantity) AS sum_qty, \
                    SUM(l_extendedprice) AS sum_base_price, \
                    SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
                    SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
                    AVG(l_quantity) AS avg_qty, \
                    AVG(l_extendedprice) AS avg_price, \
                    AVG(l_discount) AS avg_disc, \
                    COUNT(*) AS count_order \
             FROM lineitem \
             WHERE l_shipdate <= DATE '1998-09-02' \
             GROUP BY l_returnflag, l_linestatus \
             ORDER BY l_returnflag, l_linestatus"
        }
        3 => {
            "SELECT l_orderkey, o_orderdate, o_shippriority, \
                    SUM(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM customer, orders, lineitem \
             WHERE c_mktsegment = 'BUILDING' \
               AND c_custkey = o_custkey \
               AND l_orderkey = o_orderkey \
               AND o_orderdate < DATE '1995-03-15' \
               AND l_shipdate > DATE '1995-03-15' \
             GROUP BY l_orderkey, o_orderdate, o_shippriority \
             ORDER BY revenue DESC, o_orderdate \
             LIMIT 10"
        }
        5 => {
            "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM customer, orders, lineitem, supplier, nation, region \
             WHERE c_custkey = o_custkey \
               AND l_orderkey = o_orderkey \
               AND l_suppkey = s_suppkey \
               AND c_nationkey = s_nationkey \
               AND s_nationkey = n_nationkey \
               AND n_regionkey = r_regionkey \
               AND r_name = 'ASIA' \
               AND o_orderdate >= DATE '1994-01-01' \
               AND o_orderdate < DATE '1995-01-01' \
             GROUP BY n_name \
             ORDER BY revenue DESC"
        }
        6 => {
            "SELECT SUM(l_extendedprice * l_discount) AS revenue \
             FROM lineitem \
             WHERE l_shipdate >= DATE '1994-01-01' \
               AND l_shipdate < DATE '1995-01-01' \
               AND l_discount BETWEEN 0.05 AND 0.07 \
               AND l_quantity < 24"
        }
        10 => {
            "SELECT c_custkey, c_name, c_acctbal, n_name, \
                    SUM(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM customer, orders, lineitem, nation \
             WHERE c_custkey = o_custkey \
               AND l_orderkey = o_orderkey \
               AND o_orderdate >= DATE '1993-10-01' \
               AND o_orderdate < DATE '1994-01-01' \
               AND l_returnflag = 'R' \
               AND c_nationkey = n_nationkey \
             GROUP BY c_custkey, c_name, c_acctbal, n_name \
             ORDER BY revenue DESC \
             LIMIT 20"
        }
        _ => return None,
    })
}
