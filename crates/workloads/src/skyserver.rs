//! SkyServer-style long-running query suite.
//!
//! Table 3 of the paper reports μ for the long-running queries of the
//! SDSS SkyServer personal edition (queries 3, 6, 14, 18, 22, 28, 32 of
//! its 35-query suite). The real SQL and data are not available here, so
//! this suite reproduces the *plan shapes* that dominate that workload —
//! big photometric scans with selective magnitude/type cuts, spectro
//! lookups, and neighbor self-joins — over the synthetic schema of
//! `qp_datagen::skyserver`. The numbering mirrors the paper's Table 3.

use crate::helpers::*;
use qp_datagen::SkyDb;
use qp_exec::expr::{AggExpr, Expr};
use qp_exec::plan::{JoinType, Plan, PlanBuilder};
use qp_storage::Database;

/// The query numbers of the paper's Table 3.
pub const SKY_QUERY_NUMBERS: [usize; 7] = [3, 6, 14, 18, 22, 28, 32];

/// Builds the plan for SkyServer query `q` (one of
/// [`SKY_QUERY_NUMBERS`]).
///
/// # Panics
/// Panics on other numbers.
pub fn sky_query(q: usize, s: &SkyDb) -> Plan {
    let db = &s.db;
    match q {
        3 => q3(db),
        6 => q6(db),
        14 => q14(db),
        18 => q18(db),
        22 => q22(db),
        28 => q28(db),
        32 => q32(db),
        _ => panic!("SkyServer suite has queries {SKY_QUERY_NUMBERS:?}, got {q}"),
    }
}

/// All seven queries, in Table 3 order.
pub fn sky_queries(s: &SkyDb) -> Vec<(usize, Plan)> {
    SKY_QUERY_NUMBERS
        .iter()
        .map(|&q| (q, sky_query(q, s)))
        .collect()
}

/// Q3 — bright-star count in a magnitude band: a single selective scan
/// over the photometric table (the archetypal small-μ query; Table 3
/// reports μ = 1.008).
fn q3(db: &Database) -> Plan {
    let p = PlanBuilder::scan(db, "photoobj").expect("photoobj");
    let (ty, mag_r, mag_g) = (c(&p, "objtype"), c(&p, "mag_r"), c(&p, "mag_g"));
    p.filter(Expr::And(vec![
        eq(ty, 6i64),
        between(mag_r, 16.0f64, 17.5f64),
    ]))
    .project(vec![
        (Expr::Col(mag_g), "mag_g"),
        (Expr::Col(mag_r), "mag_r"),
    ])
    .hash_aggregate(
        vec![],
        vec![
            (AggExpr::count_star(), "n"),
            (AggExpr::avg(sub(Expr::Col(0), Expr::Col(1))), "avg_g_r"),
        ],
    )
    .build()
}

/// Q6 — spectroscopic quasars matched to photometry: hash join between
/// the (small) spectro table and the big photometric scan.
fn q6(db: &Database) -> Plan {
    let spec = PlanBuilder::scan(db, "specobj").expect("specobj");
    let class = c(&spec, "class");
    let spec = spec.filter(eq(class, "QSO"));
    let photo = PlanBuilder::scan(db, "photoobj").expect("photoobj");
    let jo = spec
        .hash_join(
            photo,
            vec![1], // bestobjid
            vec![0], // objid
            JoinType::Inner,
            true,
        )
        .unwrap();
    let (ty, z) = (c(&jo, "objtype"), c(&jo, "redshift"));
    jo.hash_aggregate(
        vec![ty],
        vec![
            (AggExpr::count_star(), "n"),
            (AggExpr::avg(Expr::Col(z)), "avg_z"),
        ],
    )
    .sort(vec![(0, true)])
    .build()
}

/// Q14 — close neighbor pairs: a selective distance cut over the neighbor
/// table, then a key lookup into photometry (small μ: the filter passes a
/// few percent, each costing one extra getnext).
fn q14(db: &Database) -> Plan {
    let nb = PlanBuilder::scan(db, "neighbors").expect("neighbors");
    let dist = c(&nb, "distance");
    let nb = nb.filter(lt(dist, 0.02f64));
    let other = c(&nb, "neighborobjid");
    let jo = nb
        .inl_join(
            db,
            "photoobj",
            "photoobj_pk",
            vec![other],
            JoinType::Inner,
            true,
            None,
        )
        .expect("photoobj_pk");
    let mag_r = c(&jo, "mag_r");
    jo.filter(lt(mag_r, 18.0f64))
        .hash_aggregate(vec![], vec![(AggExpr::count_star(), "pairs")])
        .build()
}

/// Q18 — galaxy pairs: photometry filtered to galaxies, hash-joined to
/// neighbors, then an index lookup back into photometry with a galaxy
/// residual (the classic SkyServer self-join shape; μ ≈ 1.8 in Table 3).
fn q18(db: &Database) -> Plan {
    let gal = {
        let p = PlanBuilder::scan(db, "photoobj").expect("photoobj");
        let ty = c(&p, "objtype");
        p.filter(eq(ty, 3i64))
    };
    let nb = PlanBuilder::scan(db, "neighbors").expect("neighbors");
    let jo = gal
        .hash_join(
            nb,
            vec![0], // objid
            vec![0], // neighbors.objid
            JoinType::Inner,
            true,
        )
        .unwrap();
    let other = c(&jo, "neighborobjid");
    let arity = jo.schema().arity();
    let other_is_galaxy = eq(arity + 3, 3i64); // photoobj.objtype in concat
    let pairs = jo
        .inl_join(
            db,
            "photoobj",
            "photoobj_pk",
            vec![other],
            JoinType::Inner,
            true,
            Some(other_is_galaxy),
        )
        .expect("photoobj_pk");
    let dist = c(&pairs, "distance");
    pairs
        .filter(lt(dist, 0.1f64))
        .hash_aggregate(vec![], vec![(AggExpr::count_star(), "galaxy_pairs")])
        .build()
}

/// Q22 — spectro objects with crowded fields: specobj ⋈ photoobj ⋈
/// neighbors with a per-class census.
fn q22(db: &Database) -> Plan {
    let spec = PlanBuilder::scan(db, "specobj").expect("specobj");
    let photo = PlanBuilder::scan(db, "photoobj").expect("photoobj");
    let sp = spec
        .hash_join(photo, vec![1], vec![0], JoinType::Inner, true)
        .unwrap();
    let nb = PlanBuilder::scan(db, "neighbors").expect("neighbors");
    let objid = c(&sp, "objid");
    let all = sp
        .hash_join(nb, vec![objid], vec![0], JoinType::Inner, true)
        .unwrap();
    let (class, dist) = (c(&all, "class"), c(&all, "distance"));
    all.hash_aggregate(
        vec![class],
        vec![
            (AggExpr::count_star(), "neighbor_count"),
            (AggExpr::min(Expr::Col(dist)), "closest"),
        ],
    )
    .sort(vec![(1, false)])
    .build()
}

/// Q28 — object-type census over the full photometric table: scan,
/// aggregate, sort (μ ≈ 1 — the scan utterly dominates).
fn q28(db: &Database) -> Plan {
    let p = PlanBuilder::scan(db, "photoobj").expect("photoobj");
    let (ty, mag_r) = (c(&p, "objtype"), c(&p, "mag_r"));
    p.hash_aggregate(
        vec![ty],
        vec![
            (AggExpr::count_star(), "n"),
            (AggExpr::avg(Expr::Col(mag_r)), "avg_mag_r"),
            (AggExpr::min(Expr::Col(mag_r)), "brightest"),
        ],
    )
    .sort(vec![(1, false)])
    .build()
}

/// Q32 — flagged objects with spectra: a moderately selective flag cut,
/// merged with the spectro table through a sort-merge join (both inputs
/// sorted — a fully scan-based plan exercising ⋈merge).
fn q32(db: &Database) -> Plan {
    let p = PlanBuilder::scan(db, "photoobj").expect("photoobj");
    let flags = c(&p, "flags");
    let p = p.filter(lt(flags, 0x4000i64)).sort(vec![(0, true)]); // by objid
    let spec = PlanBuilder::scan(db, "specobj").expect("specobj");
    let spec = spec.sort(vec![(1, true)]); // by bestobjid
    let jo = p
        .merge_join(spec, vec![0], vec![1], JoinType::Inner, true)
        .unwrap();
    let (class, z, mag_r) = (c(&jo, "class"), c(&jo, "redshift"), c(&jo, "mag_r"));
    jo.filter(gt(z, 0.1f64))
        .hash_aggregate(
            vec![class],
            vec![
                (AggExpr::count_star(), "n"),
                (AggExpr::avg(Expr::Col(mag_r)), "avg_mag"),
            ],
        )
        .sort(vec![(0, true)])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_datagen::SkyConfig;
    use qp_exec::run_query;

    fn tiny() -> SkyDb {
        SkyDb::generate(SkyConfig {
            photoobj_rows: 4_000,
            spec_fraction: 0.05,
            neighbors_per_obj: 2.0,
            seed: 5,
        })
    }

    #[test]
    fn all_sky_queries_run() {
        let s = tiny();
        for (q, plan) in sky_queries(&s) {
            let (out, _) =
                run_query(&plan, &s.db, None).unwrap_or_else(|e| panic!("sky Q{q} failed: {e}"));
            assert!(out.total_getnext > 0, "sky Q{q} did no work");
            assert_eq!(out.total_getnext, out.node_counts.iter().sum::<u64>());
        }
    }

    #[test]
    fn census_query_counts_every_object() {
        let s = tiny();
        let plan = sky_query(28, &s);
        let (out, _) = run_query(&plan, &s.db, None).unwrap();
        let total: i64 = out.rows.iter().map(|r| r.get(1).as_i64().unwrap()).sum();
        assert_eq!(total, 4_000);
    }

    #[test]
    fn scan_heavy_queries_have_small_mu_shape() {
        // Q3's plan is a single pipeline over one scanned leaf.
        let s = tiny();
        let plan = sky_query(3, &s);
        assert!(plan.is_scan_based());
        assert_eq!(plan.scanned_leaves().len(), 1);
    }

    #[test]
    fn q14_uses_index_lookup() {
        let s = tiny();
        assert!(!sky_query(14, &s).is_scan_based());
    }
}
