//! Small expression-building helpers shared by the workload plans.

use qp_exec::expr::{ArithOp, CmpOp, Expr, LikePattern};
use qp_exec::plan::PlanBuilder;
use qp_storage::Value;

/// `builder.col(name)` shorthand. The workload plans are hand-written
/// against fixed schemas, so a missing column is a bug in the workload
/// itself — panic with the typed error's message rather than forcing
/// `Result` plumbing through every query constructor.
pub fn c(b: &PlanBuilder, name: &str) -> usize {
    b.col(name).unwrap_or_else(|e| panic!("{e}"))
}

/// `col = literal`.
pub fn eq(col: usize, v: impl Into<Value>) -> Expr {
    Expr::cmp(CmpOp::Eq, Expr::Col(col), Expr::Lit(v.into()))
}

/// `col <> literal`.
pub fn ne(col: usize, v: impl Into<Value>) -> Expr {
    Expr::cmp(CmpOp::Ne, Expr::Col(col), Expr::Lit(v.into()))
}

/// `col < literal`.
pub fn lt(col: usize, v: impl Into<Value>) -> Expr {
    Expr::cmp(CmpOp::Lt, Expr::Col(col), Expr::Lit(v.into()))
}

/// `col <= literal`.
pub fn le(col: usize, v: impl Into<Value>) -> Expr {
    Expr::cmp(CmpOp::Le, Expr::Col(col), Expr::Lit(v.into()))
}

/// `col > literal`.
pub fn gt(col: usize, v: impl Into<Value>) -> Expr {
    Expr::cmp(CmpOp::Gt, Expr::Col(col), Expr::Lit(v.into()))
}

/// `col >= literal`.
pub fn ge(col: usize, v: impl Into<Value>) -> Expr {
    Expr::cmp(CmpOp::Ge, Expr::Col(col), Expr::Lit(v.into()))
}

/// `col BETWEEN lo AND hi` (inclusive).
pub fn between(col: usize, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
    Expr::Between(Box::new(Expr::Col(col)), lo.into(), hi.into())
}

/// `col IN (vals)`.
pub fn in_list(col: usize, vals: Vec<Value>) -> Expr {
    Expr::InList(Box::new(Expr::Col(col)), vals)
}

/// `col LIKE 'prefix%'`.
pub fn starts_with(col: usize, p: &str) -> Expr {
    Expr::Like(Box::new(Expr::Col(col)), LikePattern::StartsWith(p.into()))
}

/// `col LIKE '%suffix'`.
pub fn ends_with(col: usize, p: &str) -> Expr {
    Expr::Like(Box::new(Expr::Col(col)), LikePattern::EndsWith(p.into()))
}

/// `col LIKE '%infix%'`.
pub fn contains(col: usize, p: &str) -> Expr {
    Expr::Like(Box::new(Expr::Col(col)), LikePattern::Contains(p.into()))
}

/// `left_col cmp right_col`.
pub fn col_cmp(op: CmpOp, l: usize, r: usize) -> Expr {
    Expr::cmp(op, Expr::Col(l), Expr::Col(r))
}

/// `a * b` over expressions.
pub fn mul(a: Expr, b: Expr) -> Expr {
    Expr::arith(ArithOp::Mul, a, b)
}

/// `a + b`.
pub fn add(a: Expr, b: Expr) -> Expr {
    Expr::arith(ArithOp::Add, a, b)
}

/// `a - b`.
pub fn sub(a: Expr, b: Expr) -> Expr {
    Expr::arith(ArithOp::Sub, a, b)
}

/// `extendedprice * (1 - discount)` — the ubiquitous TPC-H revenue term.
pub fn revenue(extprice_col: usize, discount_col: usize) -> Expr {
    mul(
        Expr::Col(extprice_col),
        sub(Expr::Lit(Value::Float(1.0)), Expr::Col(discount_col)),
    )
}

/// A date literal.
pub fn d(y: i32, m: u32, day: u32) -> Value {
    Value::date(y, m, day)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_storage::Row;

    #[test]
    fn revenue_term_evaluates() {
        let r = Row::new(vec![Value::Float(100.0), Value::Float(0.1)]);
        let v = revenue(0, 1).eval(&r).unwrap();
        assert_eq!(v, Value::Float(90.0));
    }

    #[test]
    fn helpers_build_expected_shapes() {
        let r = Row::new(vec![Value::Int(5), Value::str("PROMO X")]);
        assert!(between(0, 1i64, 10i64).eval_bool(&r).unwrap());
        assert!(starts_with(1, "PROMO").eval_bool(&r).unwrap());
        assert!(!ends_with(1, "PROMO").eval_bool(&r).unwrap());
        assert!(contains(1, "OMO").eval_bool(&r).unwrap());
        assert!(in_list(0, vec![Value::Int(5)]).eval_bool(&r).unwrap());
        assert!(ne(0, 4i64).eval_bool(&r).unwrap());
        assert!(ge(0, 5i64).eval_bool(&r).unwrap());
    }
}
