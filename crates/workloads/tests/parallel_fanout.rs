//! Pins the parallelizer's eligibility analysis against the TPC-H plans
//! the `parallel_speedup` experiment (and its ≥1.5× acceptance bar at 4
//! workers on Q3) depends on.
//!
//! The analysis refuses to fan a scan chain that some ancestor may stop
//! consuming early — a `Limit`, or a merge join's right input — because an
//! eager `Exchange` would scan rows the serial run never pulls. Q3 and Q5
//! end in `LIMIT`, but every scan chain sits below a blocking sort /
//! aggregate / hash-join build that drains its input at open regardless of
//! the limit, so they must keep fanning out. A regression here would
//! silently serialize the benchmark and invalidate `BENCH_parallel.json`.

use qp_datagen::{TpchConfig, TpchDb};
use qp_exec::plan::PlanNode;
use qp_exec::{parallelize, run_query};
use qp_workloads::tpch::tpch_query;

fn tiny_db() -> TpchDb {
    TpchDb::generate(TpchConfig {
        scale: 0.002,
        z: 1.0,
        seed: 7,
    })
}

#[test]
fn speedup_experiment_queries_still_fan_out() {
    let t = tiny_db();
    for q in [3usize, 5] {
        let plan = tpch_query(q, &t);
        let par = parallelize(&plan, 4);
        let exchanges = par
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, PlanNode::Exchange { .. }))
            .count();
        assert!(
            exchanges > 0,
            "Q{q} no longer fans out — the parallel_speedup experiment would run serially"
        );
        // And the fanned plan still matches the serial run exactly.
        let (serial, _) = run_query(&plan, &t.db, None).unwrap();
        let (out, _) = run_query(&par, &t.db, None).unwrap();
        assert_eq!(out.rows, serial.rows, "Q{q} rows diverge");
        assert_eq!(
            out.total_getnext, serial.total_getnext,
            "Q{q} total(Q) diverges"
        );
    }
}

/// The flip side: a bare LIMIT over a streamed scan chain must *not* fan —
/// serially it stops after `n` rows, and an eager Exchange would scan the
/// whole table, inflating every per-node counter past the serial run.
#[test]
fn limit_over_streamed_chain_does_not_fan() {
    let t = tiny_db();
    let plan = qp_exec::plan::PlanBuilder::scan(&t.db, "lineitem")
        .unwrap()
        .limit(10)
        .build();
    let par = parallelize(&plan, 4);
    assert_eq!(par.len(), plan.len(), "Limit chain must stay serial");
    let (serial, _) = run_query(&plan, &t.db, None).unwrap();
    assert_eq!(serial.rows.len(), 10);
    // Serial getnext accounting: 10 scan rows + 10 limit rows.
    assert_eq!(serial.total_getnext, 20);
}
