//! Cross-checks: workload query results recomputed independently from the
//! raw generated tables must match the executor's output. This validates
//! the whole engine stack end-to-end, not just operator-by-operator.

use qp_datagen::{TpchConfig, TpchDb};
use qp_exec::run_query;
use qp_storage::value::days_from_civil;
use qp_storage::Value;
use std::collections::{BTreeMap, HashMap, HashSet};

fn db() -> TpchDb {
    TpchDb::generate(TpchConfig {
        scale: 0.002,
        z: 1.5,
        seed: 77,
    })
}

/// Q1 recomputed naively from the lineitem heap.
#[test]
fn q1_matches_naive_recomputation() {
    let t = db();
    let li = t.db.table("lineitem").unwrap();
    let s = li.schema();
    let (qty_i, ep_i, disc_i, tax_i, rf_i, ls_i, ship_i) = (
        s.index_of("l_quantity").unwrap(),
        s.index_of("l_extendedprice").unwrap(),
        s.index_of("l_discount").unwrap(),
        s.index_of("l_tax").unwrap(),
        s.index_of("l_returnflag").unwrap(),
        s.index_of("l_linestatus").unwrap(),
        s.index_of("l_shipdate").unwrap(),
    );
    let cutoff = days_from_civil(1998, 9, 2);

    #[derive(Default)]
    struct Acc {
        n: i64,
        qty: f64,
        base: f64,
        disc_price: f64,
        charge: f64,
    }
    let mut expected: BTreeMap<(String, String), Acc> = BTreeMap::new();
    for row in li.rows() {
        let Value::Date(ship) = row.get(ship_i) else {
            panic!("shipdate must be a date")
        };
        if *ship > cutoff {
            continue;
        }
        let qty = row.get(qty_i).as_f64().unwrap();
        let ep = row.get(ep_i).as_f64().unwrap();
        let disc = row.get(disc_i).as_f64().unwrap();
        let tax = row.get(tax_i).as_f64().unwrap();
        let key = (
            row.get(rf_i).as_str().unwrap().to_string(),
            row.get(ls_i).as_str().unwrap().to_string(),
        );
        let acc = expected.entry(key).or_default();
        acc.n += 1;
        acc.qty += qty;
        acc.base += ep;
        acc.disc_price += ep * (1.0 - disc);
        acc.charge += ep * (1.0 - disc) * (1.0 + tax);
    }

    let plan = qp_workloads::tpch_query(1, &t);
    let (out, _) = run_query(&plan, &t.db, None).unwrap();
    assert_eq!(out.rows.len(), expected.len());
    // Output columns: rf, ls, sum_qty, sum_base, sum_disc, sum_charge,
    // avg_qty, avg_price, avg_disc, count.
    for row in &out.rows {
        let key = (
            row.get(0).as_str().unwrap().to_string(),
            row.get(1).as_str().unwrap().to_string(),
        );
        let acc = expected
            .get(&key)
            .unwrap_or_else(|| panic!("group {key:?}"));
        let close = |got: &Value, want: f64| {
            let g = got.as_f64().unwrap();
            assert!(
                (g - want).abs() < want.abs() * 1e-9 + 1e-6,
                "{key:?}: got {g}, want {want}"
            );
        };
        close(row.get(2), acc.qty);
        close(row.get(3), acc.base);
        close(row.get(4), acc.disc_price);
        close(row.get(5), acc.charge);
        assert_eq!(row.get(9), &Value::Int(acc.n), "{key:?} count");
    }
}

/// Q4 (semi join + group) recomputed naively.
#[test]
fn q4_matches_naive_recomputation() {
    let t = db();
    let orders = t.db.table("orders").unwrap();
    let li = t.db.table("lineitem").unwrap();
    let os = orders.schema();
    let (ok_i, od_i, pri_i) = (
        os.index_of("o_orderkey").unwrap(),
        os.index_of("o_orderdate").unwrap(),
        os.index_of("o_orderpriority").unwrap(),
    );
    let ls = li.schema();
    let (lok_i, cd_i, rd_i) = (
        ls.index_of("l_orderkey").unwrap(),
        ls.index_of("l_commitdate").unwrap(),
        ls.index_of("l_receiptdate").unwrap(),
    );
    let lo = days_from_civil(1993, 7, 1);
    let hi = days_from_civil(1993, 10, 1);

    // Orders with at least one late lineitem.
    let mut late_orders: HashSet<i64> = HashSet::new();
    for row in li.rows() {
        if row.get(cd_i) < row.get(rd_i) {
            late_orders.insert(row.get(lok_i).as_i64().unwrap());
        }
    }
    let mut expected: BTreeMap<String, i64> = BTreeMap::new();
    for row in orders.rows() {
        let Value::Date(d) = row.get(od_i) else {
            panic!()
        };
        if *d < lo || *d >= hi {
            continue;
        }
        if late_orders.contains(&row.get(ok_i).as_i64().unwrap()) {
            *expected
                .entry(row.get(pri_i).as_str().unwrap().to_string())
                .or_default() += 1;
        }
    }

    let plan = qp_workloads::tpch_query(4, &t);
    let (out, _) = run_query(&plan, &t.db, None).unwrap();
    let got: BTreeMap<String, i64> = out
        .rows
        .iter()
        .map(|r| {
            (
                r.get(0).as_str().unwrap().to_string(),
                r.get(1).as_i64().unwrap(),
            )
        })
        .collect();
    assert_eq!(got, expected);
}

/// Q6 (scalar filter-aggregate) recomputed naively.
#[test]
fn q6_matches_naive_recomputation() {
    let t = db();
    let li = t.db.table("lineitem").unwrap();
    let s = li.schema();
    let (ship_i, disc_i, qty_i, ep_i) = (
        s.index_of("l_shipdate").unwrap(),
        s.index_of("l_discount").unwrap(),
        s.index_of("l_quantity").unwrap(),
        s.index_of("l_extendedprice").unwrap(),
    );
    let lo = days_from_civil(1994, 1, 1);
    let hi = days_from_civil(1995, 1, 1);
    let mut expected = 0.0f64;
    for row in li.rows() {
        let Value::Date(d) = row.get(ship_i) else {
            panic!()
        };
        let disc = row.get(disc_i).as_f64().unwrap();
        let qty = row.get(qty_i).as_f64().unwrap();
        if *d >= lo && *d < hi && (0.05..=0.07).contains(&disc) && qty < 24.0 {
            expected += row.get(ep_i).as_f64().unwrap() * disc;
        }
    }
    let plan = qp_workloads::tpch_query(6, &t);
    let (out, _) = run_query(&plan, &t.db, None).unwrap();
    assert_eq!(out.rows.len(), 1);
    let got = out.rows[0].get(0).as_f64().unwrap_or(0.0);
    assert!(
        (got - expected).abs() < expected.abs() * 1e-9 + 1e-6,
        "got {got}, want {expected}"
    );
}

/// Q13 (left outer join + double aggregation) recomputed naively.
#[test]
fn q13_matches_naive_recomputation() {
    let t = db();
    let customers = t.db.table("customer").unwrap();
    let orders = t.db.table("orders").unwrap();
    let n_cust = customers.len();
    let ck_i = orders.schema().index_of("o_custkey").unwrap();
    let mut per_cust: HashMap<i64, i64> = HashMap::new();
    for row in orders.rows() {
        *per_cust.entry(row.get(ck_i).as_i64().unwrap()).or_default() += 1;
    }
    let mut expected: BTreeMap<i64, i64> = BTreeMap::new();
    for row in customers.rows() {
        let ck = row.get(0).as_i64().unwrap();
        let cnt = per_cust.get(&ck).copied().unwrap_or(0);
        *expected.entry(cnt).or_default() += 1;
    }
    assert_eq!(expected.values().sum::<i64>(), n_cust as i64);

    let plan = qp_workloads::tpch_query(13, &t);
    let (out, _) = run_query(&plan, &t.db, None).unwrap();
    let got: BTreeMap<i64, i64> = out
        .rows
        .iter()
        .map(|r| (r.get(0).as_i64().unwrap(), r.get(1).as_i64().unwrap()))
        .collect();
    assert_eq!(got, expected);
}

/// Q22's anti join: no returned customer may have any order.
#[test]
fn q22_customers_have_no_orders() {
    let t = db();
    let plan = qp_workloads::tpch_query(22, &t);
    let (out, _) = run_query(&plan, &t.db, None).unwrap();
    assert_eq!(out.rows.len(), 1);
    let numcust = out.rows[0].get(0).as_i64().unwrap();
    assert!(numcust >= 0);
    // Recompute: every counted customer must truly be order-less. We
    // can't see which customers were counted from the scalar output, so
    // recompute the expected count directly.
    let customers = t.db.table("customer").unwrap();
    let orders = t.db.table("orders").unwrap();
    let with_orders: HashSet<i64> = orders
        .rows()
        .iter()
        .map(|r| r.get(1).as_i64().unwrap())
        .collect();
    let prefixes = ["13", "31", "23", "29", "30", "18", "17"];
    let cs = customers.schema();
    let (phone_i, bal_i) = (
        cs.index_of("c_phone").unwrap(),
        cs.index_of("c_acctbal").unwrap(),
    );
    let eligible: Vec<(i64, f64)> = customers
        .rows()
        .iter()
        .filter(|r| {
            let p = r.get(phone_i).as_str().unwrap();
            prefixes.iter().any(|pre| p.starts_with(pre))
        })
        .map(|r| (r.get(0).as_i64().unwrap(), r.get(bal_i).as_f64().unwrap()))
        .collect();
    let positive: Vec<f64> = eligible
        .iter()
        .map(|&(_, b)| b)
        .filter(|&b| b > 0.0)
        .collect();
    let avg = positive.iter().sum::<f64>() / positive.len().max(1) as f64;
    let expected = eligible
        .iter()
        .filter(|&&(ck, b)| b > avg && !with_orders.contains(&ck))
        .count() as i64;
    assert_eq!(numcust, expected);
}
